//! Corruption suite for the binary column-file dataset format: drives
//! the [`spire_core::fault`] corruptors over pristine `SPIRECOL` images
//! and proves the integrity contract end to end through
//! [`Dataset::from_colfile_bytes`] — damage is always refused (strict),
//! quarantined with the surviving rows bit-identical (lenient), or
//! provably harmless (reserved/padding bytes), and is never silently
//! folded into the decoded data.

use spire_core::colfile::{ColFileReport, ColFileWriter};
use spire_core::fault::{flip_byte, truncate_bytes, FaultRng};
use spire_core::{Sample, SampleSet, SnapshotMode};
use spire_counters::Dataset;

/// A small but representative dataset: two sections, several metrics,
/// an ingest report riding in the metadata blob, and awkward values
/// (subnormals, huge magnitudes) whose bits must survive exactly.
fn corpus() -> Dataset {
    let csv = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
garbage line
";
    let out = spire_counters::ingest_perf_csv(csv, &spire_counters::IngestConfig::default());
    let mut d = Dataset::new();
    d.insert_with_report("capture", out.samples, out.report);
    let mut set = SampleSet::new();
    for i in 1..12 {
        let w = f64::MIN_POSITIVE * i as f64;
        set.push(Sample::new("tiny", 1.0, w, 1.0).unwrap());
        set.push(Sample::new("huge", 1e300, 1e297 * i as f64, 3.0).unwrap());
    }
    d.insert("synthetic", set);
    d
}

/// Bitwise equality of two columns' raw rows. The format guarantees
/// chunk granularity, and with default chunking every test column is a
/// single chunk — so a surviving column must be bit-identical to the
/// original, wholesale.
fn column_identical(a: &spire_core::MetricColumn, b: &spire_core::MetricColumn) -> bool {
    let eq = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    a.metric() == b.metric()
        && eq(a.times(), b.times())
        && eq(a.works(), b.works())
        && eq(a.metric_deltas(), b.metric_deltas())
}

/// The lenient-salvage soundness invariant: every surviving column is
/// bit-identical to its original (single-chunk columns are all or
/// nothing), every quarantine entry names a real column, and the row
/// accounting adds up.
fn assert_salvage_sound(original: &Dataset, salvaged: &Dataset, report: &ColFileReport) {
    for (label, set) in salvaged.iter() {
        let source = original.get(label).expect("salvage invented a section");
        for col in set.columns() {
            let src = source
                .column(col.metric())
                .expect("salvage invented a column");
            assert!(
                column_identical(src, col),
                "surviving column {}/{} differs from the source",
                label,
                col.metric()
            );
        }
    }
    let dropped: u64 = report.quarantined.iter().map(|q| q.rows).sum();
    assert_eq!(report.rows_dropped, dropped, "row accounting is off");
    for q in &report.quarantined {
        let source = original.get(&q.label).expect("quarantine names a section");
        assert!(
            source
                .columns()
                .iter()
                .any(|c| c.metric().as_str() == q.metric),
            "quarantine names a phantom metric {}",
            q.metric
        );
    }
}

#[test]
fn every_single_byte_flip_is_refused_quarantined_or_harmless() {
    let original = corpus();
    let pristine = original.to_colfile_bytes();
    let original_json = original.to_json().unwrap();
    for pos in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 1 << (pos % 8);

        // Strict: any detected damage refuses the load; an accepted load
        // must be bit-identical to the source. Undetectable flips exist
        // only in bytes the format ignores (reserved header tail).
        match Dataset::from_colfile_bytes(&bytes, SnapshotMode::Strict) {
            Err(_) => {}
            Ok((d, report)) => {
                assert!(report.is_clean(), "strict load with dirty report");
                assert_eq!(
                    d.to_json().unwrap(),
                    original_json,
                    "silently wrong strict decode after flipping byte {pos}"
                );
            }
        }

        // Lenient: container damage still refuses; chunk damage must be
        // quarantined with sound salvage, never silently absorbed.
        match Dataset::from_colfile_bytes(&bytes, SnapshotMode::Lenient) {
            Err(_) => {}
            Ok((d, report)) => {
                if report.is_clean() {
                    assert_eq!(
                        d.to_json().unwrap(),
                        original_json,
                        "silently wrong lenient decode after flipping byte {pos}"
                    );
                } else {
                    assert_salvage_sound(&original, &d, &report);
                }
            }
        }
    }
}

#[test]
fn seeded_multi_flip_storms_never_decode_silently_wrong() {
    let original = corpus();
    let pristine = original.to_colfile_bytes();
    let original_json = original.to_json().unwrap();
    for seed in 0..300u64 {
        let mut rng = FaultRng::new(0xc0_1f11e ^ seed);
        let mut bytes = pristine.clone();
        for _ in 0..=(seed % 4) {
            flip_byte(&mut bytes, &mut rng);
        }
        if let Ok((d, report)) = Dataset::from_colfile_bytes(&bytes, SnapshotMode::Lenient) {
            if report.is_clean() {
                assert_eq!(d.to_json().unwrap(), original_json, "seed {seed}");
            } else {
                assert_salvage_sound(&original, &d, &report);
            }
        }
        if let Ok((d, report)) = Dataset::from_colfile_bytes(&bytes, SnapshotMode::Strict) {
            assert!(report.is_clean(), "strict load with dirty report");
            assert_eq!(d.to_json().unwrap(), original_json, "seed {seed}");
        }
    }
}

#[test]
fn every_truncation_point_is_refused_in_both_modes() {
    let pristine = corpus().to_colfile_bytes();
    for cut in 0..pristine.len() {
        let short = &pristine[..cut];
        assert!(
            Dataset::from_colfile_bytes(short, SnapshotMode::Strict).is_err(),
            "strict accepted a {cut}-byte truncation of {} bytes",
            pristine.len()
        );
        assert!(
            Dataset::from_colfile_bytes(short, SnapshotMode::Lenient).is_err(),
            "lenient accepted a {cut}-byte truncation of {} bytes",
            pristine.len()
        );
    }
    // The fault-module corruptor agrees with manual slicing.
    let mut rng = FaultRng::new(7);
    for _ in 0..50 {
        let fraction = (rng.index(1000) as f64) / 1000.0;
        let short = truncate_bytes(&pristine, fraction);
        if short.len() < pristine.len() {
            assert!(Dataset::from_colfile_bytes(short, SnapshotMode::Lenient).is_err());
        }
    }
}

#[test]
fn chunk_quarantine_is_per_chunk_not_per_column() {
    // Small chunks so one column spans several: damage to one chunk must
    // drop exactly that chunk's rows and keep the neighbours bitwise.
    let mut set = SampleSet::new();
    for i in 1..=10 {
        set.push(Sample::new("m", 1.0, i as f64, 2.0).unwrap());
    }
    let mut writer = ColFileWriter::with_chunk_rows(4);
    writer.add_section("w", &set);
    let pristine = writer.finish();

    // Chunks are laid out from offset 64 (4 rows, 4 rows, 2 rows);
    // corrupt a data byte inside the first chunk.
    let mut bytes = pristine.clone();
    bytes[70] ^= 0x20;

    assert!(Dataset::from_colfile_bytes(&bytes, SnapshotMode::Strict).is_err());
    let (d, report) = Dataset::from_colfile_bytes(&bytes, SnapshotMode::Lenient).unwrap();
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].chunk, 0);
    assert_eq!(report.quarantined[0].rows, 4);
    assert_eq!(report.rows_dropped, 4);
    let survivors = d.get("w").unwrap().columns()[0].works();
    let expected: Vec<f64> = (5..=10).map(|i| i as f64).collect();
    assert_eq!(survivors, &expected[..], "wrong rows survived");
}
