//! Property tests for the fault-tolerant ingest: no input — valid,
//! truncated, or arbitrary byte soup — may panic it, and multiplex
//! scaling must obey its algebraic contract.

use proptest::prelude::*;
use spire_counters::perf::export_perf_csv;
use spire_counters::{ingest_perf_csv, IngestConfig};
use spire_sim::{Core, CoreConfig, Event, Instr};

/// Arbitrary bytes rendered as (lossy) text — the worst thing a wedged
/// or killed perf could leave in a capture file.
fn byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..512)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// A syntactically plausible perf CSV with randomized values, including
/// sub-floor and >100% running fractions.
fn plausible_csv() -> impl Strategy<Value = String> {
    let row = (
        0u32..4,     // interval index
        0f64..1e12,  // count
        0u8..4,      // event selector
        0f64..150.0, // pct running
    )
        .prop_map(|(t, count, event, pct)| {
            let event = match event {
                0 => "inst_retired.any",
                1 => "cpu_clk_unhalted.thread",
                2 => "evt.alpha",
                _ => "evt.beta",
            };
            format!("{}.0,{count},,{event},1000,{pct:.2},,", t + 1)
        });
    prop::collection::vec(row, 0..40).prop_map(|rows| rows.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ingest never panics and its report always accounts for every row.
    #[test]
    fn byte_soup_never_panics(text in byte_soup()) {
        let out = ingest_perf_csv(&text, &IngestConfig::default());
        let r = &out.report;
        prop_assert!(r.rows_quarantined <= r.rows_seen);
        prop_assert!(r.rows_parsed + r.rows_not_counted + r.rows_not_supported <= r.rows_seen);
        prop_assert!(r.intervals_ingested + r.intervals_dropped == r.intervals_seen);
        prop_assert!(r.samples_emitted == out.samples.len());
        prop_assert!(r.quarantined_fraction() >= 0.0 && r.quarantined_fraction() <= 1.0);
    }

    /// Structured-but-random captures also never panic, and every emitted
    /// sample satisfies the core domain invariants.
    #[test]
    fn plausible_csv_never_panics(text in plausible_csv()) {
        let out = ingest_perf_csv(&text, &IngestConfig::default());
        for s in out.samples.iter() {
            prop_assert!(s.time() > 0.0);
            prop_assert!(s.work() >= 0.0);
            prop_assert!(s.metric_delta() >= 0.0 && s.metric_delta().is_finite());
        }
        // Per-reason counts sum to the quarantine total.
        let by_reason: usize = out.report.quarantined_by_reason.values().sum();
        prop_assert_eq!(by_reason, out.report.rows_quarantined);
    }

    /// Truncating a valid capture at any byte still ingests cleanly, and
    /// never yields more samples than the full capture.
    #[test]
    fn truncation_is_graceful(cut in 0usize..2048, seed in 1u64..5) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream =
            std::iter::repeat_n(Instr::simple_alu(), 40_000 * seed as usize);
        let full = export_perf_csv(
            &mut core,
            &mut stream,
            &[
                Event::InstRetiredAny,
                Event::CpuClkUnhaltedThread,
                Event::LongestLatCacheMiss,
            ],
            10_000,
            80_000,
            1e9,
        );
        let config = IngestConfig::default();
        let complete = ingest_perf_csv(&full, &config);
        let cut = cut.min(full.len());
        // Cut on a char boundary (the export is ASCII, but be exact).
        let mut cut = cut;
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let partial = ingest_perf_csv(&full[..cut], &config);
        prop_assert!(partial.samples.len() <= complete.samples.len());
        prop_assert!(partial.report.rows_seen <= complete.report.rows_seen);
    }
}

/// The exporter emits 100% running fractions, so a round trip through the
/// scaled ingest must reproduce the raw counts exactly.
#[test]
fn export_round_trip_is_scale_invariant() {
    let events = [
        Event::InstRetiredAny,
        Event::CpuClkUnhaltedThread,
        Event::LongestLatCacheMiss,
        Event::BrMispRetiredAllBranches,
    ];
    let mut core = Core::new(CoreConfig::skylake_server());
    let mut stream = std::iter::repeat_n(Instr::simple_alu(), 120_000);
    let csv = export_perf_csv(&mut core, &mut stream, &events, 10_000, 60_000, 1e9);

    let scaled = ingest_perf_csv(&csv, &IngestConfig::default());
    let unscaled = ingest_perf_csv(
        &csv,
        &IngestConfig {
            scale_multiplexed: false,
            ..IngestConfig::default()
        },
    );
    assert!(!scaled.samples.is_empty());
    assert_eq!(scaled.samples, unscaled.samples);
    assert_eq!(scaled.report.rows_scaled, 0);
    assert!(!scaled.report.budget_exceeded());
}

/// Halving every running fraction doubles every ingested count (as long
/// as the fraction stays above the floor): the scaling law itself.
#[test]
fn halving_running_fraction_doubles_estimates() {
    let base = "\
1.0,1000,,inst_retired.any,1000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000,100.00,,
1.0,80,,evt.a,400,40.00,,
1.0,30,,evt.b,600,60.00,,
";
    let halved = "\
1.0,1000,,inst_retired.any,1000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000,100.00,,
1.0,80,,evt.a,200,20.00,,
1.0,30,,evt.b,300,30.00,,
";
    let config = IngestConfig::default();
    let a = ingest_perf_csv(base, &config);
    let b = ingest_perf_csv(halved, &config);
    let pairs = a.samples.iter().zip(b.samples.iter());
    let mut compared = 0;
    for (x, y) in pairs {
        assert!((y.metric_delta() - 2.0 * x.metric_delta()).abs() < 1e-9);
        compared += 1;
    }
    assert_eq!(compared, 2);
}
