//! Property tests for the sampling session: multiplexed collection must
//! produce balanced, well-formed samples regardless of the schedule
//! geometry.

use proptest::prelude::*;
use spire_counters::{collect, MultiplexSchedule, SessionConfig};
use spire_sim::{Core, CoreConfig, Event, Instr, MemLevel};

fn session_strategy() -> impl Strategy<Value = SessionConfig> {
    (
        5_000u64..40_000, // interval
        500u64..4_000,    // slice
        1usize..6,        // pmu slots
        0u64..100,        // switch overhead
    )
        .prop_map(|(interval, slice, slots, overhead)| SessionConfig {
            interval_cycles: interval.max(slice),
            slice_cycles: slice,
            pmu_slots: slots,
            switch_overhead_cycles: overhead,
            max_cycles: 150_000,
        })
}

fn events() -> Vec<Event> {
    vec![
        Event::IdqDsbUops,
        Event::BrMispRetiredAllBranches,
        Event::LongestLatCacheMiss,
        Event::CycleActivityStallsTotal,
        Event::IcacheMisses,
        Event::UopsIssuedAny,
        Event::ResourceStallsAny,
    ]
}

fn mixed_stream(n: usize) -> impl Iterator<Item = Instr> {
    (0..n).map(|i| match i % 7 {
        0 => Instr::load(MemLevel::L2),
        1 => Instr::branch(i % 21 == 1),
        2 => Instr::load(MemLevel::Dram),
        _ => Instr::simple_alu(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every covered event gets one sample per interval — exactly, for
    /// all intervals except the final one, which drain or the cycle
    /// budget may truncate mid-rotation.
    #[test]
    fn one_sample_per_event_per_interval(cfg in session_strategy()) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = mixed_stream(1_000_000);
        let report = collect(&mut core, &mut stream, &events(), &cfg);
        let n_events = events().len();
        prop_assert!(report.intervals > 0);
        prop_assert!(report.samples.len() <= report.intervals * n_events);
        prop_assert!(report.samples.len() > (report.intervals - 1) * n_events);
        for (_, group) in report.samples.by_metric() {
            // Balanced coverage: at most one missing (truncated) sample.
            prop_assert!(group.len() >= report.intervals - 1);
            prop_assert!(group.len() <= report.intervals);
            for s in group.samples() {
                prop_assert!(s.time() > 0.0);
                prop_assert!(s.work() >= 0.0);
                prop_assert!(s.metric_delta() >= 0.0);
            }
        }
    }

    /// Per-metric measured time never exceeds the session total, and the
    /// overhead fraction stays within [0, 1).
    #[test]
    fn time_accounting_is_consistent(cfg in session_strategy()) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = mixed_stream(1_000_000);
        let report = collect(&mut core, &mut stream, &events(), &cfg);
        for (_, group) in report.samples.by_metric() {
            let t: f64 = group.total_time();
            prop_assert!(t <= report.total_cycles as f64 + 1.0);
        }
        let f = report.overhead_fraction();
        prop_assert!((0.0..1.0).contains(&f), "overhead fraction {f}");
        if cfg.switch_overhead_cycles == 0 {
            prop_assert_eq!(report.overhead_cycles, 0);
        }
    }

    /// Multiplexing schedules always respect the PMU slot budget.
    #[test]
    fn schedules_fit_the_pmu(slots in 1usize..8) {
        let schedule = MultiplexSchedule::full_catalog(slots);
        for group in schedule.groups() {
            prop_assert!(group.len() <= slots);
            prop_assert!(!group.is_empty());
        }
        let covered: std::collections::BTreeSet<_> = schedule.events().collect();
        prop_assert_eq!(covered.len(), schedule.event_count());
    }

    /// Collection is deterministic in all of its parameters.
    #[test]
    fn collection_is_deterministic(cfg in session_strategy()) {
        let run = || {
            let mut core = Core::new(CoreConfig::skylake_server());
            let mut stream = mixed_stream(500_000);
            collect(&mut core, &mut stream, &events(), &cfg)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.overhead_cycles, b.overhead_cycles);
    }
}
