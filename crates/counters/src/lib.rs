//! # spire-counters
//!
//! The sample-collection layer of the SPIRE reproduction: everything
//! between a performance-monitoring unit and a trained model.
//!
//! * [`MultiplexSchedule`] — partitions a large event list into PMU-sized
//!   groups, as Linux perf's counter multiplexing does.
//! * [`collect`] / [`SessionConfig`] / [`SessionReport`] — runs a workload
//!   on a `spire_sim::Core` while rotating event groups and emitting one
//!   SPIRE sample per metric per interval (the paper's 2-second `perf
//!   stat` intervals), with reprogramming overhead accounted (the paper's
//!   1.6% average overhead statistic).
//! * [`perf`] — imports real `perf stat -I -x,` output, so models can be
//!   trained on actual hardware counters with the same pipeline.
//! * [`ingest`] — the multiplex-aware, fault-tolerant version of that
//!   import: counts are scaled by `1 / running_frac`, broken rows are
//!   quarantined under an error budget, and every run yields an
//!   [`IngestReport`].
//! * [`proc`] — supervises a live `perf` child process with deadline,
//!   retry, and graceful-degradation handling.
//! * [`Dataset`] — labeled, JSON-persisted sample corpora.
//!
//! ```
//! use spire_counters::{collect, SessionConfig};
//! use spire_sim::{Core, CoreConfig, Event, Instr};
//!
//! let mut core = Core::new(CoreConfig::skylake_server());
//! let mut stream = std::iter::repeat(Instr::simple_alu()).take(100_000);
//! let report = collect(
//!     &mut core,
//!     &mut stream,
//!     &[Event::IdqDsbUops, Event::BrMispRetiredAllBranches],
//!     &SessionConfig::quick(),
//! );
//! assert!(report.samples.len() > 0);
//! assert!(report.overhead_fraction() < 0.1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coverage;
mod dataset;
pub mod ingest;
pub mod perf;
pub mod pipeline;
pub mod proc;
mod schedule;
mod session;

pub use coverage::{CoverageReport, MetricCoverage};
pub use dataset::Dataset;
pub use ingest::{
    ingest_perf_csv, EventCoverage, Ingest, IngestConfig, IngestReport, QuarantineReason,
    QuarantinedRow,
};
pub use pipeline::IngestStage;
pub use proc::{run_capture, Capture, CaptureConfig, CaptureOutcome};
pub use schedule::MultiplexSchedule;
pub use session::{collect, collect_batched, SessionConfig, SessionReport};
