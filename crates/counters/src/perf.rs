//! Import of real `perf stat` interval data.
//!
//! The paper collects its samples with Linux perf's `stat` mode. This
//! module parses the machine-readable output of
//!
//! ```text
//! perf stat -I <ms> -x, -e <events> -- <workload>
//! ```
//!
//! and converts it into SPIRE [`Sample`]s, so a model can be trained on a
//! real CPU's counters with the same code path used for the simulator.
//!
//! Each CSV row is `time,count,unit,event,run_time,pct_running[,...]`;
//! rows whose count is `<not counted>` or `<not supported>` are skipped.
//! Within each interval, the designated *work* and *time* events supply
//! `W` and `T`, and every other event becomes one sample.
//!
//! Multiplexed captures report a `pct_running` below 100%: the counter was
//! live for only that fraction of the interval, so the raw count
//! undercounts the interval by the same factor. The conversion functions
//! here scale counts by `1 / running_frac` (see [`crate::IngestConfig`]);
//! the fault-tolerant entry point with quarantine accounting is
//! [`crate::ingest_perf_csv`].

use std::fmt;

use serde::{Deserialize, Serialize};
use spire_core::SampleSet;

use crate::ingest::{self, IngestConfig};

/// One parsed `perf stat -I -x,` row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRow {
    /// Interval end time in seconds.
    pub time_s: f64,
    /// Raw counter value for the interval (not yet corrected for
    /// multiplexing; see [`PerfRow::running_frac`]).
    pub count: f64,
    /// Event name.
    pub event: String,
    /// Fraction of the interval the event was actually counted
    /// (`pct_running / 100`), when present.
    pub running_frac: Option<f64>,
}

/// Errors produced while parsing perf output.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PerfParseError {
    /// A row had too few comma-separated fields.
    MalformedRow {
        /// 1-based line number.
        line: usize,
        /// The offending row text.
        row: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The field's content.
        value: String,
    },
    /// No interval contained both the work and time events.
    MissingFixedEvents {
        /// The work event looked for.
        work_event: String,
        /// The time event looked for.
        time_event: String,
    },
}

impl fmt::Display for PerfParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfParseError::MalformedRow { line, row } => {
                write!(f, "malformed perf row at line {line}: {row:?}")
            }
            PerfParseError::BadNumber { line, value } => {
                write!(f, "unparsable number at line {line}: {value:?}")
            }
            PerfParseError::MissingFixedEvents {
                work_event,
                time_event,
            } => write!(
                f,
                "no interval contains both `{work_event}` and `{time_event}`"
            ),
        }
    }
}

impl std::error::Error for PerfParseError {}

/// Parses `perf stat -I <ms> -x,` output into rows.
///
/// Comment lines (starting with `#`), empty lines, and rows whose count
/// is `<not counted>` / `<not supported>` are skipped silently.
///
/// # Errors
///
/// Returns [`PerfParseError`] for structurally malformed rows.
///
/// ```
/// use spire_counters::perf::parse_perf_csv;
///
/// let text = "\
/// 1.000241,1200000000,,inst_retired.any,1000000000,100.00,,
/// 1.000241,1000000000,,cpu_clk_unhalted.thread,1000000000,100.00,,
/// 1.000241,5000000,,br_misp_retired.all_branches,250000000,25.00,,
/// 1.000241,<not counted>,,idq.dsb_uops,0,0.00,,
/// ";
/// let rows = parse_perf_csv(text)?;
/// assert_eq!(rows.len(), 3); // the not-counted row is dropped
/// assert_eq!(rows[2].event, "br_misp_retired.all_branches");
/// # Ok::<(), spire_counters::perf::PerfParseError>(())
/// ```
pub fn parse_perf_csv(text: &str) -> Result<Vec<PerfRow>, PerfParseError> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        match parse_row(idx + 1, line) {
            RowParse::Row(row) => rows.push(row),
            RowParse::Blank | RowParse::NotCounted { .. } => {}
            RowParse::Malformed { line, row } => {
                return Err(PerfParseError::MalformedRow { line, row });
            }
            RowParse::BadNumber { line, value } => {
                return Err(PerfParseError::BadNumber { line, value });
            }
        }
    }
    Ok(rows)
}

/// The outcome of parsing one line of perf CSV.
///
/// The strict path ([`parse_perf_csv`]) turns the failure variants into
/// hard [`PerfParseError`]s; the fault-tolerant path
/// ([`crate::ingest_perf_csv`]) quarantines them instead.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RowParse {
    /// A structurally valid numeric row.
    Row(PerfRow),
    /// A comment or empty line.
    Blank,
    /// A `<not counted>` / `<not supported>` row.
    NotCounted {
        /// Whether the event was supported (`<not counted>`) or not
        /// (`<not supported>`).
        supported: bool,
    },
    /// A row with too few fields or an empty event name.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending row text.
        row: String,
    },
    /// A numeric field that failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The field's content.
        value: String,
    },
}

/// Classifies one line of `perf stat -I -x,` output.
pub(crate) fn parse_row(line_no: usize, line: &str) -> RowParse {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return RowParse::Blank;
    }
    let fields: Vec<&str> = trimmed.split(',').collect();
    if fields.len() < 4 {
        return RowParse::Malformed {
            line: line_no,
            row: trimmed.to_owned(),
        };
    }
    let count_field = fields[1].trim();
    if count_field.starts_with('<') {
        // "<not counted>" / "<not supported>"
        return RowParse::NotCounted {
            supported: !count_field.contains("not supported"),
        };
    }
    let Ok(time_s) = fields[0].trim().parse::<f64>() else {
        return RowParse::BadNumber {
            line: line_no,
            value: fields[0].to_owned(),
        };
    };
    let Ok(count) = count_field.parse::<f64>() else {
        return RowParse::BadNumber {
            line: line_no,
            value: count_field.to_owned(),
        };
    };
    let event = fields[3].trim().to_owned();
    if event.is_empty() {
        return RowParse::Malformed {
            line: line_no,
            row: trimmed.to_owned(),
        };
    }
    let running_frac = fields
        .get(5)
        .and_then(|s| s.trim().parse::<f64>().ok())
        .map(|pct| pct / 100.0);
    RowParse::Row(PerfRow {
        time_s,
        count,
        event,
        running_frac,
    })
}

/// Converts parsed perf rows into a SPIRE [`SampleSet`], correcting
/// multiplexed counts.
///
/// Rows are grouped by interval timestamp; within each interval, the
/// `work_event` row supplies `W`, the `time_event` row supplies `T`, and
/// every other row becomes one sample for its event. Counts with a
/// running fraction below 100% are scaled by `1 / running_frac` (the
/// counter was live for only that fraction of the interval); rows whose
/// fraction falls below the default [`IngestConfig::min_running_frac`]
/// floor are dropped as unreliable rather than wildly extrapolated.
/// Intervals missing either fixed event are skipped.
///
/// This is the strict wrapper over [`crate::ingest_perf_csv`]'s engine;
/// use that entry point to also receive an [`crate::IngestReport`] of
/// what was scaled, quarantined, or dropped.
///
/// # Errors
///
/// Returns [`PerfParseError::MissingFixedEvents`] if no interval carries
/// both fixed events (which would produce an empty set).
pub fn samples_from_rows(
    rows: &[PerfRow],
    work_event: &str,
    time_event: &str,
) -> Result<SampleSet, PerfParseError> {
    let config = IngestConfig {
        work_event: work_event.to_owned(),
        time_event: time_event.to_owned(),
        ..IngestConfig::default()
    };
    let out = ingest::ingest_rows(rows, &config);
    if out.report.intervals_ingested == 0 {
        return Err(PerfParseError::MissingFixedEvents {
            work_event: work_event.to_owned(),
            time_event: time_event.to_owned(),
        });
    }
    Ok(out.samples)
}

/// One-step convenience: parse perf CSV text and build multiplex-corrected
/// samples using the paper's fixed events (`inst_retired.any` and
/// `cpu_clk_unhalted.thread`).
///
/// # Errors
///
/// Propagates [`PerfParseError`] from parsing and conversion.
pub fn import_perf_stat(text: &str) -> Result<SampleSet, PerfParseError> {
    let rows = parse_perf_csv(text)?;
    let config = IngestConfig::default();
    samples_from_rows(&rows, &config.work_event, &config.time_event)
}

/// Runs `stream` on `core` and emits `perf stat -I -x,`-style CSV: one
/// row per `(interval, event)` with the fixed counters included, exactly
/// what [`import_perf_stat`] consumes. `cycles_per_second` calibrates
/// the timestamp column (perf reports wall-clock seconds).
///
/// Unlike [`crate::collect`], this reads every event each interval (as
/// if the PMU had unlimited counters); combined with the importer it
/// gives a multiplexing-free reference corpus, and it exercises the same
/// parser real perf output goes through.
pub fn export_perf_csv<I>(
    core: &mut spire_sim::Core,
    stream: &mut I,
    events: &[spire_sim::Event],
    interval_cycles: u64,
    max_cycles: u64,
    cycles_per_second: f64,
) -> String
where
    I: Iterator<Item = spire_sim::Instr>,
{
    assert!(interval_cycles > 0, "interval_cycles must be non-zero");
    assert!(
        cycles_per_second > 0.0,
        "cycles_per_second must be positive"
    );
    let mut out = String::from("# exported by spire-counters (simulated perf stat -I -x,)\n");
    let start = core.cycle();
    loop {
        let snapshot = core.counters().clone();
        core.run(stream, interval_cycles);
        let delta = core.counters().delta(&snapshot);
        let t = core.cycle() as f64 / cycles_per_second;
        for &e in events {
            out.push_str(&format!(
                "{t:.6},{},,{},{},100.00,,\n",
                delta.get(e),
                e.name(),
                interval_cycles
            ));
        }
        if core.is_drained() || core.cycle() - start >= max_cycles {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# started on Fri Jul  4 10:00:00 2026
1.000241,1200000000,,inst_retired.any,1000000000,100.00,,
1.000241,1000000000,,cpu_clk_unhalted.thread,1000000000,100.00,,
1.000241,5000000,,br_misp_retired.all_branches,250000000,25.00,,
1.000241,300000,,longest_lat_cache.miss,250000000,25.00,,
2.000300,1100000000,,inst_retired.any,1000000000,100.00,,
2.000300,1000000000,,cpu_clk_unhalted.thread,1000000000,100.00,,
2.000300,<not counted>,,br_misp_retired.all_branches,0,0.00,,
2.000300,250000,,longest_lat_cache.miss,500000000,50.00,,
";

    #[test]
    fn parses_rows_and_skips_comments_and_not_counted() {
        let rows = parse_perf_csv(SAMPLE).unwrap();
        assert_eq!(rows.len(), 7);
        assert!((rows[0].time_s - 1.000241).abs() < 1e-9);
        assert_eq!(rows[2].running_frac, Some(0.25));
    }

    #[test]
    fn builds_samples_grouped_by_interval() {
        let set = import_perf_stat(SAMPLE).unwrap();
        // Interval 1: 2 metric rows; interval 2: 1 (misp not counted).
        assert_eq!(set.len(), 3);
        let misp = set.samples_for(&spire_core::MetricId::new("br_misp_retired.all_branches"));
        assert_eq!(misp.len(), 1);
        assert_eq!(misp[0].work(), 1.2e9);
        assert_eq!(misp[0].time(), 1e9);
        // The counter ran for 25% of the interval, so the raw 5e6 count is
        // scaled by 1/0.25 to estimate the full interval.
        assert_eq!(misp[0].metric_delta(), 2e7);
        assert!((misp[0].throughput() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn multiplexed_counts_are_scaled_by_running_fraction() {
        let miss = import_perf_stat(SAMPLE).unwrap();
        let miss = miss.samples_for(&spire_core::MetricId::new("longest_lat_cache.miss"));
        assert_eq!(miss.len(), 2);
        // 300000 at 25% -> 1.2e6; 250000 at 50% -> 5e5.
        assert_eq!(miss[0].metric_delta(), 1.2e6);
        assert_eq!(miss[1].metric_delta(), 5e5);
    }

    #[test]
    fn malformed_row_is_an_error() {
        let err = parse_perf_csv("1.0,42\n").unwrap_err();
        assert!(matches!(err, PerfParseError::MalformedRow { line: 1, .. }));
    }

    #[test]
    fn bad_number_is_an_error() {
        let err = parse_perf_csv("abc,42,,evt,1,100,,\n").unwrap_err();
        assert!(matches!(err, PerfParseError::BadNumber { .. }));
    }

    #[test]
    fn trailing_commas_are_tolerated() {
        let rows = parse_perf_csv("1.0,42,,evt,1,100,,,,,,\n").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].event, "evt");
        assert_eq!(rows[0].running_frac, Some(1.0));
    }

    #[test]
    fn not_supported_and_not_counted_are_both_skipped() {
        let text = "\
1.0,<not counted>,,idq.dsb_uops,0,0.00,,
1.0,<not supported>,,slots,0,0.00,,
1.0,42,,evt,1,100,,
";
        let rows = parse_perf_csv(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].event, "evt");
        assert!(matches!(
            parse_row(1, "1.0,<not counted>,,e,0,0.00,,"),
            RowParse::NotCounted { supported: true }
        ));
        assert!(matches!(
            parse_row(1, "1.0,<not supported>,,e,0,0.00,,"),
            RowParse::NotCounted { supported: false }
        ));
    }

    #[test]
    fn empty_running_fraction_field_means_unknown() {
        let rows = parse_perf_csv("1.0,42,,evt,1,,,\n").unwrap();
        assert_eq!(rows[0].running_frac, None);
        // A row short enough to have no fraction field at all.
        let rows = parse_perf_csv("1.0,42,,evt\n").unwrap();
        assert_eq!(rows[0].running_frac, None);
        // Unknown fractions are ingested unscaled.
        let text = "\
1.0,100,,inst_retired.any,1,100,,
1.0,50,,cpu_clk_unhalted.thread,1,100,,
1.0,7,,evt,1,,,
";
        let set = import_perf_stat(text).unwrap();
        assert_eq!(set.iter().next().unwrap().metric_delta(), 7.0);
    }

    #[test]
    fn missing_fixed_events_is_an_error() {
        let text = "1.0,100,,some.event,1,100,,\n";
        let rows = parse_perf_csv(text).unwrap();
        let err =
            samples_from_rows(&rows, "inst_retired.any", "cpu_clk_unhalted.thread").unwrap_err();
        assert!(matches!(err, PerfParseError::MissingFixedEvents { .. }));
    }

    #[test]
    fn intervals_without_fixed_events_are_skipped_not_fatal() {
        let text = "\
1.0,100,,inst_retired.any,1,100,,
1.0,50,,cpu_clk_unhalted.thread,1,100,,
1.0,7,,some.event,1,100,,
2.0,9,,some.event,1,100,,
";
        let set = import_perf_stat(text).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn export_import_round_trip_from_the_simulator() {
        use spire_sim::{Core, CoreConfig, Event, Instr, MemLevel};
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = (0..50_000).map(|i| {
            if i % 5 == 0 {
                Instr::load(MemLevel::L2)
            } else {
                Instr::simple_alu()
            }
        });
        let events = [
            Event::InstRetiredAny,
            Event::CpuClkUnhaltedThread,
            Event::MemLoadRetiredL2Hit,
            Event::BrMispRetiredAllBranches,
        ];
        let csv = export_perf_csv(&mut core, &mut stream, &events, 5_000, 100_000, 1e9);
        let set = import_perf_stat(&csv).unwrap();
        assert!(!set.is_empty());
        // Two non-fixed events per interval.
        assert_eq!(set.metrics().count(), 2);
        // Work adds up to the retired instructions across intervals for
        // each metric.
        for (_, group) in set.by_metric() {
            let w: f64 = group.works().iter().sum();
            assert_eq!(w as u64, core.retired_instructions());
        }
        // The never-firing misprediction counter yields I = ∞ samples.
        let misp = set.samples_for(&spire_core::MetricId::new("br_misp_retired.all_branches"));
        assert!(misp.iter().all(|s| s.intensity().is_infinite()));
    }

    #[test]
    fn zero_metric_count_gives_infinite_intensity_sample() {
        let text = "\
1.0,100,,inst_retired.any,1,100,,
1.0,50,,cpu_clk_unhalted.thread,1,100,,
1.0,0,,some.event,1,100,,
";
        let set = import_perf_stat(text).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.iter().next().unwrap().intensity().is_infinite());
    }
}
