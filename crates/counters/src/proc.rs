//! Supervised `perf` child-process capture.
//!
//! Running `perf stat` for real is the least reliable link in the ingest
//! chain: the tool can be missing, refuse an event list, wedge on a
//! dead workload, or be OOM-killed halfway through a capture. This
//! module wraps the child process in deadline, retry-with-backoff, and
//! graceful-degradation logic so that every outcome — including a
//! killed or hung `perf` — still produces an honestly-labeled
//! [`Ingest`] instead of a panic, a hang, or a silent empty dataset.
//!
//! The supervisor never blocks indefinitely: stdout and stderr are
//! drained by chunk-reader threads feeding channels, so even a
//! grandchild that inherits the pipes cannot wedge the caller past the
//! configured deadline.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::ingest::{ingest_perf_csv, Ingest, IngestConfig};

/// Configuration for a supervised capture run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureConfig {
    /// Program to execute (normally `perf`).
    pub program: String,
    /// Arguments passed verbatim (e.g. `stat -I 2000 -x, -e ... -- cmd`).
    pub args: Vec<String>,
    /// Hard deadline per attempt; a child still running at the deadline
    /// is killed and its partial output ingested.
    pub timeout: Duration,
    /// Total attempts (at least 1). An attempt is retried only when it
    /// produced no samples at all; partial data is accepted as-is.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubled after each failure.
    pub initial_backoff: Duration,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            program: "perf".to_owned(),
            args: Vec::new(),
            timeout: Duration::from_secs(600),
            max_attempts: 3,
            initial_backoff: Duration::from_millis(200),
        }
    }
}

/// How a supervised capture ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// The child exited successfully before the deadline.
    Completed,
    /// The child was still running at the deadline and was killed; any
    /// output produced before the kill was ingested.
    TimedOut,
    /// The child exited with a non-zero status (code, when one exists —
    /// a signal-terminated child reports none).
    ExitedNonZero(Option<i32>),
    /// The child could not be spawned at all.
    SpawnFailed(String),
}

/// Result of a supervised capture: the (possibly partial) ingest plus
/// how the run ended and how many attempts it took.
#[derive(Debug)]
pub struct Capture {
    /// Ingested samples and report. On any outcome other than
    /// [`CaptureOutcome::Completed`], the report is marked degraded.
    pub ingest: Ingest,
    /// How the final attempt ended.
    pub outcome: CaptureOutcome,
    /// Number of attempts made (1-based).
    pub attempts: u32,
}

/// Spawns a chunk-reader thread that forwards a stream through a channel,
/// so the supervisor can stop listening without blocking on a pipe that
/// a grandchild may still hold open.
fn drain<R: Read + Send + 'static>(mut stream: R) -> mpsc::Receiver<Vec<u8>> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut buf = [0u8; 8192];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                // A dropped receiver means the supervisor gave up; keep
                // draining quietly so the child never blocks on a full
                // pipe, but stop once the read errors out.
                Ok(n) => {
                    let _ = tx.send(buf[..n].to_vec());
                }
            }
        }
    });
    rx
}

/// Pulls everything currently queued on a reader channel.
fn recv_pending(rx: &mpsc::Receiver<Vec<u8>>, into: &mut Vec<u8>) {
    while let Ok(chunk) = rx.try_recv() {
        into.extend_from_slice(&chunk);
    }
}

/// Gives a finished child's reader a short grace period to flush.
fn recv_grace(rx: &mpsc::Receiver<Vec<u8>>, into: &mut Vec<u8>, grace: Duration) {
    let deadline = Instant::now() + grace;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(chunk) => into.extend_from_slice(&chunk),
            Err(_) => break,
        }
    }
}

fn kill_and_reap(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Runs one supervised attempt; returns raw stdout bytes and the outcome.
fn run_attempt(config: &CaptureConfig) -> (Vec<u8>, CaptureOutcome) {
    let mut child = match Command::new(&config.program)
        .args(&config.args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return (Vec::new(), CaptureOutcome::SpawnFailed(e.to_string())),
    };

    let stdout_rx = drain(child.stdout.take().expect("stdout was piped"));
    // Stderr must be drained too or a chatty perf can wedge on a full
    // pipe; its content is not ingested.
    let _stderr_rx = drain(child.stderr.take().expect("stderr was piped"));

    let deadline = Instant::now() + config.timeout;
    let grace = Duration::from_millis(250);
    let mut out = Vec::new();
    loop {
        recv_pending(&stdout_rx, &mut out);
        match child.try_wait() {
            Ok(Some(status)) => {
                recv_grace(&stdout_rx, &mut out, grace);
                let outcome = if status.success() {
                    CaptureOutcome::Completed
                } else {
                    CaptureOutcome::ExitedNonZero(status.code())
                };
                return (out, outcome);
            }
            Ok(None) => {
                if Instant::now() >= deadline {
                    kill_and_reap(&mut child);
                    recv_grace(&stdout_rx, &mut out, grace);
                    return (out, CaptureOutcome::TimedOut);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                kill_and_reap(&mut child);
                recv_grace(&stdout_rx, &mut out, grace);
                return (out, CaptureOutcome::SpawnFailed(e.to_string()));
            }
        }
    }
}

/// Runs a supervised, fault-tolerant capture.
///
/// Each attempt runs the configured program under a hard deadline; a
/// child still alive at the deadline is killed and whatever it wrote is
/// ingested. Attempts that yield **no samples at all** are retried with
/// exponential backoff up to [`CaptureConfig::max_attempts`]; an attempt
/// that yields any samples is accepted immediately. On every outcome
/// other than a clean exit, the returned report is marked
/// [`degraded`](crate::IngestReport::degraded) with a reason, so
/// downstream consumers know the capture may be incomplete.
///
/// # Panics
///
/// Panics if `ingest` fails [`IngestConfig::validate`].
pub fn run_capture(config: &CaptureConfig, ingest: &IngestConfig) -> Capture {
    let attempts_allowed = config.max_attempts.max(1);
    let mut backoff = config.initial_backoff;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let (bytes, outcome) = run_attempt(config);
        let text = String::from_utf8_lossy(&bytes);
        let mut result = ingest_perf_csv(&text, ingest);
        match &outcome {
            CaptureOutcome::Completed => {}
            CaptureOutcome::TimedOut => {
                result.report.degraded = true;
                result.report.degraded_reason = Some(format!(
                    "capture killed at the {:?} deadline; partial output ingested",
                    config.timeout
                ));
            }
            CaptureOutcome::ExitedNonZero(code) => {
                result.report.degraded = true;
                result.report.degraded_reason = Some(match code {
                    Some(c) => format!("perf exited with status {c}"),
                    None => "perf was terminated by a signal".to_owned(),
                });
            }
            CaptureOutcome::SpawnFailed(e) => {
                result.report.degraded = true;
                result.report.degraded_reason = Some(format!("failed to run perf: {e}"));
            }
        }
        let recovered = !result.samples.is_empty();
        if recovered || attempt >= attempts_allowed {
            return Capture {
                ingest: result,
                outcome,
                attempts: attempt,
            };
        }
        std::thread::sleep(backoff);
        backoff = backoff.saturating_mul(2);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    /// A minimal valid two-event capture body.
    const CSV: &str = "1.0,1000,,inst_retired.any,1000000,100.00,,\\n\
                       1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,\\n\
                       1.0,120,,evt.a,250000,25.00,,\\n";

    fn sh(script: String) -> CaptureConfig {
        CaptureConfig {
            program: "/bin/sh".to_owned(),
            args: vec!["-c".to_owned(), script],
            timeout: Duration::from_secs(10),
            max_attempts: 1,
            initial_backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn clean_exit_yields_samples_and_no_degradation() {
        let cap = run_capture(&sh(format!("printf '{CSV}'")), &IngestConfig::default());
        assert_eq!(cap.outcome, CaptureOutcome::Completed);
        assert_eq!(cap.attempts, 1);
        assert_eq!(cap.ingest.samples.len(), 1);
        assert!(!cap.ingest.report.degraded);
        // Multiplex correction applies on the supervised path too.
        let s = cap.ingest.samples.iter().next().unwrap();
        assert_eq!(s.metric_delta(), 480.0);
    }

    #[test]
    fn nonzero_exit_keeps_partial_output_and_marks_degraded() {
        let cap = run_capture(
            &sh(format!("printf '{CSV}'; exit 3")),
            &IngestConfig::default(),
        );
        assert_eq!(cap.outcome, CaptureOutcome::ExitedNonZero(Some(3)));
        assert_eq!(cap.ingest.samples.len(), 1);
        assert!(cap.ingest.report.degraded);
        assert!(cap
            .ingest
            .report
            .degraded_reason
            .as_deref()
            .unwrap()
            .contains("status 3"));
    }

    #[test]
    fn wedged_child_is_killed_at_the_deadline_with_partial_ingest() {
        let mut config = sh(format!("printf '{CSV}'; exec sleep 30"));
        config.timeout = Duration::from_millis(300);
        let start = Instant::now();
        let cap = run_capture(&config, &IngestConfig::default());
        assert!(start.elapsed() < Duration::from_secs(5), "supervisor hung");
        assert_eq!(cap.outcome, CaptureOutcome::TimedOut);
        assert_eq!(cap.ingest.samples.len(), 1);
        assert!(cap.ingest.report.degraded);
        assert!(cap
            .ingest
            .report
            .degraded_reason
            .as_deref()
            .unwrap()
            .contains("deadline"));
    }

    #[test]
    fn missing_program_degrades_after_all_retries() {
        let config = CaptureConfig {
            program: "/nonexistent/spire-no-such-perf".to_owned(),
            args: Vec::new(),
            timeout: Duration::from_secs(1),
            max_attempts: 2,
            initial_backoff: Duration::from_millis(1),
        };
        let cap = run_capture(&config, &IngestConfig::default());
        assert!(matches!(cap.outcome, CaptureOutcome::SpawnFailed(_)));
        assert_eq!(cap.attempts, 2);
        assert_eq!(cap.ingest.samples.len(), 0);
        assert!(cap.ingest.report.degraded);
    }

    #[test]
    fn empty_attempts_are_retried_until_one_yields_samples() {
        // First run exits empty; the marker file makes the second succeed.
        let marker = std::env::temp_dir().join(format!("spire-proc-retry-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "if [ -e {m} ]; then printf '{CSV}'; else : > {m}; exit 1; fi",
            m = marker.display()
        );
        let mut config = sh(script);
        config.max_attempts = 3;
        let cap = run_capture(&config, &IngestConfig::default());
        let _ = std::fs::remove_file(&marker);
        assert_eq!(cap.attempts, 2);
        assert_eq!(cap.outcome, CaptureOutcome::Completed);
        assert_eq!(cap.ingest.samples.len(), 1);
        assert!(!cap.ingest.report.degraded);
    }

    #[test]
    fn partial_data_is_accepted_without_retry() {
        // Non-zero exit but with usable output: accept, don't retry.
        let mut config = sh(format!("printf '{CSV}'; exit 9"));
        config.max_attempts = 5;
        let cap = run_capture(&config, &IngestConfig::default());
        assert_eq!(cap.attempts, 1);
        assert_eq!(cap.ingest.samples.len(), 1);
    }
}
