//! Sampling sessions: running a workload on the simulated core while
//! collecting SPIRE samples through a multiplexed PMU.
//!
//! This mirrors the paper's collection setup (Section IV): `perf stat`
//! reads the counters in fixed wall-clock intervals while multiplexing a
//! large event list over a small number of hardware counters, and each
//! `(interval, metric)` pair becomes one SPIRE sample with shared `T`
//! (cycles) and `W` (instructions).

use serde::{Deserialize, Serialize};
use spire_core::{MetricId, SampleSet};
use spire_sim::{Core, Event, Instr, Pmu};

use crate::schedule::MultiplexSchedule;

/// Configuration of a sampling session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Cycles per sampling interval (the paper's "2 seconds"). One sample
    /// per metric is emitted per interval.
    pub interval_cycles: u64,
    /// Cycles each event group is programmed for within an interval.
    pub slice_cycles: u64,
    /// Programmable PMU slots available for multiplexing.
    pub pmu_slots: usize,
    /// Cycles of overhead charged for each group reprogramming (the
    /// source of the paper's 1.6% average sampling overhead).
    pub switch_overhead_cycles: u64,
    /// Hard cap on total simulated cycles (including overhead).
    pub max_cycles: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            interval_cycles: 200_000,
            slice_cycles: 10_000,
            pmu_slots: 4,
            switch_overhead_cycles: 60,
            max_cycles: 20_000_000,
        }
    }
}

impl SessionConfig {
    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        SessionConfig {
            interval_cycles: 20_000,
            slice_cycles: 2_000,
            pmu_slots: 4,
            switch_overhead_cycles: 20,
            max_cycles: 400_000,
        }
    }
}

/// The outcome of a sampling session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The collected SPIRE samples (one per metric per interval).
    pub samples: SampleSet,
    /// Total cycles simulated, including multiplexing overhead.
    pub total_cycles: u64,
    /// Instructions retired over the session.
    pub instructions: u64,
    /// Cycles spent on PMU reprogramming.
    pub overhead_cycles: u64,
    /// Number of completed sampling intervals.
    pub intervals: usize,
    /// Number of event groups in the rotation.
    pub groups: usize,
    /// Readings that failed sample validation and were dropped instead of
    /// aborting the session (0 for healthy counters; non-zero indicates a
    /// simulator or PMU defect worth investigating).
    pub dropped_samples: usize,
}

impl SessionReport {
    /// Overall instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of execution time lost to counter multiplexing — the
    /// statistic the paper reports as 1.6% average / 4.6% max.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Runs `stream` on `core`, sampling `events` with multiplexing, until the
/// stream drains or `config.max_cycles` is reached.
///
/// For each interval, the schedule's groups rotate in round-robin slices.
/// Per `(group slice, event)` the session reads `T` (cycles), `W`
/// (instructions) and `M_x` through the PMU; slices belonging to the same
/// interval accumulate into one [`Sample`] per event. The fixed counters
/// are measured alongside every group, exactly as on real hardware.
///
/// # Panics
///
/// Panics if `config` has a zero interval, slice, or slot count.
pub fn collect<I>(
    core: &mut Core,
    stream: &mut I,
    events: &[Event],
    config: &SessionConfig,
) -> SessionReport
where
    I: Iterator<Item = Instr>,
{
    let mut samples = SampleSet::new();
    let mut report = collect_batched(core, stream, events, config, |batch| samples.merge(batch));
    report.samples = samples;
    report
}

/// Streaming variant of [`collect`]: hands each completed interval's
/// samples to `on_batch` as one insertable [`SampleSet`] instead of
/// accumulating them, so callers can feed an incremental trainer
/// ([`spire_core::OnlineTrainer`]) without holding the whole session in
/// memory. Batches arrive in interval order; merging them in order
/// reproduces [`collect`]'s sample set exactly.
///
/// The returned report's `samples` field is left empty — the samples were
/// handed to `on_batch` — while every other field (cycles, instructions,
/// overhead, intervals, groups, dropped samples) is identical to what
/// [`collect`] would report.
///
/// # Panics
///
/// Panics if `config` has a zero interval, slice, or slot count.
pub fn collect_batched<I, F>(
    core: &mut Core,
    stream: &mut I,
    events: &[Event],
    config: &SessionConfig,
    mut on_batch: F,
) -> SessionReport
where
    I: Iterator<Item = Instr>,
    F: FnMut(SampleSet),
{
    assert!(
        config.interval_cycles > 0,
        "interval_cycles must be non-zero"
    );
    assert!(config.slice_cycles > 0, "slice_cycles must be non-zero");
    let schedule = MultiplexSchedule::new(events, config.pmu_slots);
    let mut pmu = Pmu::new(config.pmu_slots);
    let start_cycles = core.cycle();
    let start_instrs = core.retired_instructions();
    let mut overhead_cycles = 0u64;
    let mut intervals = 0usize;
    let mut dropped_samples = 0usize;

    // Accumulators per event within the current interval: (T, W, M).
    let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); schedule.event_count()];
    let flat_events: Vec<Event> = schedule.events().collect();
    let overhead_stream_budget = config.switch_overhead_cycles;

    'outer: while schedule.group_count() > 0 {
        // One interval: rotate groups until interval_cycles are consumed.
        let interval_start = core.cycle();
        acc.iter_mut().for_each(|a| *a = (0.0, 0.0, 0.0));
        'interval: for (group_idx, group) in schedule.groups().iter().enumerate().cycle() {
            // Reprogramming overhead: the workload keeps running but no
            // group is being measured.
            pmu.program(group)
                .expect("groups fit the PMU by construction");
            if overhead_stream_budget > 0 {
                let before = core.cycle();
                core.run(stream, overhead_stream_budget);
                overhead_cycles += core.cycle() - before;
            }

            // Measure the slice through the PMU.
            let snapshot = core.counters().clone();
            core.run(stream, config.slice_cycles);
            let delta = core.counters().delta(&snapshot);
            let t = pmu
                .read(&delta, Event::CpuClkUnhaltedThread)
                .expect("fixed counter") as f64;
            let w = pmu
                .read(&delta, Event::InstRetiredAny)
                .expect("fixed counter") as f64;
            for &e in group {
                let m = pmu.read(&delta, e).expect("programmed event") as f64;
                let idx = flat_events
                    .iter()
                    .position(|&fe| fe == e)
                    .expect("event is in the schedule");
                let slot = &mut acc[idx];
                slot.0 += t;
                slot.1 += w;
                slot.2 += m;
            }

            let drained = core.is_drained();
            let out_of_budget = core.cycle() - start_cycles >= config.max_cycles;
            // Intervals close only at rotation boundaries so that every
            // event receives the same number of slices per interval (the
            // final interval may still be truncated by drain or budget).
            let rotation_done = group_idx + 1 == schedule.group_count();
            if (rotation_done && core.cycle() - interval_start >= config.interval_cycles)
                || drained
                || out_of_budget
            {
                // Close the interval: emit one sample per covered event
                // into this interval's batch.
                let mut batch = SampleSet::new();
                for (i, &e) in flat_events.iter().enumerate() {
                    let (t, w, m) = acc[i];
                    // A malfunctioning counter (e.g. a wrapped delta) must
                    // not abort the whole session: drop the reading and
                    // account for it instead.
                    if t > 0.0 {
                        match batch.push_parts(MetricId::new(e.name()), t, w, m) {
                            Ok(()) => {}
                            Err(_) => dropped_samples += 1,
                        }
                    }
                }
                if !batch.is_empty() {
                    intervals += 1;
                    on_batch(batch);
                }
                if drained || out_of_budget {
                    break 'outer;
                }
                break 'interval;
            }
        }
    }

    SessionReport {
        samples: SampleSet::new(),
        total_cycles: core.cycle() - start_cycles,
        instructions: core.retired_instructions() - start_instrs,
        overhead_cycles,
        intervals,
        groups: schedule.group_count(),
        dropped_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_sim::CoreConfig;

    fn alu_stream(n: usize) -> std::vec::IntoIter<Instr> {
        vec![Instr::simple_alu(); n].into_iter()
    }

    fn small_events() -> Vec<Event> {
        vec![
            Event::IdqDsbUops,
            Event::IcacheMisses,
            Event::LongestLatCacheMiss,
            Event::BrMispRetiredAllBranches,
            Event::CycleActivityStallsTotal,
            Event::UopsIssuedAny,
        ]
    }

    #[test]
    fn collect_emits_one_sample_per_event_per_interval() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(500_000);
        let report = collect(
            &mut core,
            &mut stream,
            &small_events(),
            &SessionConfig::quick(),
        );
        assert!(report.intervals >= 2, "intervals = {}", report.intervals);
        // Each interval covers all 6 events; healthy counters drop nothing.
        assert_eq!(report.samples.len(), report.intervals * 6);
        assert_eq!(report.samples.metrics().count(), 6);
        assert_eq!(report.dropped_samples, 0);
    }

    #[test]
    fn sample_times_are_positive_and_bounded_by_interval() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(300_000);
        let cfg = SessionConfig::quick();
        let report = collect(&mut core, &mut stream, &small_events(), &cfg);
        for s in report.samples.iter() {
            assert!(s.time() > 0.0);
            assert!(s.time() <= cfg.interval_cycles as f64 + cfg.slice_cycles as f64);
        }
    }

    #[test]
    fn overhead_is_accounted_and_small() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(500_000);
        let report = collect(
            &mut core,
            &mut stream,
            &small_events(),
            &SessionConfig::quick(),
        );
        assert!(report.overhead_cycles > 0);
        // The paper reports 1.6% average; our default is the same order.
        assert!(
            report.overhead_fraction() < 0.1,
            "overhead {}",
            report.overhead_fraction()
        );
    }

    #[test]
    fn session_stops_at_max_cycles() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = std::iter::repeat(Instr::simple_alu());
        let mut cfg = SessionConfig::quick();
        cfg.max_cycles = 50_000;
        let report = collect(&mut core, &mut stream, &small_events(), &cfg);
        assert!(report.total_cycles >= 50_000);
        assert!(report.total_cycles < 80_000);
    }

    #[test]
    fn session_drains_short_streams() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(5_000);
        let report = collect(
            &mut core,
            &mut stream,
            &small_events(),
            &SessionConfig::quick(),
        );
        assert_eq!(report.instructions, 5_000);
        assert!(core.is_drained());
        assert!(report.intervals >= 1);
    }

    #[test]
    fn fixed_counters_are_consistent_with_samples() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(200_000);
        let report = collect(
            &mut core,
            &mut stream,
            &small_events(),
            &SessionConfig::quick(),
        );
        // Summed per-metric work cannot exceed the total work (each event
        // only sees its own slices).
        let per_metric = report.samples.by_metric();
        for (_, group) in per_metric {
            let w: f64 = group.works().iter().sum();
            assert!(w <= report.instructions as f64 + 1.0);
        }
    }

    #[test]
    fn batched_collection_concatenates_to_the_unbatched_sample_set() {
        let cfg = SessionConfig::quick();
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(300_000);
        let whole = collect(&mut core, &mut stream, &small_events(), &cfg);

        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(300_000);
        let mut batches = Vec::new();
        let report = collect_batched(&mut core, &mut stream, &small_events(), &cfg, |batch| {
            batches.push(batch)
        });

        assert!(report.samples.is_empty(), "batched report holds no samples");
        assert_eq!(batches.len(), report.intervals, "one batch per interval");
        assert_eq!(report.intervals, whole.intervals);
        assert_eq!(report.total_cycles, whole.total_cycles);
        assert_eq!(report.instructions, whole.instructions);
        assert_eq!(report.overhead_cycles, whole.overhead_cycles);
        assert_eq!(report.dropped_samples, whole.dropped_samples);

        let mut merged = SampleSet::new();
        for batch in batches {
            merged.merge(batch);
        }
        assert_eq!(merged, whole.samples);
    }

    #[test]
    fn empty_event_list_produces_no_samples() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = alu_stream(10_000);
        let report = collect(&mut core, &mut stream, &[], &SessionConfig::quick());
        assert!(report.samples.is_empty());
    }
}
