//! Sampling-coverage diagnostics: how well a multiplexed sample set
//! represents the execution it was collected from.
//!
//! Multiplexing means each metric only observes a fraction of the run.
//! The paper relies on that fraction being balanced ("collected a sample
//! for each metric every two seconds"); these diagnostics make the
//! property checkable — and surface the representation problems the
//! paper warns about (Section III-A) before they mislead an analysis.

use serde::{Deserialize, Serialize};
use spire_core::SampleSet;

use crate::ingest::IngestReport;

/// Coverage summary for one metric within a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricCoverage {
    /// The metric name.
    pub metric: String,
    /// Number of samples collected for it.
    pub samples: usize,
    /// Total measured time (sum of the samples' `T`).
    pub measured_time: f64,
    /// Fraction of the session's duration this metric observed.
    pub time_fraction: f64,
    /// Coefficient of variation of the samples' throughput — high values
    /// indicate phase behaviour that a single average may misrepresent.
    pub throughput_cv: f64,
    /// Mean multiplex running fraction reported by the ingest layer, when
    /// the samples came from a perf capture that recorded one (`None` for
    /// simulator sessions and legacy captures).
    pub mean_running_frac: Option<f64>,
}

/// A coverage report over a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    per_metric: Vec<MetricCoverage>,
    total_time: f64,
}

impl CoverageReport {
    /// Builds the report. `session_cycles` is the wall duration the
    /// samples were collected over (e.g.
    /// [`crate::SessionReport::total_cycles`]); per-metric time fractions
    /// are measured against it.
    ///
    /// # Panics
    ///
    /// Panics if `session_cycles` is not positive.
    pub fn new(samples: &SampleSet, session_cycles: f64) -> Self {
        Self::build(samples, session_cycles, None)
    }

    /// Like [`CoverageReport::new`], but annotates each metric with the
    /// multiplex running fraction observed by a fault-tolerant ingest, so
    /// the coverage table shows how much of each interval the underlying
    /// hardware counter was actually live for.
    pub fn with_ingest(samples: &SampleSet, session_cycles: f64, ingest: &IngestReport) -> Self {
        Self::build(samples, session_cycles, Some(ingest))
    }

    fn build(samples: &SampleSet, session_cycles: f64, ingest: Option<&IngestReport>) -> Self {
        assert!(session_cycles > 0.0, "session duration must be positive");
        let mut per_metric = Vec::new();
        for (metric, group) in samples.by_metric() {
            let measured_time = group.total_time();
            let (mean, std) = spire_core::stats::mean_std(group.throughputs());
            per_metric.push(MetricCoverage {
                metric: metric.to_string(),
                samples: group.len(),
                measured_time,
                time_fraction: measured_time / session_cycles,
                throughput_cv: if mean > 0.0 { std / mean } else { 0.0 },
                mean_running_frac: ingest.and_then(|r| r.event_running_frac(metric.as_str())),
            });
        }
        CoverageReport {
            per_metric,
            total_time: session_cycles,
        }
    }

    /// Per-metric coverage rows, ordered by metric name.
    pub fn per_metric(&self) -> &[MetricCoverage] {
        &self.per_metric
    }

    /// The session duration the fractions are measured against.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// The smallest and largest per-metric time fractions — a balance
    /// check for the multiplexing schedule. Returns `(0, 0)` when empty.
    pub fn fraction_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for m in &self.per_metric {
            lo = lo.min(m.time_fraction);
            hi = hi.max(m.time_fraction);
        }
        if self.per_metric.is_empty() {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Metrics whose throughput varies strongly across samples
    /// (coefficient of variation above `threshold`) — candidates for the
    /// paper's representation warning.
    pub fn phase_suspects(&self, threshold: f64) -> Vec<&MetricCoverage> {
        self.per_metric
            .iter()
            .filter(|m| m.throughput_cv > threshold)
            .collect()
    }

    /// Renders an aligned text table of the `n` least-covered metrics.
    pub fn to_table(&self, n: usize) -> String {
        let mut rows: Vec<&MetricCoverage> = self.per_metric.iter().collect();
        rows.sort_by(|a, b| a.time_fraction.total_cmp(&b.time_fraction));
        let mut out = format!(
            "{:<50} {:>8} {:>10} {:>8} {:>9}\n",
            "metric", "samples", "time frac", "P cv", "mux frac"
        );
        for m in rows.into_iter().take(n) {
            let mux = m
                .mean_running_frac
                .map_or("-".to_owned(), |f| format!("{:.1}%", f * 100.0));
            out.push_str(&format!(
                "{:<50} {:>8} {:>9.2}% {:>8.3} {:>9}\n",
                m.metric,
                m.samples,
                m.time_fraction * 100.0,
                m.throughput_cv,
                mux
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, SessionConfig};
    use spire_sim::{Core, CoreConfig, Event, Instr};

    fn collected() -> (SampleSet, f64) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = std::iter::repeat_n(Instr::simple_alu(), 400_000);
        let report = collect(
            &mut core,
            &mut stream,
            &[
                Event::IdqDsbUops,
                Event::IcacheMisses,
                Event::LongestLatCacheMiss,
                Event::BrMispRetiredAllBranches,
            ],
            &SessionConfig::quick(),
        );
        (report.samples, report.total_cycles as f64)
    }

    #[test]
    fn fractions_are_balanced_and_bounded() {
        let (samples, cycles) = collected();
        let report = CoverageReport::new(&samples, cycles);
        assert_eq!(report.per_metric().len(), 4);
        let (lo, hi) = report.fraction_range();
        assert!(lo > 0.0 && hi < 1.0);
        // One group of 4 events on a 4-slot PMU: every metric shares the
        // same slices, so the fractions are identical.
        assert!((hi - lo) < 1e-9, "lo {lo} hi {hi}");
    }

    #[test]
    fn steady_workload_has_low_throughput_cv() {
        let (samples, cycles) = collected();
        let report = CoverageReport::new(&samples, cycles);
        for m in report.per_metric() {
            assert!(
                m.throughput_cv < 0.2,
                "{}: cv {}",
                m.metric,
                m.throughput_cv
            );
        }
        assert!(report.phase_suspects(0.5).is_empty());
    }

    #[test]
    fn table_lists_least_covered_first() {
        let (samples, cycles) = collected();
        let report = CoverageReport::new(&samples, cycles);
        let t = report.to_table(2);
        assert!(t.contains("time frac"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn empty_set_yields_empty_report() {
        let report = CoverageReport::new(&SampleSet::new(), 100.0);
        assert!(report.per_metric().is_empty());
        assert_eq!(report.fraction_range(), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        CoverageReport::new(&SampleSet::new(), 0.0);
    }

    #[test]
    fn ingest_report_annotates_multiplex_fractions() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let report = CoverageReport::with_ingest(&out.samples, 500.0, &out.report);
        let m = &report.per_metric()[0];
        assert_eq!(m.metric, "evt.a");
        assert_eq!(m.mean_running_frac, Some(0.25));
        assert!(report.to_table(5).contains("25.0%"));
        // The plain constructor leaves the annotation empty.
        let plain = CoverageReport::new(&out.samples, 500.0);
        assert_eq!(plain.per_metric()[0].mean_running_frac, None);
        assert!(plain.to_table(5).contains("mux frac"));
    }
}
