//! Multiplex-aware, fault-tolerant counter ingest.
//!
//! Real `perf stat` captures are messy: events share hardware counters
//! and are only live for a fraction of each interval (multiplexing),
//! lines get truncated when a run is killed, counts come back as
//! `<not counted>`, and long captures can contain intervals with no
//! usable fixed counters at all. The paper's evaluation multiplexes 424
//! events over a handful of counters, so feeding *raw* counts into the
//! model silently biases every `M_x` — and thus every intensity and
//! bottleneck ranking — for any event that shared a counter.
//!
//! This module is the hardened counters→[`SampleSet`] path:
//!
//! * **Multiplex correction** — each row's count is scaled by
//!   `1 / running_frac`, with a configurable floor below which a row is
//!   quarantined as unreliable rather than wildly extrapolated.
//! * **Quarantine channel** — malformed rows, unparsable numbers,
//!   non-finite counts, and low-coverage rows are counted per reason and
//!   (capped) recorded, instead of vanishing or aborting the ingest.
//! * **Error budget** — ingest always returns the partial data it could
//!   recover; callers that need a quality gate check
//!   [`IngestReport::budget_exceeded`] or use [`Ingest::into_strict`].
//! * **[`IngestReport`]** — rows parsed/scaled/quarantined, intervals
//!   dropped, and per-event multiplex coverage, for surfacing through the
//!   CLI and [`crate::CoverageReport`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use spire_core::{MetricId, SampleSet, SpireError};

use crate::perf::{parse_row, PerfRow, RowParse};

/// Configuration of the fault-tolerant ingest path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Event supplying `W` (work) per interval.
    pub work_event: String,
    /// Event supplying `T` (time) per interval.
    pub time_event: String,
    /// Scale counts by `1 / running_frac` to correct for counter
    /// multiplexing. Disable only for perf builds that already emit
    /// extrapolated counts.
    pub scale_multiplexed: bool,
    /// Rows whose running fraction is below this floor are quarantined as
    /// unreliable instead of extrapolated; must be in `(0, 1]`.
    pub min_running_frac: f64,
    /// Maximum tolerated fraction of quarantined rows (the error budget),
    /// in `[0, 1]`. Exceeding it never aborts a lenient ingest, but flags
    /// the report and fails [`Ingest::into_strict`].
    pub error_budget: f64,
    /// Cap on the number of per-row quarantine details retained in the
    /// report (counts are always exact; details beyond the cap are
    /// dropped and flagged).
    pub max_quarantine_details: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            work_event: "inst_retired.any".to_owned(),
            time_event: "cpu_clk_unhalted.thread".to_owned(),
            scale_multiplexed: true,
            min_running_frac: 0.05,
            error_budget: 0.5,
            max_quarantine_details: 16,
        }
    }
}

impl IngestConfig {
    /// Checks the configuration's domain constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> spire_core::Result<()> {
        if !(self.min_running_frac > 0.0 && self.min_running_frac <= 1.0) {
            return Err(SpireError::InvalidConfig {
                field: "min_running_frac",
                reason: format!("must be in (0, 1], got {}", self.min_running_frac),
            });
        }
        if !(self.error_budget >= 0.0 && self.error_budget <= 1.0) {
            return Err(SpireError::InvalidConfig {
                field: "error_budget",
                reason: format!("must be in [0, 1], got {}", self.error_budget),
            });
        }
        if self.work_event.is_empty() || self.time_event.is_empty() {
            return Err(SpireError::InvalidConfig {
                field: "work_event/time_event",
                reason: "fixed event names must be non-empty".to_owned(),
            });
        }
        if self.work_event == self.time_event {
            return Err(SpireError::InvalidConfig {
                field: "work_event/time_event",
                reason: "work and time events must differ".to_owned(),
            });
        }
        Ok(())
    }
}

/// Why a row was quarantined instead of ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// Too few fields, or an empty event name.
    MalformedRow,
    /// The timestamp or count field failed to parse as a number.
    BadNumber,
    /// The timestamp parsed but is not finite.
    BadTimestamp,
    /// The count parsed but is NaN or infinite.
    NonFiniteCount,
    /// The count is negative (counters are monotonic).
    NegativeCount,
    /// The running fraction is below the configured floor (or zero), so
    /// extrapolating the count would be unreliable.
    LowRunningFrac,
}

impl QuarantineReason {
    /// Stable snake_case name, used as the report's per-reason map key.
    pub fn as_str(self) -> &'static str {
        match self {
            QuarantineReason::MalformedRow => "malformed_row",
            QuarantineReason::BadNumber => "bad_number",
            QuarantineReason::BadTimestamp => "bad_timestamp",
            QuarantineReason::NonFiniteCount => "non_finite_count",
            QuarantineReason::NegativeCount => "negative_count",
            QuarantineReason::LowRunningFrac => "low_running_frac",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One quarantined row, retained (up to a cap) for diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedRow {
    /// 1-based line number in the capture.
    pub line: usize,
    /// Why the row was quarantined.
    pub reason: QuarantineReason,
    /// The offending row text, truncated to a diagnostic snippet.
    pub snippet: String,
}

/// Per-event multiplex coverage, aggregated over the whole capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCoverage {
    /// The event name.
    pub event: String,
    /// Structurally valid rows observed for this event (ingested or
    /// quarantined at the scaling stage).
    pub rows: usize,
    /// Rows whose count was scaled up to correct for multiplexing.
    pub scaled_rows: usize,
    /// Rows quarantined at the scaling stage (low running fraction).
    pub quarantined_rows: usize,
    /// Mean running fraction over rows that reported one.
    pub mean_running_frac: Option<f64>,
    /// Smallest running fraction observed.
    pub min_running_frac: Option<f64>,
}

/// What a fault-tolerant ingest did to its input: rows parsed, scaled,
/// and quarantined; intervals dropped; per-event multiplex coverage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Non-comment, non-empty lines seen.
    pub rows_seen: usize,
    /// Structurally valid numeric rows.
    pub rows_parsed: usize,
    /// Rows reporting `<not counted>` (normal under heavy multiplexing;
    /// tracked but not charged against the error budget).
    pub rows_not_counted: usize,
    /// Rows reporting `<not supported>`.
    pub rows_not_supported: usize,
    /// Rows whose count was scaled by `1 / running_frac`.
    pub rows_scaled: usize,
    /// Rows quarantined for any reason.
    pub rows_quarantined: usize,
    /// Quarantine counts keyed by [`QuarantineReason::as_str`].
    pub quarantined_by_reason: BTreeMap<String, usize>,
    /// Capped per-row quarantine details.
    pub quarantine_details: Vec<QuarantinedRow>,
    /// Whether quarantine details beyond the cap were dropped.
    pub details_truncated: bool,
    /// Distinct interval timestamps seen.
    pub intervals_seen: usize,
    /// Intervals that produced samples (both fixed events present and
    /// valid).
    pub intervals_ingested: usize,
    /// Intervals dropped because a fixed event was missing or invalid.
    pub intervals_dropped: usize,
    /// Samples emitted into the [`SampleSet`].
    pub samples_emitted: usize,
    /// Per-event multiplex coverage, ordered by event name.
    pub per_event: Vec<EventCoverage>,
    /// The error budget the ingest ran under (fraction in `[0, 1]`).
    pub error_budget: f64,
    /// Whether the capture is known to be incomplete (set by the process
    /// supervision layer on timeout, kill, or non-zero exit).
    pub degraded: bool,
    /// Human-readable reason for the degradation, when degraded.
    pub degraded_reason: Option<String>,
}

impl IngestReport {
    /// Fraction of seen rows that were quarantined (`0.0` when empty).
    pub fn quarantined_fraction(&self) -> f64 {
        if self.rows_seen == 0 {
            0.0
        } else {
            self.rows_quarantined as f64 / self.rows_seen as f64
        }
    }

    /// Whether the quarantined fraction exceeds the error budget.
    pub fn budget_exceeded(&self) -> bool {
        self.quarantined_fraction() > self.error_budget
    }

    /// Mean running fraction for one event, if the capture reported any.
    pub fn event_running_frac(&self, event: &str) -> Option<f64> {
        self.per_event
            .iter()
            .find(|c| c.event == event)
            .and_then(|c| c.mean_running_frac)
    }

    /// One-line summary of the ingest outcome.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} rows: {} parsed, {} scaled, {} quarantined ({:.1}% of budget {:.0}%); \
             {} intervals ingested, {} dropped; {} samples",
            self.rows_seen,
            self.rows_parsed,
            self.rows_scaled,
            self.rows_quarantined,
            self.quarantined_fraction() * 100.0,
            self.error_budget * 100.0,
            self.intervals_ingested,
            self.intervals_dropped,
            self.samples_emitted,
        );
        if self.budget_exceeded() {
            s.push_str(" [ERROR BUDGET EXCEEDED]");
        }
        if self.degraded {
            s.push_str(" [DEGRADED");
            if let Some(reason) = &self.degraded_reason {
                s.push_str(": ");
                s.push_str(reason);
            }
            s.push(']');
        }
        s
    }

    /// Renders the report as an aligned text table: the summary, the
    /// quarantine breakdown, and the `n` worst-covered events.
    pub fn to_table(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.summary());
        out.push('\n');
        if !self.quarantined_by_reason.is_empty() {
            out.push_str("\nquarantine breakdown:\n");
            for (reason, count) in &self.quarantined_by_reason {
                out.push_str(&format!("  {reason:<20} {count:>8}\n"));
            }
        }
        for q in &self.quarantine_details {
            out.push_str(&format!(
                "    line {:>5} [{}]: {}\n",
                q.line, q.reason, q.snippet
            ));
        }
        if self.details_truncated {
            out.push_str("    (further details truncated)\n");
        }
        if !self.per_event.is_empty() {
            out.push_str(&format!(
                "\n{:<50} {:>6} {:>7} {:>6} {:>9}\n",
                "event", "rows", "scaled", "quar", "mux frac"
            ));
            let mut events: Vec<&EventCoverage> = self.per_event.iter().collect();
            events.sort_by(|a, b| {
                let fa = a.mean_running_frac.unwrap_or(1.0);
                let fb = b.mean_running_frac.unwrap_or(1.0);
                fa.total_cmp(&fb)
            });
            for c in events.into_iter().take(n) {
                let frac = c
                    .mean_running_frac
                    .map_or("-".to_owned(), |f| format!("{:.1}%", f * 100.0));
                out.push_str(&format!(
                    "{:<50} {:>6} {:>7} {:>6} {:>9}\n",
                    c.event, c.rows, c.scaled_rows, c.quarantined_rows, frac
                ));
            }
        }
        out
    }
}

/// The outcome of a fault-tolerant ingest: the recovered samples plus the
/// report of everything that was scaled, quarantined, or dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Ingest {
    /// The recovered (possibly partial) sample set.
    pub samples: SampleSet,
    /// What happened to the input.
    pub report: IngestReport,
}

impl Ingest {
    /// Enforces the error budget: returns the samples only if the
    /// quarantined fraction stayed within it.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::ErrorBudgetExceeded`] when over budget.
    pub fn into_strict(self) -> spire_core::Result<SampleSet> {
        if self.report.budget_exceeded() {
            return Err(SpireError::ErrorBudgetExceeded {
                quarantined: self.report.rows_quarantined,
                total: self.report.rows_seen,
                budget: self.report.error_budget,
            });
        }
        Ok(self.samples)
    }
}

/// Truncates a row to a bounded diagnostic snippet (char-safe).
fn snippet(row: &str) -> String {
    const MAX: usize = 80;
    if row.chars().count() <= MAX {
        row.to_owned()
    } else {
        let mut s: String = row.chars().take(MAX).collect();
        s.push('…');
        s
    }
}

/// A row that survived parsing and scaling, pending interval assembly.
struct PendingRow {
    event: String,
    count: f64,
}

/// Per-event coverage accumulator.
#[derive(Default)]
struct CovAcc {
    rows: usize,
    scaled_rows: usize,
    quarantined_rows: usize,
    frac_sum: f64,
    frac_rows: usize,
    frac_min: f64,
}

/// Streaming ingest state shared by the text and row entry points.
struct Assembler<'a> {
    config: &'a IngestConfig,
    report: IngestReport,
    intervals: BTreeMap<u64, Vec<PendingRow>>,
    coverage: BTreeMap<String, CovAcc>,
}

impl<'a> Assembler<'a> {
    fn new(config: &'a IngestConfig) -> Self {
        Assembler {
            config,
            report: IngestReport {
                error_budget: config.error_budget,
                ..IngestReport::default()
            },
            intervals: BTreeMap::new(),
            coverage: BTreeMap::new(),
        }
    }

    fn quarantine(&mut self, line: usize, reason: QuarantineReason, row: &str) {
        self.report.rows_quarantined += 1;
        *self
            .report
            .quarantined_by_reason
            .entry(reason.as_str().to_owned())
            .or_insert(0) += 1;
        if self.report.quarantine_details.len() < self.config.max_quarantine_details {
            self.report.quarantine_details.push(QuarantinedRow {
                line,
                reason,
                snippet: snippet(row),
            });
        } else {
            self.report.details_truncated = true;
        }
    }

    /// Validates, scales, and stages one structurally valid row.
    fn offer(&mut self, line: usize, row: &PerfRow) {
        if !row.time_s.is_finite() {
            self.quarantine(line, QuarantineReason::BadTimestamp, &row.event);
            return;
        }
        if !row.count.is_finite() {
            self.quarantine(line, QuarantineReason::NonFiniteCount, &row.event);
            return;
        }
        if row.count < 0.0 {
            self.quarantine(line, QuarantineReason::NegativeCount, &row.event);
            return;
        }
        self.report.rows_parsed += 1;
        let cov = self.coverage.entry(row.event.clone()).or_default();
        cov.rows += 1;

        let (count, scaled) = match row.running_frac {
            Some(frac) if frac.is_finite() && frac > 0.0 => {
                let frac = frac.min(1.0);
                cov.frac_sum += frac;
                cov.frac_rows += 1;
                cov.frac_min = if cov.frac_rows == 1 {
                    frac
                } else {
                    cov.frac_min.min(frac)
                };
                if frac < self.config.min_running_frac {
                    cov.quarantined_rows += 1;
                    self.quarantine(line, QuarantineReason::LowRunningFrac, &row.event);
                    return;
                }
                if self.config.scale_multiplexed && frac < 1.0 {
                    (row.count / frac, true)
                } else {
                    (row.count, false)
                }
            }
            Some(_) => {
                // A zero or non-finite fraction: the counter observed
                // nothing; there is no defensible extrapolation.
                cov.quarantined_rows += 1;
                self.quarantine(line, QuarantineReason::LowRunningFrac, &row.event);
                return;
            }
            // No fraction reported: assume full coverage, ingest raw.
            None => (row.count, false),
        };
        if scaled {
            self.report.rows_scaled += 1;
            cov.scaled_rows += 1;
        }
        self.intervals
            .entry(row.time_s.to_bits())
            .or_default()
            .push(PendingRow {
                event: row.event.clone(),
                count,
            });
    }

    /// Assembles staged rows into samples and finalizes the report.
    fn finish(mut self) -> Ingest {
        let mut samples = SampleSet::new();
        for group in self.intervals.values() {
            self.report.intervals_seen += 1;
            let work = group.iter().find(|r| r.event == self.config.work_event);
            let time = group.iter().find(|r| r.event == self.config.time_event);
            let (Some(work), Some(time)) = (work, time) else {
                self.report.intervals_dropped += 1;
                continue;
            };
            if time.count <= 0.0 {
                self.report.intervals_dropped += 1;
                continue;
            }
            self.report.intervals_ingested += 1;
            for row in group {
                if row.event == self.config.work_event || row.event == self.config.time_event {
                    continue;
                }
                samples
                    .push_parts(MetricId::new(&row.event), time.count, work.count, row.count)
                    .expect("rows are validated before staging");
                self.report.samples_emitted += 1;
            }
        }
        self.report.per_event = self
            .coverage
            .into_iter()
            .map(|(event, acc)| EventCoverage {
                event,
                rows: acc.rows,
                scaled_rows: acc.scaled_rows,
                quarantined_rows: acc.quarantined_rows,
                mean_running_frac: (acc.frac_rows > 0).then(|| acc.frac_sum / acc.frac_rows as f64),
                min_running_frac: (acc.frac_rows > 0).then_some(acc.frac_min),
            })
            .collect();
        Ingest {
            samples,
            report: self.report,
        }
    }
}

/// Fault-tolerant ingest of `perf stat -I -x,` CSV text.
///
/// Never fails and never panics on malformed input: structurally broken
/// rows, unparsable numbers, non-finite counts, and unreliable
/// low-coverage rows are quarantined (counted per reason, details capped)
/// while everything recoverable is multiplex-corrected and assembled into
/// samples. A truncated or wedged capture therefore yields a partial,
/// honestly-labeled [`SampleSet`] plus an [`IngestReport`] instead of an
/// error.
///
/// ```
/// use spire_counters::{ingest_perf_csv, IngestConfig};
///
/// // A multiplexed capture with one garbage line.
/// let text = "\
/// 1.0,1000,,inst_retired.any,1000000,100.00,,
/// 1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
/// 1.0,120,,evt.a,250000,25.00,,
/// ???garbage???
/// ";
/// let out = ingest_perf_csv(text, &IngestConfig::default());
/// assert_eq!(out.samples.len(), 1);
/// // 120 counted over 25% of the interval -> 480 estimated.
/// assert_eq!(out.samples.iter().next().unwrap().metric_delta(), 480.0);
/// assert_eq!(out.report.rows_quarantined, 1);
/// ```
///
/// # Panics
///
/// Panics if `config` fails [`IngestConfig::validate`] (a programming
/// error, not a data error).
pub fn ingest_perf_csv(text: &str, config: &IngestConfig) -> Ingest {
    config
        .validate()
        .expect("ingest_perf_csv requires a valid IngestConfig");
    let mut asm = Assembler::new(config);
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        match parse_row(line_no, line) {
            RowParse::Blank => {}
            RowParse::Row(row) => {
                asm.report.rows_seen += 1;
                asm.offer(line_no, &row);
            }
            RowParse::NotCounted { supported } => {
                asm.report.rows_seen += 1;
                if supported {
                    asm.report.rows_not_counted += 1;
                } else {
                    asm.report.rows_not_supported += 1;
                }
            }
            RowParse::Malformed { line, row } => {
                asm.report.rows_seen += 1;
                asm.quarantine(line, QuarantineReason::MalformedRow, &row);
            }
            RowParse::BadNumber { line, value } => {
                asm.report.rows_seen += 1;
                asm.quarantine(line, QuarantineReason::BadNumber, &value);
            }
        }
    }
    asm.finish()
}

/// Ingests already-parsed rows through the same scaling/quarantine engine
/// (the strict [`crate::perf::samples_from_rows`] wrapper uses this).
pub(crate) fn ingest_rows(rows: &[PerfRow], config: &IngestConfig) -> Ingest {
    config
        .validate()
        .expect("ingest_rows requires a valid IngestConfig");
    let mut asm = Assembler::new(config);
    for (idx, row) in rows.iter().enumerate() {
        asm.report.rows_seen += 1;
        asm.offer(idx + 1, row);
    }
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-interval multiplexed capture with hand-computable scaling,
    /// one sub-floor row, one malformed line, and one interval missing
    /// its fixed events.
    const GOLDEN: &str = "\
# exported by perf stat -I 2000 -x,
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
1.0,50,,evt.b,500000,50.00,,
1.0,10,,evt.c,20000,2.00,,
2.0,800,,inst_retired.any,1000000,100.00,,
2.0,400,,cpu_clk_unhalted.thread,1000000,100.00,,
2.0,60,,evt.a,300000,30.00,,
not,a,perf,row
3.0,100,,evt.a,1000000,100.00,,
";

    fn metric(samples: &SampleSet, name: &str) -> Vec<spire_core::Sample> {
        samples.samples_for(&MetricId::new(name))
    }

    #[test]
    fn golden_multiplexed_counts_match_hand_computed_values() {
        let out = ingest_perf_csv(GOLDEN, &IngestConfig::default());
        let a = metric(&out.samples, "evt.a");
        assert_eq!(a.len(), 2);
        // 120 / 0.25 = 480 over (T=500, W=1000).
        assert_eq!(a[0].metric_delta(), 480.0);
        assert_eq!(a[0].time(), 500.0);
        assert_eq!(a[0].work(), 1000.0);
        // 60 / 0.30 = 200 over (T=400, W=800).
        assert!((a[1].metric_delta() - 200.0).abs() < 1e-9);
        assert_eq!(a[1].time(), 400.0);
        let b = metric(&out.samples, "evt.b");
        assert_eq!(b.len(), 1);
        // 50 / 0.50 = 100.
        assert_eq!(b[0].metric_delta(), 100.0);
        // evt.c sits below the 5% floor: quarantined, not extrapolated.
        assert!(metric(&out.samples, "evt.c").is_empty());
    }

    #[test]
    fn golden_report_accounts_for_every_row() {
        let out = ingest_perf_csv(GOLDEN, &IngestConfig::default());
        let r = &out.report;
        assert_eq!(r.rows_seen, 10);
        assert_eq!(r.rows_parsed, 9);
        assert_eq!(r.rows_quarantined, 2); // evt.c + the malformed line
        assert_eq!(r.quarantined_by_reason["low_running_frac"], 1);
        assert_eq!(r.quarantined_by_reason["bad_number"], 1);
        assert_eq!(r.rows_scaled, 3); // evt.a x2, evt.b
        assert_eq!(r.intervals_seen, 3);
        assert_eq!(r.intervals_ingested, 2);
        assert_eq!(r.intervals_dropped, 1); // t=3.0 has no fixed events
        assert_eq!(r.samples_emitted, 3);
        assert!(!r.budget_exceeded());
        assert!(!r.degraded);
        // Per-event coverage: evt.a observed at (0.25 + 0.30 + 1.0) / 3.
        let frac = r.event_running_frac("evt.a").unwrap();
        assert!((frac - (0.25 + 0.30 + 1.0) / 3.0).abs() < 1e-12);
        let evt_a = r.per_event.iter().find(|c| c.event == "evt.a").unwrap();
        assert_eq!(evt_a.rows, 3);
        assert_eq!(evt_a.scaled_rows, 2);
        assert_eq!(evt_a.min_running_frac, Some(0.25));
    }

    #[test]
    fn scaling_can_be_disabled() {
        let config = IngestConfig {
            scale_multiplexed: false,
            ..IngestConfig::default()
        };
        let out = ingest_perf_csv(GOLDEN, &config);
        let a = metric(&out.samples, "evt.a");
        assert_eq!(a[0].metric_delta(), 120.0);
        assert_eq!(out.report.rows_scaled, 0);
    }

    #[test]
    fn truncated_capture_yields_partial_samples_not_an_error() {
        // A capture cut mid-row, as a killed perf leaves behind.
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,40,,evt.a,1000000,100.00,,
2.0,900,,inst_retired.any,1000000,100.00,,
2.0,45";
        let out = ingest_perf_csv(text, &IngestConfig::default());
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.report.rows_quarantined, 1);
        assert_eq!(out.report.quarantined_by_reason["malformed_row"], 1);
        assert_eq!(out.report.intervals_dropped, 1);
    }

    #[test]
    fn pure_garbage_yields_empty_samples_and_a_full_quarantine() {
        let out = ingest_perf_csv("a,b,c,\n%%%%\n\u{1F980},1,2\n", &IngestConfig::default());
        assert!(out.samples.is_empty());
        assert_eq!(out.report.rows_seen, 3);
        assert_eq!(out.report.rows_quarantined, 3);
        assert!(out.report.budget_exceeded());
        assert!(out.into_strict().is_err());
    }

    #[test]
    fn strict_conversion_passes_within_budget() {
        let out = ingest_perf_csv(GOLDEN, &IngestConfig::default());
        assert!(out.into_strict().is_ok());
    }

    #[test]
    fn non_finite_and_negative_counts_are_quarantined() {
        let text = "\
1.0,1000,,inst_retired.any,1,100,,
1.0,500,,cpu_clk_unhalted.thread,1,100,,
1.0,NaN,,evt.a,1,100,,
1.0,inf,,evt.b,1,100,,
1.0,-5,,evt.c,1,100,,
1.0,7,,evt.d,1,100,,
";
        let out = ingest_perf_csv(text, &IngestConfig::default());
        assert_eq!(out.samples.len(), 1);
        let r = &out.report;
        assert_eq!(r.quarantined_by_reason["non_finite_count"], 2);
        assert_eq!(r.quarantined_by_reason["negative_count"], 1);
    }

    #[test]
    fn not_counted_rows_do_not_consume_the_error_budget() {
        let text = "\
1.0,1000,,inst_retired.any,1,100,,
1.0,500,,cpu_clk_unhalted.thread,1,100,,
1.0,<not counted>,,evt.a,0,0.00,,
1.0,<not supported>,,evt.b,0,0.00,,
";
        let out = ingest_perf_csv(text, &IngestConfig::default());
        assert_eq!(out.report.rows_not_counted, 1);
        assert_eq!(out.report.rows_not_supported, 1);
        assert_eq!(out.report.rows_quarantined, 0);
        assert!(!out.report.budget_exceeded());
    }

    #[test]
    fn quarantine_details_are_capped_but_counts_are_exact() {
        let mut text = String::new();
        for _ in 0..50 {
            text.push_str("garbage\n");
        }
        let config = IngestConfig {
            max_quarantine_details: 4,
            ..IngestConfig::default()
        };
        let out = ingest_perf_csv(&text, &config);
        assert_eq!(out.report.rows_quarantined, 50);
        assert_eq!(out.report.quarantine_details.len(), 4);
        assert!(out.report.details_truncated);
    }

    #[test]
    fn zero_running_fraction_is_quarantined() {
        let text = "\
1.0,1000,,inst_retired.any,1,100,,
1.0,500,,cpu_clk_unhalted.thread,1,100,,
1.0,7,,evt.a,0,0.00,,
";
        let out = ingest_perf_csv(text, &IngestConfig::default());
        assert!(out.samples.is_empty());
        assert_eq!(out.report.quarantined_by_reason["low_running_frac"], 1);
    }

    #[test]
    fn running_fraction_above_one_is_clamped() {
        let text = "\
1.0,1000,,inst_retired.any,1,100,,
1.0,500,,cpu_clk_unhalted.thread,1,100,,
1.0,7,,evt.a,1,250.00,,
";
        let out = ingest_perf_csv(text, &IngestConfig::default());
        let a = metric(&out.samples, "evt.a");
        assert_eq!(a[0].metric_delta(), 7.0);
        assert_eq!(out.report.rows_scaled, 0);
    }

    #[test]
    fn config_validation_rejects_bad_domains() {
        let bad_floor = IngestConfig {
            min_running_frac: 0.0,
            ..IngestConfig::default()
        };
        assert!(bad_floor.validate().is_err());
        let bad_budget = IngestConfig {
            error_budget: 1.5,
            ..IngestConfig::default()
        };
        assert!(bad_budget.validate().is_err());
        let nan_budget = IngestConfig {
            error_budget: f64::NAN,
            ..IngestConfig::default()
        };
        assert!(nan_budget.validate().is_err());
        let same_events = IngestConfig {
            time_event: "inst_retired.any".to_owned(),
            ..IngestConfig::default()
        };
        assert!(same_events.validate().is_err());
        assert!(IngestConfig::default().validate().is_ok());
    }

    #[test]
    fn report_renders_summary_and_table() {
        let out = ingest_perf_csv(GOLDEN, &IngestConfig::default());
        let summary = out.report.summary();
        assert!(summary.contains("2 quarantined"));
        assert!(summary.contains("2 intervals ingested"));
        let table = out.report.to_table(10);
        assert!(table.contains("quarantine breakdown"));
        assert!(table.contains("low_running_frac"));
        assert!(table.contains("evt.a"));
        assert!(table.contains("mux frac"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let out = ingest_perf_csv(GOLDEN, &IngestConfig::default());
        let json = serde_json::to_string(&out.report).unwrap();
        let back: IngestReport = serde_json::from_str(&json).unwrap();
        assert_eq!(out.report, back);
    }

    #[test]
    fn empty_input_is_a_clean_empty_ingest() {
        let out = ingest_perf_csv("", &IngestConfig::default());
        assert!(out.samples.is_empty());
        assert_eq!(out.report.rows_seen, 0);
        assert!(!out.report.budget_exceeded());
        assert!(out.into_strict().is_ok());
    }
}
