//! Event-group scheduling for counter multiplexing.
//!
//! A PMU can only count a few events at once; to cover a large event list
//! the sampling layer rotates through *groups* of events, giving each
//! group a time slice (exactly what Linux perf's counter multiplexing
//! does). [`MultiplexSchedule`] partitions an event list into groups that
//! fit the PMU's programmable slots.

use serde::{Deserialize, Serialize};
use spire_sim::{Event, Pmu};

/// A round-robin multiplexing schedule: the event list partitioned into
/// PMU-sized groups.
///
/// ```
/// use spire_counters::MultiplexSchedule;
/// use spire_sim::Event;
///
/// let schedule = MultiplexSchedule::new(
///     &[Event::IdqDsbUops, Event::IcacheMisses, Event::LongestLatCacheMiss],
///     2, // PMU slots
/// );
/// assert_eq!(schedule.group_count(), 2);
/// assert_eq!(schedule.groups()[0].len(), 2);
/// assert_eq!(schedule.groups()[1].len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplexSchedule {
    groups: Vec<Vec<Event>>,
}

impl MultiplexSchedule {
    /// Partitions `events` into groups of at most `pmu_slots` events.
    ///
    /// Fixed counters ([`Pmu::FIXED`]) are removed first — they are always
    /// readable and never need a slot. Duplicates are collapsed. An empty
    /// effective event list yields a schedule with zero groups.
    ///
    /// # Panics
    ///
    /// Panics if `pmu_slots` is zero.
    pub fn new(events: &[Event], pmu_slots: usize) -> Self {
        assert!(pmu_slots > 0, "a schedule needs at least one PMU slot");
        let mut seen = Vec::new();
        for &e in events {
            if Pmu::FIXED.contains(&e) || seen.contains(&e) {
                continue;
            }
            seen.push(e);
        }
        let groups = seen.chunks(pmu_slots).map(<[Event]>::to_vec).collect();
        MultiplexSchedule { groups }
    }

    /// A schedule covering the PMU's entire event catalog.
    pub fn full_catalog(pmu_slots: usize) -> Self {
        MultiplexSchedule::new(Event::ALL, pmu_slots)
    }

    /// The event groups, in rotation order.
    pub fn groups(&self) -> &[Vec<Event>] {
        &self.groups
    }

    /// Number of groups in one rotation.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of distinct (non-fixed) events covered.
    pub fn event_count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Iterates over every covered event.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        self.groups.iter().flatten().copied()
    }

    /// The fraction of wall time each group — and hence each event — is
    /// expected to be live for under fair round-robin rotation
    /// (`1 / group_count`, `0.0` for an empty schedule).
    ///
    /// This is the model-side counterpart of perf's per-row running
    /// fraction: an ingested capture whose observed
    /// [`mean_running_frac`](crate::EventCoverage::mean_running_frac)
    /// deviates far from this value indicates an unfair or starved
    /// multiplex rotation.
    pub fn expected_time_fraction(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            1.0 / self.groups.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_into_slot_sized_groups() {
        let events = [
            Event::IdqDsbUops,
            Event::IdqMsSwitches,
            Event::IcacheMisses,
            Event::LongestLatCacheMiss,
            Event::BrMispRetiredAllBranches,
        ];
        let s = MultiplexSchedule::new(&events, 2);
        assert_eq!(s.group_count(), 3);
        assert_eq!(s.event_count(), 5);
        for g in s.groups() {
            assert!(g.len() <= 2);
        }
    }

    #[test]
    fn fixed_events_are_excluded() {
        let s = MultiplexSchedule::new(
            &[
                Event::InstRetiredAny,
                Event::CpuClkUnhaltedThread,
                Event::IdqDsbUops,
            ],
            4,
        );
        assert_eq!(s.event_count(), 1);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let s = MultiplexSchedule::new(&[Event::IdqDsbUops, Event::IdqDsbUops], 4);
        assert_eq!(s.event_count(), 1);
    }

    #[test]
    fn full_catalog_covers_all_non_fixed_events() {
        let s = MultiplexSchedule::full_catalog(4);
        assert_eq!(s.event_count(), Event::ALL.len() - Pmu::FIXED.len());
        // Every group must fit a Skylake PMU.
        for g in s.groups() {
            assert!(g.len() <= 4);
        }
    }

    #[test]
    fn empty_event_list_gives_empty_schedule() {
        let s = MultiplexSchedule::new(&[], 4);
        assert_eq!(s.group_count(), 0);
        assert_eq!(s.expected_time_fraction(), 0.0);
    }

    #[test]
    fn expected_time_fraction_is_one_over_group_count() {
        let events = [
            Event::IdqDsbUops,
            Event::IdqMsSwitches,
            Event::IcacheMisses,
            Event::LongestLatCacheMiss,
            Event::BrMispRetiredAllBranches,
        ];
        let s = MultiplexSchedule::new(&events, 2);
        assert_eq!(s.group_count(), 3);
        assert!((s.expected_time_fraction() - 1.0 / 3.0).abs() < 1e-12);
        // A single group is always live.
        let one = MultiplexSchedule::new(&events, 8);
        assert_eq!(one.expected_time_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_slots_panics() {
        MultiplexSchedule::new(&[Event::IdqDsbUops], 0);
    }
}
