//! Labeled sample datasets: persistence for training/testing corpora.
//!
//! A [`Dataset`] maps workload labels to their [`SampleSet`]s and
//! round-trips through JSON, so collected corpora (simulated or imported
//! from perf) can be reused across runs and shipped with experiments.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use spire_core::colfile::{self, ColFileReport, ColFileWriter};
use spire_core::{MachineSpec, SampleSet, SnapshotMode, SnapshotProvenance};

use crate::ingest::IngestReport;

/// A labeled collection of sample sets.
///
/// ```
/// use spire_core::{Sample, SampleSet};
/// use spire_counters::Dataset;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dataset = Dataset::new();
/// let mut set = SampleSet::new();
/// set.push(Sample::new("stalls", 100.0, 150.0, 10.0)?);
/// dataset.insert("workload-a", set);
///
/// let json = dataset.to_json()?;
/// let back = Dataset::from_json(&json)?;
/// assert_eq!(back.get("workload-a").unwrap().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Deserialize)]
pub struct Dataset {
    entries: BTreeMap<String, SampleSet>,
    /// Per-label ingest provenance, for entries that came through the
    /// fault-tolerant perf ingest. `Option` so datasets persisted before
    /// this field existed still deserialize (absent → `None`).
    reports: Option<BTreeMap<String, IngestReport>>,
    /// The machine the samples were collected on, when known. `Option`
    /// for the same legacy reason as `reports`: datasets persisted before
    /// machines existed deserialize with `None`, and absence is never
    /// treated as a mismatch.
    machine: Option<MachineSpec>,
}

/// Hand-written so machine-less datasets serialize without a `machine`
/// key at all, keeping pre-machine dataset JSON byte-identical. (The
/// vendored derive has no `skip_serializing_if`.)
impl Serialize for Dataset {
    fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::{to_content, Content};
        let key = |k: &str| Content::Str(k.to_owned());
        let mut fields = vec![
            (key("entries"), to_content(&self.entries)),
            (key("reports"), to_content(&self.reports)),
        ];
        if let Some(machine) = &self.machine {
            fields.push((key("machine"), to_content(machine)));
        }
        serializer.serialize_content(Content::Map(fields))
    }
}

/// The `.spirecol` directory metadata once a machine tag is present: a
/// marker field (always serialized first) distinguishes this wrapper from
/// the legacy meta, which was the bare ingest-report map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ColMeta {
    /// Wrapper version marker; `1` for this layout. Doubles as the
    /// sniffing key: legacy metas can never start with this field.
    spirecol_meta: u32,
    machine: Option<MachineSpec>,
    reports: Option<BTreeMap<String, IngestReport>>,
}

/// The sniff prefix for the wrapped metadata layout. The writer emits
/// compact JSON with `spirecol_meta` as the first field, so this prefix
/// match is exact, and a legacy meta (an ingest-report map or `null`)
/// can never begin with it.
const COL_META_PREFIX: &str = "{\"spirecol_meta\"";

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Inserts (or replaces) a labeled sample set.
    pub fn insert(&mut self, label: impl Into<String>, samples: SampleSet) {
        let label = label.into();
        if let Some(reports) = &mut self.reports {
            reports.remove(&label);
        }
        self.entries.insert(label, samples);
    }

    /// Inserts a labeled sample set together with the [`IngestReport`]
    /// that produced it, preserving the capture's provenance (multiplex
    /// coverage, quarantines, degradation) alongside the data.
    pub fn insert_with_report(
        &mut self,
        label: impl Into<String>,
        samples: SampleSet,
        report: IngestReport,
    ) {
        let label = label.into();
        self.reports
            .get_or_insert_with(BTreeMap::new)
            .insert(label.clone(), report);
        self.entries.insert(label, samples);
    }

    /// Looks up a sample set by label.
    pub fn get(&self, label: &str) -> Option<&SampleSet> {
        self.entries.get(label)
    }

    /// The machine the samples were collected on, when recorded.
    pub fn machine(&self) -> Option<&MachineSpec> {
        self.machine.as_ref()
    }

    /// Records (or clears) the machine the samples came from.
    pub fn set_machine(&mut self, machine: Option<MachineSpec>) {
        self.machine = machine;
    }

    /// Looks up the ingest provenance recorded for a label, if any.
    pub fn report(&self, label: &str) -> Option<&IngestReport> {
        self.reports.as_ref()?.get(label)
    }

    /// Iterates `(label, report)` pairs for every entry with provenance.
    pub fn reports(&self) -> impl Iterator<Item = (&str, &IngestReport)> {
        self.reports
            .iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v)))
    }

    /// Iterates `(label, samples)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SampleSet)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Labels in order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of labeled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the dataset has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of samples across all entries.
    pub fn total_samples(&self) -> usize {
        self.entries.values().map(SampleSet::len).sum()
    }

    /// Merges every entry into one combined sample set (the shape
    /// [`spire_core::SpireModel::train`] consumes).
    pub fn merged(&self) -> SampleSet {
        let mut all = SampleSet::new();
        for set in self.entries.values() {
            all.extend(set.iter());
        }
        all
    }

    /// Builds training-data provenance for a model snapshot: the labels,
    /// total sample count, and per-label ingest summaries of this dataset.
    ///
    /// `source` is the path or description the dataset was loaded from.
    pub fn provenance(&self, source: Option<&str>) -> SnapshotProvenance {
        SnapshotProvenance {
            source: source.map(str::to_owned),
            labels: self.labels().map(str::to_owned).collect(),
            total_samples: self.total_samples(),
            ingest_summaries: self
                .reports()
                .map(|(label, report)| (label.to_owned(), report.summary()))
                .collect(),
            machine: self.machine.clone(),
        }
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails (it cannot
    /// for this type, but the signature is honest).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the dataset to `path` as JSON, atomically: a crash
    /// mid-write leaves the destination with either its old bytes or the
    /// complete new ones, never a truncated dataset.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        spire_core::write_atomic(path.as_ref(), &json)
    }

    /// Encodes the dataset as a binary column-file image
    /// ([`spire_core::colfile`]): each labeled entry becomes one section,
    /// and the per-label ingest reports ride in the directory's metadata
    /// blob — so capture provenance survives the format change.
    pub fn to_colfile_bytes(&self) -> Vec<u8> {
        let mut writer = ColFileWriter::new();
        // Machine-less datasets keep the legacy meta layout (the bare
        // report map) so their binary images stay byte-identical; a
        // machine tag upgrades the meta to the marked wrapper.
        let meta = if self.machine.is_some() {
            serde_json::to_string(&ColMeta {
                spirecol_meta: 1,
                machine: self.machine.clone(),
                reports: self.reports.clone(),
            })
            .expect("column-file metadata serializes")
        } else {
            serde_json::to_string(&self.reports).expect("ingest reports serialize")
        };
        writer.set_meta(meta);
        for (label, set) in self.iter() {
            writer.add_section(label, set);
        }
        writer.finish()
    }

    /// Decodes a dataset from a binary column-file image.
    ///
    /// # Errors
    ///
    /// Container-level damage is fatal in both modes; a damaged data
    /// chunk is refused under [`SnapshotMode::Strict`] and quarantined
    /// into the returned [`ColFileReport`] under
    /// [`SnapshotMode::Lenient`] — see [`spire_core::colfile::read`].
    pub fn from_colfile_bytes(
        bytes: &[u8],
        mode: SnapshotMode,
    ) -> Result<(Self, ColFileReport), spire_core::SpireError> {
        let contents = colfile::read(bytes, mode)?;
        let meta_error = |e: serde_json::Error| spire_core::SpireError::SnapshotFormat {
            reason: format!("column-file metadata does not parse: {e}"),
        };
        let (machine, reports) = if contents.meta.is_empty() {
            (None, None)
        } else if contents.meta.starts_with(COL_META_PREFIX) {
            let meta: ColMeta = serde_json::from_str(&contents.meta).map_err(meta_error)?;
            (meta.machine, meta.reports)
        } else {
            (
                None,
                serde_json::from_str(&contents.meta).map_err(meta_error)?,
            )
        };
        let dataset = Dataset {
            entries: contents.sections.into_iter().collect(),
            reports,
            machine,
        };
        Ok((dataset, contents.report))
    }

    /// Writes the dataset to `path` in the binary column format,
    /// atomically (temp file + rename, like [`Dataset::save`]).
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on filesystem failure.
    pub fn save_binary(&self, path: impl AsRef<Path>) -> io::Result<()> {
        spire_core::write_atomic_bytes(path.as_ref(), &self.to_colfile_bytes())
    }

    /// Reads a dataset from `path`, sniffing the format: files starting
    /// with the `SPIRECOL` magic decode as binary column files
    /// (strictly — any integrity failure refuses the load), everything
    /// else parses as JSON. This is the single format-dispatch point;
    /// every loader goes through it (or [`Dataset::load_with_mode`] for
    /// lenient salvage).
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on filesystem failure, malformed JSON, or
    /// a binary integrity failure.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Dataset::load_with_mode(path, SnapshotMode::Strict).map(|(dataset, _)| dataset)
    }

    /// [`Dataset::load`] with an explicit integrity mode for binary
    /// inputs, returning the chunk report (`None` for JSON files, which
    /// carry no chunk integrity information).
    ///
    /// Under [`SnapshotMode::Lenient`], damaged chunks are quarantined
    /// into the report and the surviving rows are returned; under
    /// [`SnapshotMode::Strict`] any damage refuses the load. JSON parsing
    /// is unaffected by the mode.
    ///
    /// # Errors
    ///
    /// As [`Dataset::load`], except lenient binary loads tolerate chunk
    /// damage.
    pub fn load_with_mode(
        path: impl AsRef<Path>,
        mode: SnapshotMode,
    ) -> io::Result<(Self, Option<ColFileReport>)> {
        let bytes = fs::read(path)?;
        if colfile::is_colfile(&bytes) {
            let (dataset, report) =
                Dataset::from_colfile_bytes(&bytes, mode).map_err(io::Error::other)?;
            return Ok((dataset, Some(report)));
        }
        let text = String::from_utf8(bytes)
            .map_err(|e| io::Error::other(format!("dataset is neither binary nor UTF-8: {e}")))?;
        Ok((Dataset::from_json(&text).map_err(io::Error::other)?, None))
    }
}

impl FromIterator<(String, SampleSet)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (String, SampleSet)>>(iter: I) -> Self {
        Dataset {
            entries: iter.into_iter().collect(),
            reports: None,
            machine: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::Sample;

    fn set(n: usize) -> SampleSet {
        (0..n)
            .map(|i| Sample::new("m", 1.0, i as f64, 1.0).unwrap())
            .collect()
    }

    #[test]
    fn insert_get_len() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.insert("a", set(3));
        d.insert("b", set(2));
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_samples(), 5);
        assert_eq!(d.get("a").unwrap().len(), 3);
        assert!(d.get("c").is_none());
    }

    #[test]
    fn merged_concatenates_everything() {
        let mut d = Dataset::new();
        d.insert("a", set(3));
        d.insert("b", set(4));
        assert_eq!(d.merged().len(), 7);
    }

    #[test]
    fn json_round_trip() {
        let mut d = Dataset::new();
        d.insert("a", set(2));
        let back = Dataset::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut d = Dataset::new();
        d.insert("x", set(1));
        let dir = std::env::temp_dir().join("spire-dataset-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        d.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Dataset::load("/nonexistent/path/ds.json").is_err());
    }

    #[test]
    fn reports_persist_with_their_entries() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
garbage line
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("capture", out.samples, out.report);
        d.insert("plain", set(1));
        assert_eq!(d.report("capture").unwrap().rows_quarantined, 1);
        assert!(d.report("plain").is_none());
        let back = Dataset::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.report("capture").unwrap().rows_scaled, 1);
        assert_eq!(back.reports().count(), 1);
    }

    #[test]
    fn plain_insert_clears_stale_provenance() {
        let out = crate::ingest_perf_csv("", &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("x", out.samples, out.report);
        assert!(d.report("x").is_some());
        d.insert("x", set(1));
        assert!(d.report("x").is_none());
    }

    #[test]
    fn datasets_without_reports_field_still_load() {
        // JSON persisted before provenance existed has no `reports` key.
        let legacy = r#"{"entries": {}}"#;
        let d = Dataset::from_json(legacy).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.reports().count(), 0);
    }

    #[test]
    fn provenance_carries_labels_counts_and_ingest_summaries() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("capture", out.samples, out.report);
        d.insert("plain", set(2));
        let prov = d.provenance(Some("corpus.json"));
        assert_eq!(prov.source.as_deref(), Some("corpus.json"));
        assert_eq!(prov.labels, ["capture", "plain"]);
        assert_eq!(prov.total_samples, d.total_samples());
        assert_eq!(prov.ingest_summaries.len(), 1);
        assert!(prov.ingest_summaries["capture"].contains("rows"));
    }

    #[test]
    fn binary_round_trip_is_json_byte_identical() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
garbage line
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("capture", out.samples, out.report);
        d.insert("plain", set(5));

        let bytes = d.to_colfile_bytes();
        assert!(spire_core::colfile::is_colfile(&bytes));
        let (back, report) = Dataset::from_colfile_bytes(&bytes, SnapshotMode::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(d, back);
        // JSON -> binary -> JSON is byte-identical, ingest report included.
        assert_eq!(d.to_json().unwrap(), back.to_json().unwrap());
        assert_eq!(back.report("capture").unwrap().rows_quarantined, 1);

        // A dataset with no provenance stays `reports: None` (not an
        // empty map) so its JSON also round-trips byte-identically.
        let mut plain = Dataset::new();
        plain.insert("x", set(2));
        let (back, _) =
            Dataset::from_colfile_bytes(&plain.to_colfile_bytes(), SnapshotMode::Strict).unwrap();
        assert_eq!(plain.to_json().unwrap(), back.to_json().unwrap());
    }

    #[test]
    fn load_sniffs_binary_and_json() {
        let mut d = Dataset::new();
        d.insert("a", set(4));
        let dir = std::env::temp_dir().join(format!("spire-ds-sniff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("ds.json");
        let bin_path = dir.join("ds.spirecol");
        d.save(&json_path).unwrap();
        d.save_binary(&bin_path).unwrap();
        assert_eq!(Dataset::load(&json_path).unwrap(), d);
        assert_eq!(Dataset::load(&bin_path).unwrap(), d);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_binary_refused_strict_salvaged_lenient() {
        let mut d = Dataset::new();
        d.insert("a", set(64));
        let mut bytes = d.to_colfile_bytes();
        bytes[80] ^= 0x10; // inside the first data chunk
        assert!(Dataset::from_colfile_bytes(&bytes, SnapshotMode::Strict).is_err());
        let (salvaged, report) =
            Dataset::from_colfile_bytes(&bytes, SnapshotMode::Lenient).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(salvaged.total_samples() < d.total_samples());

        let dir = std::env::temp_dir().join(format!("spire-ds-damage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.spirecol");
        std::fs::write(&path, &bytes).unwrap();
        assert!(Dataset::load(&path).is_err(), "strict default must refuse");
        let (_, report) = Dataset::load_with_mode(&path, SnapshotMode::Lenient).unwrap();
        assert_eq!(report.unwrap().quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn machine_spec() -> MachineSpec {
        MachineSpec {
            name: "little".to_owned(),
            fingerprint: "00aa00aa00aa00aa".to_owned(),
            peaks: spire_core::MachinePeaks {
                throughput: 2.0,
                bandwidth: [("dram".to_owned(), 0.0125)].into_iter().collect(),
            },
            normalized: false,
        }
    }

    #[test]
    fn machine_survives_json_and_binary_round_trips() {
        let mut d = Dataset::new();
        d.insert("a", set(3));
        d.set_machine(Some(machine_spec()));

        let json_back = Dataset::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(json_back.machine().unwrap().name, "little");
        assert_eq!(json_back, d);

        let (bin_back, report) =
            Dataset::from_colfile_bytes(&d.to_colfile_bytes(), SnapshotMode::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(bin_back, d);
        assert_eq!(bin_back.machine().unwrap().fingerprint, "00aa00aa00aa00aa");
        // JSON -> binary -> JSON stays byte-identical with a machine too.
        assert_eq!(d.to_json().unwrap(), bin_back.to_json().unwrap());
    }

    #[test]
    fn machine_less_dataset_keeps_legacy_bytes() {
        let mut d = Dataset::new();
        d.insert("a", set(2));
        // No `machine` key in JSON...
        assert!(!d.to_json().unwrap().contains("\"machine\""));
        // ...and the binary meta keeps the legacy (unwrapped) layout.
        let mut with_machine = d.clone();
        with_machine.set_machine(Some(machine_spec()));
        let legacy_bytes = d.to_colfile_bytes();
        assert_ne!(legacy_bytes, with_machine.to_colfile_bytes());
        let (back, _) = Dataset::from_colfile_bytes(&legacy_bytes, SnapshotMode::Strict).unwrap();
        assert!(back.machine().is_none());
        assert_eq!(back, d);
    }

    #[test]
    fn machine_rides_alongside_ingest_reports_in_colfile_meta() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
garbage line
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("capture", out.samples, out.report);
        d.set_machine(Some(machine_spec()));
        let (back, _) =
            Dataset::from_colfile_bytes(&d.to_colfile_bytes(), SnapshotMode::Strict).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.machine().unwrap().name, "little");
        assert_eq!(back.report("capture").unwrap().rows_quarantined, 1);
    }

    #[test]
    fn provenance_carries_the_machine() {
        let mut d = Dataset::new();
        d.insert("a", set(1));
        assert!(d.provenance(None).machine.is_none());
        d.set_machine(Some(machine_spec()));
        let prov = d.provenance(Some("ds.json"));
        assert_eq!(prov.machine.as_ref().unwrap().name, "little");
    }

    #[test]
    fn labels_are_sorted() {
        let mut d = Dataset::new();
        d.insert("zeta", set(1));
        d.insert("alpha", set(1));
        let labels: Vec<&str> = d.labels().collect();
        assert_eq!(labels, ["alpha", "zeta"]);
    }
}
