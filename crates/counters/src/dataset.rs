//! Labeled sample datasets: persistence for training/testing corpora.
//!
//! A [`Dataset`] maps workload labels to their [`SampleSet`]s and
//! round-trips through JSON, so collected corpora (simulated or imported
//! from perf) can be reused across runs and shipped with experiments.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use spire_core::{SampleSet, SnapshotProvenance};

use crate::ingest::IngestReport;

/// A labeled collection of sample sets.
///
/// ```
/// use spire_core::{Sample, SampleSet};
/// use spire_counters::Dataset;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dataset = Dataset::new();
/// let mut set = SampleSet::new();
/// set.push(Sample::new("stalls", 100.0, 150.0, 10.0)?);
/// dataset.insert("workload-a", set);
///
/// let json = dataset.to_json()?;
/// let back = Dataset::from_json(&json)?;
/// assert_eq!(back.get("workload-a").unwrap().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    entries: BTreeMap<String, SampleSet>,
    /// Per-label ingest provenance, for entries that came through the
    /// fault-tolerant perf ingest. `Option` so datasets persisted before
    /// this field existed still deserialize (absent → `None`).
    reports: Option<BTreeMap<String, IngestReport>>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Inserts (or replaces) a labeled sample set.
    pub fn insert(&mut self, label: impl Into<String>, samples: SampleSet) {
        let label = label.into();
        if let Some(reports) = &mut self.reports {
            reports.remove(&label);
        }
        self.entries.insert(label, samples);
    }

    /// Inserts a labeled sample set together with the [`IngestReport`]
    /// that produced it, preserving the capture's provenance (multiplex
    /// coverage, quarantines, degradation) alongside the data.
    pub fn insert_with_report(
        &mut self,
        label: impl Into<String>,
        samples: SampleSet,
        report: IngestReport,
    ) {
        let label = label.into();
        self.reports
            .get_or_insert_with(BTreeMap::new)
            .insert(label.clone(), report);
        self.entries.insert(label, samples);
    }

    /// Looks up a sample set by label.
    pub fn get(&self, label: &str) -> Option<&SampleSet> {
        self.entries.get(label)
    }

    /// Looks up the ingest provenance recorded for a label, if any.
    pub fn report(&self, label: &str) -> Option<&IngestReport> {
        self.reports.as_ref()?.get(label)
    }

    /// Iterates `(label, report)` pairs for every entry with provenance.
    pub fn reports(&self) -> impl Iterator<Item = (&str, &IngestReport)> {
        self.reports
            .iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v)))
    }

    /// Iterates `(label, samples)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SampleSet)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Labels in order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of labeled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the dataset has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of samples across all entries.
    pub fn total_samples(&self) -> usize {
        self.entries.values().map(SampleSet::len).sum()
    }

    /// Merges every entry into one combined sample set (the shape
    /// [`spire_core::SpireModel::train`] consumes).
    pub fn merged(&self) -> SampleSet {
        let mut all = SampleSet::new();
        for set in self.entries.values() {
            all.extend(set.iter());
        }
        all
    }

    /// Builds training-data provenance for a model snapshot: the labels,
    /// total sample count, and per-label ingest summaries of this dataset.
    ///
    /// `source` is the path or description the dataset was loaded from.
    pub fn provenance(&self, source: Option<&str>) -> SnapshotProvenance {
        SnapshotProvenance {
            source: source.map(str::to_owned),
            labels: self.labels().map(str::to_owned).collect(),
            total_samples: self.total_samples(),
            ingest_summaries: self
                .reports()
                .map(|(label, report)| (label.to_owned(), report.summary()))
                .collect(),
        }
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails (it cannot
    /// for this type, but the signature is honest).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the dataset to `path` as JSON, atomically: a crash
    /// mid-write leaves the destination with either its old bytes or the
    /// complete new ones, never a truncated dataset.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        spire_core::write_atomic(path.as_ref(), &json)
    }

    /// Reads a dataset from a JSON file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on filesystem failure or malformed JSON.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Dataset::from_json(&text).map_err(io::Error::other)
    }
}

impl FromIterator<(String, SampleSet)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (String, SampleSet)>>(iter: I) -> Self {
        Dataset {
            entries: iter.into_iter().collect(),
            reports: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::Sample;

    fn set(n: usize) -> SampleSet {
        (0..n)
            .map(|i| Sample::new("m", 1.0, i as f64, 1.0).unwrap())
            .collect()
    }

    #[test]
    fn insert_get_len() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.insert("a", set(3));
        d.insert("b", set(2));
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_samples(), 5);
        assert_eq!(d.get("a").unwrap().len(), 3);
        assert!(d.get("c").is_none());
    }

    #[test]
    fn merged_concatenates_everything() {
        let mut d = Dataset::new();
        d.insert("a", set(3));
        d.insert("b", set(4));
        assert_eq!(d.merged().len(), 7);
    }

    #[test]
    fn json_round_trip() {
        let mut d = Dataset::new();
        d.insert("a", set(2));
        let back = Dataset::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut d = Dataset::new();
        d.insert("x", set(1));
        let dir = std::env::temp_dir().join("spire-dataset-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        d.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Dataset::load("/nonexistent/path/ds.json").is_err());
    }

    #[test]
    fn reports_persist_with_their_entries() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
garbage line
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("capture", out.samples, out.report);
        d.insert("plain", set(1));
        assert_eq!(d.report("capture").unwrap().rows_quarantined, 1);
        assert!(d.report("plain").is_none());
        let back = Dataset::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.report("capture").unwrap().rows_scaled, 1);
        assert_eq!(back.reports().count(), 1);
    }

    #[test]
    fn plain_insert_clears_stale_provenance() {
        let out = crate::ingest_perf_csv("", &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("x", out.samples, out.report);
        assert!(d.report("x").is_some());
        d.insert("x", set(1));
        assert!(d.report("x").is_none());
    }

    #[test]
    fn datasets_without_reports_field_still_load() {
        // JSON persisted before provenance existed has no `reports` key.
        let legacy = r#"{"entries": {}}"#;
        let d = Dataset::from_json(legacy).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.reports().count(), 0);
    }

    #[test]
    fn provenance_carries_labels_counts_and_ingest_summaries() {
        let text = "\
1.0,1000,,inst_retired.any,1000000,100.00,,
1.0,500,,cpu_clk_unhalted.thread,1000000,100.00,,
1.0,120,,evt.a,250000,25.00,,
";
        let out = crate::ingest_perf_csv(text, &crate::IngestConfig::default());
        let mut d = Dataset::new();
        d.insert_with_report("capture", out.samples, out.report);
        d.insert("plain", set(2));
        let prov = d.provenance(Some("corpus.json"));
        assert_eq!(prov.source.as_deref(), Some("corpus.json"));
        assert_eq!(prov.labels, ["capture", "plain"]);
        assert_eq!(prov.total_samples, d.total_samples());
        assert_eq!(prov.ingest_summaries.len(), 1);
        assert!(prov.ingest_summaries["capture"].contains("rows"));
    }

    #[test]
    fn labels_are_sorted() {
        let mut d = Dataset::new();
        d.insert("zeta", set(1));
        d.insert("alpha", set(1));
        let labels: Vec<&str> = d.labels().collect();
        assert_eq!(labels, ["alpha", "zeta"]);
    }
}
