//! The counters crate's adapter onto the `spire_core::pipeline` engine:
//! an [`IngestStage`] that parses `perf stat -I -x,` text under the run's
//! [`IngestSettings`](spire_core::pipeline::IngestSettings) and mirrors
//! its [`IngestReport`] onto the diagnostics bus as typed events.

use spire_core::pipeline::{Event, RunContext, Stage, StageResult};
use spire_core::{SpireError, TrainStrictness};

use crate::ingest::{ingest_perf_csv, Ingest, IngestConfig, IngestReport};

/// Converts the core-side ingest knobs into this crate's [`IngestConfig`]
/// (work/time events and detail caps keep their defaults).
pub fn ingest_config_from(settings: &spire_core::pipeline::IngestSettings) -> IngestConfig {
    IngestConfig {
        min_running_frac: settings.min_running_frac,
        error_budget: settings.error_budget,
        scale_multiplexed: settings.scale_multiplexed,
        ..IngestConfig::default()
    }
}

/// Emits the bus events implied by a finished ingest: one
/// `RowsQuarantined` per quarantine reason, a `CaptureDegraded` when the
/// supervision layer flagged the capture, and a `BudgetConsumed` summary.
/// Public so callers that ingest outside the stage (the proc supervisor)
/// can mirror their reports too.
pub fn emit_ingest_events(label: &str, report: &IngestReport, ctx: &RunContext) {
    for (reason, rows) in &report.quarantined_by_reason {
        ctx.emit(Event::RowsQuarantined {
            reason: reason.clone(),
            rows: *rows,
        });
    }
    if report.degraded {
        ctx.emit(Event::CaptureDegraded {
            label: label.to_owned(),
            reason: report
                .degraded_reason
                .clone()
                .unwrap_or_else(|| "capture flagged as incomplete".to_owned()),
        });
    }
    ctx.emit(Event::BudgetConsumed {
        stage: "ingest".to_owned(),
        consumed: report.quarantined_fraction(),
        budget: report.error_budget,
        exceeded: report.budget_exceeded(),
    });
}

/// Fault-tolerant `perf stat` CSV ingest as a pipeline stage.
///
/// Input is the raw CSV text (file I/O stays at the edges); output is the
/// full [`Ingest`] (samples + report) so callers keep the provenance. The
/// stage is lenient by default; under
/// [`TrainStrictness::Strict`] it fails with
/// [`SpireError::ErrorBudgetExceeded`] when quarantined rows exceed the
/// configured budget, exactly like `spire ingest --strict`.
#[derive(Debug, Clone)]
pub struct IngestStage {
    /// Dataset label the samples will be stored under (used in events).
    pub label: String,
}

impl Stage for IngestStage {
    type In = String;
    type Out = Ingest;

    fn name(&self) -> &'static str {
        "ingest"
    }

    fn items_in(&self, input: &Self::In) -> Option<usize> {
        Some(input.lines().count())
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        Some(output.samples.len())
    }

    fn run(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        let config = ingest_config_from(&ctx.config.ingest);
        config.validate()?;
        let out = ingest_perf_csv(&input, &config);
        emit_ingest_events(&self.label, &out.report, ctx);
        if ctx.config.strictness == TrainStrictness::Strict && out.report.budget_exceeded() {
            return Err(SpireError::ErrorBudgetExceeded {
                quarantined: out.report.rows_quarantined,
                total: out.report.rows_seen,
                budget: out.report.error_budget,
            }
            .into());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spire_core::pipeline::{CollectingSink, PipelineConfig};

    use super::*;

    const MIXED_CSV: &str = "1.0,100,,inst_retired.any,1,100,,\n\
         1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
         1.0,7,,longest_lat_cache.miss,250000,25.00,,\n\
         broken line\n";

    fn ctx_with_sink(strictness: TrainStrictness) -> (RunContext, Arc<CollectingSink>) {
        let sink = Arc::new(CollectingSink::new());
        let config = PipelineConfig {
            strictness,
            ..PipelineConfig::default()
        };
        let ctx = RunContext::new(config).with_sink(sink.clone());
        (ctx, sink)
    }

    #[test]
    fn quarantined_rows_surface_as_typed_events() {
        let (mut ctx, sink) = ctx_with_sink(TrainStrictness::Lenient);
        let stage = IngestStage {
            label: "mux".to_owned(),
        };
        let out = stage.execute(MIXED_CSV.to_owned(), &mut ctx).unwrap();
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.report.rows_quarantined, 1);
        let events = sink.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::RowsQuarantined { rows: 1, .. })),
            "{events:?}"
        );
        let budget = events
            .iter()
            .find(|e| matches!(e, Event::BudgetConsumed { .. }))
            .expect("budget event");
        if let Event::BudgetConsumed {
            stage, exceeded, ..
        } = budget
        {
            assert_eq!(stage, "ingest");
            assert!(!exceeded);
        }
        assert!(ctx.degraded(), "quarantined rows flag partial success");
    }

    #[test]
    fn strict_ingest_fails_over_budget_after_emitting_events() {
        let (mut ctx, sink) = ctx_with_sink(TrainStrictness::Strict);
        let stage = IngestStage {
            label: "junk".to_owned(),
        };
        let err = stage
            .execute("junk\nmore junk\nstill junk\n".to_owned(), &mut ctx)
            .unwrap_err();
        assert!(err.to_string().contains("error budget"), "{err}");
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::BudgetConsumed { exceeded: true, .. })));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::StageFailed { .. })),
            "{events:?}"
        );
    }

    #[test]
    fn clean_ingest_emits_no_degrading_events() {
        let (mut ctx, sink) = ctx_with_sink(TrainStrictness::Lenient);
        let stage = IngestStage {
            label: "clean".to_owned(),
        };
        let clean = "1.0,100,,inst_retired.any,1,100,,\n\
             1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
             1.0,7,,longest_lat_cache.miss,1,100,,\n";
        stage.execute(clean.to_owned(), &mut ctx).unwrap();
        assert!(!ctx.degraded());
        assert!(sink
            .events()
            .iter()
            .all(|e| !matches!(e, Event::RowsQuarantined { .. })));
    }
}
