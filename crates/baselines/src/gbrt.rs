//! Stochastic gradient-boosted regression trees (SGBRT) — the algorithm
//! CounterMiner (MICRO 2018) uses to rank counter importance, cited by
//! the paper's related work as the standard-ML alternative to SPIRE.
//!
//! The implementation is deliberately small but real: depth-limited
//! regression trees fit to residuals with squared loss, subsampling per
//! round, shrinkage, and split-gain feature importance.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`Gbrt::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbrtConfig {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth (1 = stumps).
    pub max_depth: usize,
    /// Learning rate (shrinkage) applied to each tree's predictions.
    pub learning_rate: f64,
    /// Fraction of rows sampled per round (the "stochastic" part).
    pub subsample: f64,
    /// Minimum rows in a leaf.
    pub min_leaf: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GbrtConfig {
    fn default() -> Self {
        GbrtConfig {
            rounds: 100,
            max_depth: 3,
            learning_rate: 0.1,
            subsample: 0.8,
            min_leaf: 4,
            seed: 7,
        }
    }
}

impl GbrtConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 {
            return Err("rounds must be at least 1".into());
        }
        if self.max_depth == 0 || self.max_depth > 8 {
            return Err(format!("max_depth must be 1..=8, got {}", self.max_depth));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(format!(
                "learning_rate must be in (0, 1], got {}",
                self.learning_rate
            ));
        }
        if !(0.0 < self.subsample && self.subsample <= 1.0) {
            return Err(format!(
                "subsample must be in (0, 1], got {}",
                self.subsample
            ));
        }
        if self.min_leaf == 0 {
            return Err("min_leaf must be at least 1".into());
        }
        Ok(())
    }
}

/// A node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Internal split: `feature`, `threshold`, and child indices.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf value.
    Leaf(f64),
}

/// One fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A fitted gradient-boosted regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbrt {
    base: f64,
    trees: Vec<Tree>,
    learning_rate: f64,
    importance: Vec<f64>,
    features: usize,
}

impl Gbrt {
    /// Fits a boosted ensemble to rows `x` (each of equal length) and
    /// targets `y`.
    ///
    /// # Errors
    ///
    /// Returns a message if the config is invalid, the data is empty, or
    /// row lengths disagree.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &GbrtConfig) -> Result<Self, String> {
        config.validate()?;
        if x.is_empty() || x.len() != y.len() {
            return Err(format!(
                "need equal non-zero rows: {} features rows vs {} targets",
                x.len(),
                y.len()
            ));
        }
        let features = x[0].len();
        if features == 0 || x.iter().any(|r| r.len() != features) {
            return Err("all rows must have the same non-zero length".into());
        }

        let n = x.len();
        let base = y.iter().sum::<f64>() / n as f64;
        let mut predictions = vec![base; n];
        let mut trees = Vec::with_capacity(config.rounds);
        let mut importance = vec![0.0; features];
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let sample_n = ((n as f64 * config.subsample).ceil() as usize).clamp(1, n);
        let mut indices: Vec<usize> = (0..n).collect();

        for _ in 0..config.rounds {
            indices.shuffle(&mut rng);
            let sample = &indices[..sample_n];
            let residuals: Vec<f64> = sample.iter().map(|&i| y[i] - predictions[i]).collect();
            let mut tree = Tree { nodes: Vec::new() };
            build_node(
                x,
                sample,
                &residuals,
                config,
                1,
                &mut tree.nodes,
                &mut importance,
            );
            for i in 0..n {
                predictions[i] += config.learning_rate * tree.predict(&x[i]);
            }
            trees.push(tree);
        }
        Ok(Gbrt {
            base,
            trees,
            learning_rate: config.learning_rate,
            importance,
            features,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong length.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.features, "feature-count mismatch");
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.learning_rate * t.predict(row))
                .sum::<f64>()
    }

    /// Split-gain importance per feature (summed squared-error reduction
    /// across all splits that used the feature).
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }

    /// Feature indices ranked by importance, descending.
    pub fn importance_ranking(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.importance.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

/// Recursively builds a tree node over `sample` (indices into `x`) with
/// `targets` parallel to `sample`. Returns the node index.
fn build_node(
    x: &[Vec<f64>],
    sample: &[usize],
    targets: &[f64],
    config: &GbrtConfig,
    depth: usize,
    nodes: &mut Vec<Node>,
    importance: &mut [f64],
) -> usize {
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    if depth > config.max_depth || sample.len() < 2 * config.min_leaf {
        nodes.push(Node::Leaf(mean));
        return nodes.len() - 1;
    }

    // Best split by squared-error reduction.
    let sse = |vals: &[f64]| {
        let m = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        vals.iter().map(|v| (v - m).powi(2)).sum::<f64>()
    };
    let parent_sse = sse(targets);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let features = x[0].len();
    #[allow(clippy::needless_range_loop)] // `f` indexes columns across many rows
    for f in 0..features {
        // Candidate thresholds: midpoints of sorted distinct values.
        let mut vals: Vec<f64> = sample.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut l, mut r) = (Vec::new(), Vec::new());
            for (k, &i) in sample.iter().enumerate() {
                if x[i][f] <= threshold {
                    l.push(targets[k]);
                } else {
                    r.push(targets[k]);
                }
            }
            if l.len() < config.min_leaf || r.len() < config.min_leaf {
                continue;
            }
            let gain = parent_sse - sse(&l) - sse(&r);
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f, threshold, gain));
            }
        }
    }

    let Some((feature, threshold, gain)) = best.filter(|&(_, _, g)| g > 1e-12) else {
        nodes.push(Node::Leaf(mean));
        return nodes.len() - 1;
    };
    importance[feature] += gain;

    let (mut ls, mut lt, mut rs, mut rt) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (k, &i) in sample.iter().enumerate() {
        if x[i][feature] <= threshold {
            ls.push(i);
            lt.push(targets[k]);
        } else {
            rs.push(i);
            rt.push(targets[k]);
        }
    }
    let me = nodes.len();
    nodes.push(Node::Leaf(0.0)); // placeholder, patched below
    let left = build_node(x, &ls, &lt, config, depth + 1, nodes, importance);
    let right = build_node(x, &rs, &rt, config, depth + 1, nodes, importance);
    nodes[me] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

/// CounterMiner-style counter analysis: SGBRT from per-metric rates to
/// throughput, with split-gain importance ranking over metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterMinerBaseline {
    metrics: Vec<spire_core::MetricId>,
    model: Gbrt,
}

impl CounterMinerBaseline {
    /// Trains on a sample set (same feature construction as
    /// [`crate::RegressionBaseline`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the set yields no usable rows or the GBRT
    /// config is invalid.
    pub fn train(samples: &spire_core::SampleSet, config: &GbrtConfig) -> Result<Self, String> {
        let fm =
            crate::features::feature_matrix(samples).ok_or("no complete sample rows available")?;
        let model = Gbrt::fit(&fm.rows, &fm.targets, config)?;
        Ok(CounterMinerBaseline {
            metrics: fm.metrics,
            model,
        })
    }

    /// Metrics ranked by split-gain importance, descending.
    pub fn importance_ranking(&self) -> Vec<(spire_core::MetricId, f64)> {
        self.model
            .importance_ranking()
            .into_iter()
            .map(|(i, gain)| (self.metrics[i].clone(), gain))
            .collect()
    }

    /// The underlying boosted model.
    pub fn model(&self) -> &Gbrt {
        &self.model
    }

    /// The metrics, in feature order.
    pub fn metrics(&self) -> &[spire_core::MetricId] {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// y = 3*x0 + noise; x1 is irrelevant.
    fn make_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..10.0);
            let b: f64 = rng.gen_range(0.0..10.0);
            x.push(vec![a, b]);
            y.push(3.0 * a + rng.gen_range(-0.1..0.1));
        }
        (x, y)
    }

    #[test]
    fn fits_a_linear_relationship() {
        let (x, y) = make_data(200);
        let model = Gbrt::fit(&x, &y, &GbrtConfig::default()).unwrap();
        let p = model.predict(&[5.0, 1.0]);
        assert!((p - 15.0).abs() < 1.5, "predicted {p}");
    }

    #[test]
    fn importance_finds_the_driving_feature() {
        let (x, y) = make_data(200);
        let model = Gbrt::fit(&x, &y, &GbrtConfig::default()).unwrap();
        let ranking = model.importance_ranking();
        assert_eq!(ranking[0].0, 0);
        assert!(ranking[0].1 > ranking[1].1 * 10.0);
    }

    #[test]
    fn nonlinear_step_is_learnable_where_linear_fails() {
        // y = 1 if x0 > 5 else 0: a tree model nails this.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let v = i as f64 / 20.0;
            x.push(vec![v]);
            y.push(if v > 5.0 { 1.0 } else { 0.0 });
        }
        let model = Gbrt::fit(&x, &y, &GbrtConfig::default()).unwrap();
        assert!(model.predict(&[2.0]) < 0.2);
        assert!(model.predict(&[8.0]) > 0.8);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (x, y) = make_data(10);
        for bad in [
            GbrtConfig {
                rounds: 0,
                ..GbrtConfig::default()
            },
            GbrtConfig {
                max_depth: 0,
                ..GbrtConfig::default()
            },
            GbrtConfig {
                learning_rate: 0.0,
                ..GbrtConfig::default()
            },
            GbrtConfig {
                subsample: 1.5,
                ..GbrtConfig::default()
            },
            GbrtConfig {
                min_leaf: 0,
                ..GbrtConfig::default()
            },
        ] {
            assert!(Gbrt::fit(&x, &y, &bad).is_err());
        }
    }

    #[test]
    fn empty_or_ragged_data_is_rejected() {
        assert!(Gbrt::fit(&[], &[], &GbrtConfig::default()).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(Gbrt::fit(&ragged, &[1.0, 2.0], &GbrtConfig::default()).is_err());
        assert!(Gbrt::fit(&[vec![1.0]], &[1.0, 2.0], &GbrtConfig::default()).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = make_data(100);
        let a = Gbrt::fit(&x, &y, &GbrtConfig::default()).unwrap();
        let b = Gbrt::fit(&x, &y, &GbrtConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let (x, y) = make_data(50);
        let cfg = GbrtConfig {
            rounds: 10,
            ..GbrtConfig::default()
        };
        let model = Gbrt::fit(&x, &y, &cfg).unwrap();
        let back: Gbrt = serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
        assert_eq!(model.predict(&[3.0, 3.0]), back.predict(&[3.0, 3.0]));
    }

    #[test]
    fn counter_miner_finds_the_driving_metric() {
        use spire_core::{Sample, SampleSet};
        let mut set = SampleSet::new();
        for i in 0..60 {
            let t = 100.0;
            let harmful = i as f64;
            let w = 1200.0 - 10.0 * harmful;
            set.push(Sample::new("harmful", t, w, harmful * t).unwrap());
            set.push(Sample::new("noise", t, w, ((i * 31) % 7) as f64).unwrap());
        }
        let cfg = GbrtConfig {
            rounds: 40,
            ..GbrtConfig::default()
        };
        let cm = CounterMinerBaseline::train(&set, &cfg).unwrap();
        let ranking = cm.importance_ranking();
        assert_eq!(ranking[0].0.as_str(), "harmful");
    }

    #[test]
    fn counter_miner_rejects_empty_sets() {
        use spire_core::SampleSet;
        assert!(CounterMinerBaseline::train(&SampleSet::new(), &GbrtConfig::default()).is_err());
    }

    #[test]
    fn stumps_work() {
        let (x, y) = make_data(100);
        let cfg = GbrtConfig {
            max_depth: 1,
            rounds: 200,
            ..GbrtConfig::default()
        };
        let model = Gbrt::fit(&x, &y, &cfg).unwrap();
        assert!((model.predict(&[5.0, 0.0]) - 15.0).abs() < 2.0);
    }
}
