//! A standard-ML counter-analysis baseline: ridge regression from
//! per-metric event rates to throughput, with coefficient-magnitude
//! feature importance.
//!
//! The paper's related work (Section VI-B) describes approaches like
//! CounterMiner and Karami et al. that train standard models to predict
//! performance from counters and read bottlenecks off feature
//! importances — and argues they "can lose useful causal information"
//! (e.g. leaning on a broad stall count while ignoring its causes). This
//! module implements that baseline faithfully so the claim can be tested
//! (see the workspace's ablation benches).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use spire_core::{MetricId, SampleSet};

use crate::features::feature_matrix;
use crate::linalg::{ridge_solve, Matrix};

/// Errors from regression training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RegressionError {
    /// The training set was empty or had no complete intervals.
    NoUsableRows,
    /// The (regularized) normal equations were singular.
    SingularSystem,
    /// `lambda` was negative or non-finite.
    InvalidLambda(f64),
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::NoUsableRows => {
                f.write_str("no complete sample rows available for regression")
            }
            RegressionError::SingularSystem => {
                f.write_str("normal equations are singular; increase lambda")
            }
            RegressionError::InvalidLambda(l) => {
                write!(f, "lambda must be finite and >= 0, got {l}")
            }
        }
    }
}

impl std::error::Error for RegressionError {}

/// A trained throughput-prediction model over per-metric event rates.
///
/// Features are the rates `M_x / T` per metric, standardized to zero
/// mean and unit variance; the target is throughput `P = W / T`. Feature
/// importance is the absolute standardized coefficient, the convention
/// the related-work baselines use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionBaseline {
    metrics: Vec<MetricId>,
    coefficients: Vec<f64>,
    intercept: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    lambda: f64,
    rows_used: usize,
}

impl RegressionBaseline {
    /// Trains on a sample set.
    ///
    /// Samples are grouped per metric in collection order; row `i` pairs
    /// the `i`-th sample of every metric (the alignment produced by a
    /// multiplexed sampling session). The row count is the smallest
    /// per-metric sample count.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError`] when no rows are available, lambda is
    /// invalid, or the system is singular.
    pub fn train(samples: &SampleSet, lambda: f64) -> Result<Self, RegressionError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(RegressionError::InvalidLambda(lambda));
        }
        let fm = feature_matrix(samples).ok_or(RegressionError::NoUsableRows)?;
        let metrics = fm.metrics;
        let rows = fm.rows.len();
        let cols = metrics.len();
        let y = fm.targets;

        // Raw feature matrix of rates.
        let mut raw = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                raw.set(r, c, fm.rows[r][c]);
            }
        }

        // Standardize features.
        let mut means = vec![0.0; cols];
        let mut stds = vec![0.0; cols];
        for c in 0..cols {
            let mean: f64 = (0..rows).map(|r| raw.get(r, c)).sum::<f64>() / rows as f64;
            let var: f64 = (0..rows)
                .map(|r| (raw.get(r, c) - mean).powi(2))
                .sum::<f64>()
                / rows as f64;
            means[c] = mean;
            stds[c] = var.sqrt().max(1e-12);
        }
        let mut x = Matrix::zeros(rows, cols + 1);
        for r in 0..rows {
            for c in 0..cols {
                x.set(r, c, (raw.get(r, c) - means[c]) / stds[c]);
            }
            x.set(r, cols, 1.0); // intercept column
        }

        let w = ridge_solve(&x, &y, lambda).ok_or(RegressionError::SingularSystem)?;
        let (coefficients, intercept) = (w[..cols].to_vec(), w[cols]);
        Ok(RegressionBaseline {
            metrics,
            coefficients,
            intercept,
            feature_means: means,
            feature_stds: stds,
            lambda,
            rows_used: rows,
        })
    }

    /// The metrics, in feature order.
    pub fn metrics(&self) -> &[MetricId] {
        &self.metrics
    }

    /// Standardized coefficients, in feature order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The intercept term.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Number of training rows used.
    pub fn rows_used(&self) -> usize {
        self.rows_used
    }

    /// Predicts throughput from a map of per-metric rates (`M_x / T`).
    /// Missing metrics are treated as having their training-mean rate.
    pub fn predict(&self, rates: &BTreeMap<MetricId, f64>) -> f64 {
        let mut acc = self.intercept;
        for (i, m) in self.metrics.iter().enumerate() {
            let rate = rates.get(m).copied().unwrap_or(self.feature_means[i]);
            acc += self.coefficients[i] * (rate - self.feature_means[i]) / self.feature_stds[i];
        }
        acc
    }

    /// Metrics ranked by importance (absolute standardized coefficient),
    /// descending — the baseline's "bottleneck" ranking.
    pub fn importance_ranking(&self) -> Vec<(MetricId, f64)> {
        let mut v: Vec<(MetricId, f64)> = self
            .metrics
            .iter()
            .cloned()
            .zip(self.coefficients.iter().map(|c| c.abs()))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::Sample;

    /// Builds a set where metric "harmful" strongly (negatively) drives
    /// throughput and "noise" is irrelevant.
    fn driven_set(n: usize) -> SampleSet {
        let mut set = SampleSet::new();
        for i in 0..n {
            let t = 100.0;
            let harmful = i as f64; // rate grows
            let w = 1000.0 - 8.0 * harmful; // throughput drops with it
            set.push(Sample::new("harmful", t, w, harmful * t).unwrap());
            set.push(Sample::new("noise", t, w, ((i * 7919) % 13) as f64).unwrap());
        }
        set
    }

    #[test]
    fn importance_identifies_the_driving_metric() {
        let model = RegressionBaseline::train(&driven_set(40), 1e-6).unwrap();
        let ranking = model.importance_ranking();
        assert_eq!(ranking[0].0.as_str(), "harmful");
        assert!(ranking[0].1 > ranking[1].1 * 5.0);
    }

    #[test]
    fn coefficient_sign_matches_the_relationship() {
        let model = RegressionBaseline::train(&driven_set(40), 1e-6).unwrap();
        let idx = model
            .metrics()
            .iter()
            .position(|m| m.as_str() == "harmful")
            .unwrap();
        assert!(model.coefficients()[idx] < 0.0);
    }

    #[test]
    fn prediction_tracks_training_relationship() {
        let model = RegressionBaseline::train(&driven_set(40), 1e-6).unwrap();
        let mut rates = BTreeMap::new();
        rates.insert(MetricId::new("harmful"), 10.0);
        rates.insert(MetricId::new("noise"), 5.0);
        let p = model.predict(&rates);
        // True value: (1000 - 80)/100 = 9.2 IPC-ish units.
        assert!((p - 9.2).abs() < 0.5, "predicted {p}");
    }

    #[test]
    fn empty_set_is_an_error() {
        assert!(matches!(
            RegressionBaseline::train(&SampleSet::new(), 1.0),
            Err(RegressionError::NoUsableRows)
        ));
    }

    #[test]
    fn invalid_lambda_is_an_error() {
        assert!(matches!(
            RegressionBaseline::train(&driven_set(10), -1.0),
            Err(RegressionError::InvalidLambda(_))
        ));
        assert!(matches!(
            RegressionBaseline::train(&driven_set(10), f64::NAN),
            Err(RegressionError::InvalidLambda(_))
        ));
    }

    #[test]
    fn missing_rate_falls_back_to_training_mean() {
        let model = RegressionBaseline::train(&driven_set(40), 1e-6).unwrap();
        let empty = BTreeMap::new();
        let p = model.predict(&empty);
        // With all features at their mean, prediction equals the mean
        // target (by least-squares geometry).
        assert!(p.is_finite());
        assert!(p > 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let model = RegressionBaseline::train(&driven_set(10), 0.1).unwrap();
        let back: RegressionBaseline =
            serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
        assert_eq!(model, back);
    }
}
