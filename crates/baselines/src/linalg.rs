//! Minimal dense linear algebra for the regression baseline: just enough
//! to solve ridge normal equations with a Cholesky factorization.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `Aᵀ·A` (a `cols × cols` Gram matrix).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, acc);
                g.set(j, i, acc);
            }
        }
        g
    }

    /// `Aᵀ·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "vector length must match row count");
        let mut out = vec![0.0; self.cols];
        for (r, &yv) in y.iter().enumerate() {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot += self.get(r, c) * yv;
            }
        }
        out
    }
}

/// Solves the ridge normal equations `(AᵀA + λI)·w = Aᵀy` via Cholesky.
///
/// Returns `None` if the regularized Gram matrix is not positive
/// definite (possible only for `lambda == 0` with degenerate features).
///
/// # Panics
///
/// Panics if `y.len()` does not match `a`'s row count or if `lambda` is
/// negative.
pub fn ridge_solve(a: &Matrix, y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert!(lambda >= 0.0, "ridge lambda must be non-negative");
    let n = a.cols();
    let mut g = a.gram();
    for i in 0..n {
        g.set(i, i, g.get(i, i) + lambda);
    }
    let rhs = a.transpose_mul_vec(y);
    cholesky_solve(&g, &rhs)
}

/// Solves `G·x = b` for symmetric positive-definite `G` via Cholesky.
fn cholesky_solve(g: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = g.rows();
    debug_assert_eq!(g.cols(), n);
    debug_assert_eq!(b.len(), n);
    // Factor G = L·Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = g.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    // Forward substitution: L·z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (k, zk) in z.iter().enumerate().take(i) {
            sum -= l.get(i, k) * zk;
        }
        z[i] = sum / l.get(i, i);
    }
    // Back substitution: Lᵀ·x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for (k, xk) in x.iter().enumerate().skip(i + 1) {
            sum -= l.get(k, i) * xk;
        }
        x[i] = sum / l.get(i, i);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_of_identity_like() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(1, 1), 4.0);
        assert_eq!(g.get(0, 1), 0.0);
    }

    #[test]
    fn ridge_recovers_exact_coefficients_without_noise() {
        // y = 2*x0 - 3*x1 over a well-conditioned design.
        let rows = 8;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let x0 = i as f64;
            let x1 = (i * i) as f64 * 0.1 + 1.0;
            data.extend([x0, x1]);
            y.push(2.0 * x0 - 3.0 * x1);
        }
        let a = Matrix::from_rows(rows, 2, data);
        let w = ridge_solve(&a, &y, 0.0).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-8, "{w:?}");
        assert!((w[1] + 3.0).abs() < 1e-8, "{w:?}");
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let rows = 6;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let x = i as f64 + 1.0;
            data.push(x);
            y.push(5.0 * x);
        }
        let a = Matrix::from_rows(rows, 1, data);
        let w0 = ridge_solve(&a, &y, 0.0).unwrap()[0];
        let w1 = ridge_solve(&a, &y, 100.0).unwrap()[0];
        assert!(w1 < w0);
        assert!(w1 > 0.0);
    }

    #[test]
    fn degenerate_design_fails_without_regularization() {
        // Two identical columns: singular Gram matrix.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let y = vec![1.0, 2.0, 3.0];
        assert!(ridge_solve(&a, &y, 0.0).is_none());
        // A tiny ridge restores solvability.
        assert!(ridge_solve(&a, &y, 1e-6).is_some());
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn bad_dimensions_panic() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }
}
