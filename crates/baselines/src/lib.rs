//! # spire-baselines
//!
//! The two baselines SPIRE is compared against and built upon:
//!
//! * [`ClassicRoofline`] — the conventional roofline model
//!   `P(I) = min(π, β·I)` with optional extra ceilings (paper Fig. 2).
//!   SPIRE generalizes this one-dimensional model into a per-metric
//!   ensemble.
//! * [`RegressionBaseline`] — a standard-ML counter analysis (ridge
//!   regression + coefficient importance), representing the
//!   CounterMiner-style related work whose loss of causal information the
//!   paper criticizes.
//!
//! ```
//! use spire_baselines::{CeilingKind, ClassicRoofline};
//!
//! # fn main() -> Result<(), String> {
//! let roofline = ClassicRoofline::new(128.0, 16.0)?
//!     .with_ceiling("scalar", CeilingKind::Compute(16.0))
//!     .with_ceiling("DRAM", CeilingKind::Bandwidth(4.0));
//! assert_eq!(roofline.attainable(4.0), 64.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod features;
mod gbrt;
pub mod linalg;
mod regression;
mod roofline;

pub use gbrt::{CounterMinerBaseline, Gbrt, GbrtConfig};
pub use regression::{RegressionBaseline, RegressionError};
pub use roofline::{Ceiling, CeilingKind, ClassicRoofline, RooflineBound};
