//! The conventional roofline model (Williams et al., CACM 2009) with
//! optional extra ceilings — the baseline SPIRE generalizes (paper
//! Section II-A and Fig. 2).

use serde::{Deserialize, Serialize};

/// Whether a workload is limited by compute or by memory bandwidth under
/// a classic roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RooflineBound {
    /// Limited by peak throughput (`π`).
    Compute,
    /// Limited by memory bandwidth (`β · I`).
    Memory,
}

impl std::fmt::Display for RooflineBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RooflineBound::Compute => f.write_str("compute-bound"),
            RooflineBound::Memory => f.write_str("memory-bound"),
        }
    }
}

/// An additional ceiling below the main roof: either a lower compute
/// throughput (e.g. scalar-only execution) or a lower bandwidth (e.g.
/// DRAM instead of cache).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// Human-readable label (e.g. `"scalar"` or `"DRAM"`).
    pub label: String,
    /// The ceiling's kind and magnitude.
    pub kind: CeilingKind,
}

/// The kind of a [`Ceiling`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CeilingKind {
    /// A horizontal compute ceiling at the given throughput.
    Compute(f64),
    /// A diagonal bandwidth ceiling with the given bytes-per-time slope.
    Bandwidth(f64),
}

/// A classic roofline model: `P(I) = min(π, β·I)`, plus optional
/// ceilings.
///
/// ```
/// use spire_baselines::{ClassicRoofline, RooflineBound};
///
/// // 100 GFLOP/s peak, 10 GB/s bandwidth.
/// let model = ClassicRoofline::new(100.0, 10.0).expect("valid parameters");
/// assert_eq!(model.attainable(2.0), 20.0); // memory-bound region
/// assert_eq!(model.attainable(50.0), 100.0); // compute-bound region
/// assert_eq!(model.classify(2.0), RooflineBound::Memory);
/// assert_eq!(model.ridge_point(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassicRoofline {
    peak_throughput: f64,
    peak_bandwidth: f64,
    ceilings: Vec<Ceiling>,
}

impl ClassicRoofline {
    /// Creates a roofline with peak throughput `π` and bandwidth `β`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message if either parameter is not finite
    /// and strictly positive.
    pub fn new(peak_throughput: f64, peak_bandwidth: f64) -> Result<Self, String> {
        if !peak_throughput.is_finite() || peak_throughput <= 0.0 {
            return Err(format!(
                "peak throughput must be finite and > 0, got {peak_throughput}"
            ));
        }
        if !peak_bandwidth.is_finite() || peak_bandwidth <= 0.0 {
            return Err(format!(
                "peak bandwidth must be finite and > 0, got {peak_bandwidth}"
            ));
        }
        Ok(ClassicRoofline {
            peak_throughput,
            peak_bandwidth,
            ceilings: Vec::new(),
        })
    }

    /// Adds an extra ceiling (builder style). Ceilings must lie at or
    /// below the corresponding roof; violating ones are clamped.
    pub fn with_ceiling(mut self, label: impl Into<String>, kind: CeilingKind) -> Self {
        let kind = match kind {
            CeilingKind::Compute(v) => CeilingKind::Compute(v.min(self.peak_throughput)),
            CeilingKind::Bandwidth(v) => CeilingKind::Bandwidth(v.min(self.peak_bandwidth)),
        };
        self.ceilings.push(Ceiling {
            label: label.into(),
            kind,
        });
        self
    }

    /// Peak throughput `π`.
    pub fn peak_throughput(&self) -> f64 {
        self.peak_throughput
    }

    /// Peak bandwidth `β`.
    pub fn peak_bandwidth(&self) -> f64 {
        self.peak_bandwidth
    }

    /// The extra ceilings.
    pub fn ceilings(&self) -> &[Ceiling] {
        &self.ceilings
    }

    /// Maximum attainable performance at operational intensity `i`:
    /// `min(π, β·i)`. Negative intensities attain nothing.
    pub fn attainable(&self, i: f64) -> f64 {
        if i <= 0.0 {
            return 0.0;
        }
        self.peak_throughput.min(self.peak_bandwidth * i)
    }

    /// Attainable performance under a specific ceiling.
    pub fn attainable_under(&self, ceiling: &Ceiling, i: f64) -> f64 {
        if i <= 0.0 {
            return 0.0;
        }
        match ceiling.kind {
            CeilingKind::Compute(p) => p.min(self.peak_bandwidth * i),
            CeilingKind::Bandwidth(b) => self.peak_throughput.min(b * i),
        }
    }

    /// Classifies a workload at intensity `i` as compute- or
    /// memory-bound. The ridge point itself counts as compute-bound.
    pub fn classify(&self, i: f64) -> RooflineBound {
        if self.peak_bandwidth * i < self.peak_throughput {
            RooflineBound::Memory
        } else {
            RooflineBound::Compute
        }
    }

    /// The ridge point `π / β`: the intensity where the memory and
    /// compute roofs meet.
    pub fn ridge_point(&self) -> f64 {
        self.peak_throughput / self.peak_bandwidth
    }

    /// Efficiency of a measured point: achieved performance over
    /// attainable performance at the same intensity, in `[0, 1]` for
    /// feasible measurements.
    pub fn efficiency(&self, i: f64, achieved: f64) -> f64 {
        let roof = self.attainable(i);
        if roof <= 0.0 {
            0.0
        } else {
            achieved / roof
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ClassicRoofline {
        ClassicRoofline::new(100.0, 10.0).unwrap()
    }

    #[test]
    fn attainable_is_min_of_roofs() {
        let m = model();
        assert_eq!(m.attainable(1.0), 10.0);
        assert_eq!(m.attainable(10.0), 100.0);
        assert_eq!(m.attainable(1000.0), 100.0);
        assert_eq!(m.attainable(0.0), 0.0);
        assert_eq!(m.attainable(-1.0), 0.0);
    }

    #[test]
    fn classification_splits_at_ridge() {
        let m = model();
        assert_eq!(m.classify(9.99), RooflineBound::Memory);
        assert_eq!(m.classify(10.0), RooflineBound::Compute);
        assert_eq!(m.classify(50.0), RooflineBound::Compute);
        assert_eq!(m.ridge_point(), 10.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ClassicRoofline::new(0.0, 10.0).is_err());
        assert!(ClassicRoofline::new(10.0, -1.0).is_err());
        assert!(ClassicRoofline::new(f64::NAN, 1.0).is_err());
        assert!(ClassicRoofline::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn ceilings_are_clamped_to_the_roof() {
        let m = model()
            .with_ceiling("scalar", CeilingKind::Compute(25.0))
            .with_ceiling("too-high", CeilingKind::Compute(500.0))
            .with_ceiling("DRAM", CeilingKind::Bandwidth(4.0));
        assert_eq!(m.ceilings().len(), 3);
        assert_eq!(m.ceilings()[1].kind, CeilingKind::Compute(100.0));
        assert_eq!(m.attainable_under(&m.ceilings()[0], 100.0), 25.0);
        assert_eq!(m.attainable_under(&m.ceilings()[2], 1.0), 4.0);
    }

    #[test]
    fn efficiency_is_fractional() {
        let m = model();
        assert!((m.efficiency(1.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.efficiency(-1.0, 5.0), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(RooflineBound::Compute.to_string(), "compute-bound");
        assert_eq!(RooflineBound::Memory.to_string(), "memory-bound");
    }

    #[test]
    fn serde_round_trip() {
        let m = model().with_ceiling("scalar", CeilingKind::Compute(25.0));
        let back: ClassicRoofline =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }
}
