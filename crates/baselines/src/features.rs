//! Shared feature extraction for the ML baselines: a SPIRE [`SampleSet`]
//! becomes a rate matrix (rows = aligned intervals, columns = metrics)
//! plus a throughput target vector.

use spire_core::{MetricColumn, MetricId, SampleSet};

/// Extracted features: metric order, rate rows, and targets.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Metrics, in column order.
    pub metrics: Vec<MetricId>,
    /// One row per aligned interval; each entry is the metric's rate
    /// `M_x / T` during that interval.
    pub rows: Vec<Vec<f64>>,
    /// Per-row throughput target (`P = W / T`, averaged across metrics).
    pub targets: Vec<f64>,
}

/// Builds the rate matrix from a sample set.
///
/// Samples are grouped per metric in collection order; row `i` pairs the
/// `i`-th sample of every metric (the alignment a multiplexed sampling
/// session produces). The row count is the smallest per-metric sample
/// count. Returns `None` when no complete rows exist.
pub fn feature_matrix(samples: &SampleSet) -> Option<FeatureMatrix> {
    let columns = samples.columns();
    if columns.is_empty() {
        return None;
    }
    let metrics: Vec<MetricId> = columns.iter().map(|c| c.metric().clone()).collect();
    let n_rows = columns.iter().map(MetricColumn::len).min().unwrap_or(0);
    if n_rows == 0 {
        return None;
    }
    let cols = metrics.len();
    let mut rows = vec![vec![0.0; cols]; n_rows];
    let mut targets = vec![0.0; n_rows];
    for (c, column) in columns.iter().enumerate() {
        let deltas = column.metric_deltas();
        let times = column.times();
        let throughputs = column.throughputs();
        for r in 0..n_rows {
            rows[r][c] = deltas[r] / times[r];
            targets[r] += throughputs[r] / cols as f64;
        }
    }
    Some(FeatureMatrix {
        metrics,
        rows,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::Sample;

    #[test]
    fn builds_aligned_rows() {
        let mut set = SampleSet::new();
        for i in 0..3 {
            set.push(Sample::new("a", 10.0, 20.0 + i as f64, 5.0).unwrap());
            set.push(Sample::new("b", 10.0, 20.0 + i as f64, 2.0).unwrap());
        }
        let fm = feature_matrix(&set).unwrap();
        assert_eq!(fm.metrics.len(), 2);
        assert_eq!(fm.rows.len(), 3);
        assert_eq!(fm.rows[0], vec![0.5, 0.2]);
        assert!((fm.targets[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row_count_is_min_across_metrics() {
        let mut set = SampleSet::new();
        set.push(Sample::new("a", 1.0, 1.0, 1.0).unwrap());
        set.push(Sample::new("a", 1.0, 1.0, 1.0).unwrap());
        set.push(Sample::new("b", 1.0, 1.0, 1.0).unwrap());
        let fm = feature_matrix(&set).unwrap();
        assert_eq!(fm.rows.len(), 1);
    }

    #[test]
    fn empty_set_yields_none() {
        assert!(feature_matrix(&SampleSet::new()).is_none());
    }
}
