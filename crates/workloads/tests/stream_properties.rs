//! Property tests for workload-stream generation: any valid profile must
//! produce well-formed, deterministic instruction streams whose
//! statistics track the profile.

use proptest::prelude::*;
use spire_sim::{DecodeSource, InstrClass};
use spire_workloads::{
    BranchBehavior, DependencyBehavior, FrontendBehavior, InstrMix, MemoryBehavior, WorkloadProfile,
};

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.01f64..1.0, // alu
        0.0f64..0.6,  // load
        0.0f64..0.4,  // branch
        0.0f64..1.0,  // dsb
        0.0f64..0.2,  // ms (kept jointly feasible below)
        0.0f64..0.2,  // misp
        0.0f64..1.0,  // dep rate
        0.01f64..1.0, // distance p
        1u32..64,     // max distance
    )
        .prop_map(
            |(alu, load, branch, dsb, ms, misp, dep_rate, distance_p, max_distance)| {
                WorkloadProfile::named("prop", "arb")
                    .with_mix(InstrMix {
                        int_alu: alu,
                        load,
                        branch,
                        ..InstrMix::scalar_int()
                    })
                    .with_memory(MemoryBehavior {
                        level_weights: [0.7, 0.2, 0.07, 0.03],
                        lock_rate: 0.05,
                    })
                    .with_frontend(FrontendBehavior {
                        dsb_coverage: dsb * (1.0 - ms),
                        ms_rate: ms,
                        icache_miss_rate: 0.005,
                        two_uop_rate: 0.1,
                    })
                    .with_branch(BranchBehavior {
                        mispredict_rate: misp,
                    })
                    .with_dependency(DependencyBehavior {
                        dep_rate,
                        distance_p,
                        max_distance,
                    })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Profiles built this way always validate.
    #[test]
    fn arbitrary_profiles_validate(p in arb_profile()) {
        prop_assert!(p.validate().is_ok());
    }

    /// Streams are deterministic under the seed and differ across seeds.
    #[test]
    fn determinism(p in arb_profile(), seed in 0u64..1_000) {
        let a: Vec<_> = p.stream(seed).take(200).collect();
        let b: Vec<_> = p.stream(seed).take(200).collect();
        prop_assert_eq!(&a, &b);
    }

    /// Every generated instruction is well-formed: at least one µop,
    /// dependencies never reach before the stream start, and dependency
    /// distances respect the profile's clamp.
    #[test]
    fn instructions_are_well_formed(p in arb_profile(), seed in 0u64..1_000) {
        for (i, instr) in p.stream(seed).take(500).enumerate() {
            prop_assert!(instr.uops >= 1);
            prop_assert!(u64::from(instr.dep_distance) <= i as u64);
            prop_assert!(instr.dep_distance <= p.dependency.max_distance);
            if instr.decode == DecodeSource::Ms {
                prop_assert!(instr.uops > 1, "microcoded ops expand to several µops");
            }
        }
    }

    /// Class frequencies track the normalized mix within tolerance.
    #[test]
    fn frequencies_track_mix(p in arb_profile(), seed in 0u64..100) {
        let n = 20_000usize;
        let total = p.mix.total();
        let expect_load = p.mix.load / total;
        let expect_branch = p.mix.branch / total;
        let mut loads = 0usize;
        let mut branches = 0usize;
        for i in p.stream(seed).take(n) {
            match i.class {
                InstrClass::Load { .. } => loads += 1,
                InstrClass::Branch { .. } => branches += 1,
                _ => {}
            }
        }
        let tol = 0.03;
        prop_assert!((loads as f64 / n as f64 - expect_load).abs() < tol);
        prop_assert!((branches as f64 / n as f64 - expect_branch).abs() < tol);
    }

    /// The generated stream runs on the core and drains completely.
    #[test]
    fn streams_simulate_cleanly(p in arb_profile(), seed in 0u64..100) {
        let mut core = spire_sim::Core::new(spire_sim::CoreConfig::tiny());
        let mut stream = p.stream(seed).take(300);
        let summary = core.run(&mut stream, 1_000_000);
        prop_assert_eq!(summary.instructions, 300);
        prop_assert!(core.is_drained());
    }
}
