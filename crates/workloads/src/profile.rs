//! Statistical workload profiles.
//!
//! A [`WorkloadProfile`] describes a synthetic workload as a set of
//! per-instruction probabilities: the instruction-class mix, the cache
//! residency of its loads, the behaviour of its branches and front-end,
//! and its register-dependency structure. A profile plus a seed yields a
//! deterministic instruction stream for `spire-sim`.
//!
//! Profiles replace the paper's Phoronix Test Suite binaries: each of the
//! 27 suite entries (see [`crate::suite`]) is a profile tuned to exhibit
//! the same dominant bottleneck as its real counterpart.

use serde::{Deserialize, Serialize};
use spire_core::catalog::UarchArea;

/// Fractions of each instruction class in the dynamic instruction stream.
///
/// The fields need not sum exactly to one; they are normalized when
/// sampling. All fields must be non-negative and at least one positive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Simple integer ALU operations.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// Integer divides.
    pub int_div: f64,
    /// Floating-point adds.
    pub fp_add: f64,
    /// Floating-point multiplies.
    pub fp_mul: f64,
    /// Floating-point divides.
    pub fp_div: f64,
    /// 128-bit vector operations.
    pub vec128: f64,
    /// 256-bit vector operations.
    pub vec256: f64,
    /// 512-bit vector operations.
    pub vec512: f64,
    /// Memory loads.
    pub load: f64,
    /// Memory stores.
    pub store: f64,
    /// Branches.
    pub branch: f64,
}

impl InstrMix {
    /// A scalar-integer mix typical of control-heavy code.
    pub fn scalar_int() -> Self {
        InstrMix {
            int_alu: 0.45,
            int_mul: 0.03,
            int_div: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            vec128: 0.0,
            vec256: 0.0,
            vec512: 0.0,
            load: 0.25,
            store: 0.10,
            branch: 0.17,
        }
    }

    /// A vector floating-point mix typical of HPC kernels.
    pub fn vector_fp() -> Self {
        InstrMix {
            int_alu: 0.20,
            int_mul: 0.02,
            int_div: 0.0,
            fp_add: 0.05,
            fp_mul: 0.05,
            fp_div: 0.0,
            vec128: 0.02,
            vec256: 0.25,
            vec512: 0.0,
            load: 0.28,
            store: 0.08,
            branch: 0.05,
        }
    }

    /// Sum of all fractions (the normalization denominator).
    pub fn total(&self) -> f64 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.vec128
            + self.vec256
            + self.vec512
            + self.load
            + self.store
            + self.branch
    }

    fn fields(&self) -> [f64; 12] {
        [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.vec128,
            self.vec256,
            self.vec512,
            self.load,
            self.store,
            self.branch,
        ]
    }

    /// Validates that all fractions are finite, non-negative, and at least
    /// one is positive.
    pub fn validate(&self) -> Result<(), ProfileError> {
        for (i, v) in self.fields().iter().enumerate() {
            if !v.is_finite() || *v < 0.0 {
                return Err(ProfileError {
                    field: "mix",
                    reason: format!("fraction #{i} is {v}; must be finite and >= 0"),
                });
            }
        }
        if self.total() <= 0.0 {
            return Err(ProfileError {
                field: "mix",
                reason: "at least one class fraction must be positive".to_owned(),
            });
        }
        Ok(())
    }
}

/// Cache residency and locking behaviour of the workload's loads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Probability a load hits L1 / L2 / L3 / DRAM (normalized when
    /// sampling).
    pub level_weights: [f64; 4],
    /// Probability a load is locked (atomic).
    pub lock_rate: f64,
}

impl MemoryBehavior {
    /// Cache-resident: nearly all loads hit L1.
    pub fn cache_resident() -> Self {
        MemoryBehavior {
            level_weights: [0.97, 0.02, 0.008, 0.002],
            lock_rate: 0.0,
        }
    }

    /// Streaming from DRAM: large working set.
    pub fn dram_streaming() -> Self {
        MemoryBehavior {
            level_weights: [0.55, 0.15, 0.10, 0.20],
            lock_rate: 0.0,
        }
    }

    /// Validates weights and rates.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let sum: f64 = self.level_weights.iter().sum();
        if self
            .level_weights
            .iter()
            .any(|w| !w.is_finite() || *w < 0.0)
            || sum <= 0.0
        {
            return Err(ProfileError {
                field: "memory.level_weights",
                reason: "weights must be finite, non-negative, and not all zero".to_owned(),
            });
        }
        if !(0.0..=1.0).contains(&self.lock_rate) {
            return Err(ProfileError {
                field: "memory.lock_rate",
                reason: format!("must be within [0, 1], got {}", self.lock_rate),
            });
        }
        Ok(())
    }
}

/// Front-end behaviour: decode-path coverage and instruction-cache
/// locality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontendBehavior {
    /// Fraction of instructions served by the DSB (µop cache). The
    /// remainder (after `ms_rate`) uses the legacy MITE pipeline.
    pub dsb_coverage: f64,
    /// Fraction of instructions decoded by the microcode sequencer.
    pub ms_rate: f64,
    /// Probability an instruction fetch misses the instruction cache.
    pub icache_miss_rate: f64,
    /// Fraction of instructions that decode into 2 µops instead of 1.
    pub two_uop_rate: f64,
}

impl FrontendBehavior {
    /// A hot-loop front-end: high DSB coverage, negligible i-cache misses.
    pub fn hot_loop() -> Self {
        FrontendBehavior {
            dsb_coverage: 0.95,
            ms_rate: 0.001,
            icache_miss_rate: 0.0001,
            two_uop_rate: 0.05,
        }
    }

    /// A large-footprint front-end: mostly legacy decode, frequent
    /// i-cache misses.
    pub fn large_footprint() -> Self {
        FrontendBehavior {
            dsb_coverage: 0.10,
            ms_rate: 0.01,
            icache_miss_rate: 0.01,
            two_uop_rate: 0.15,
        }
    }

    /// Validates that all rates lie in `[0, 1]` and are jointly feasible.
    pub fn validate(&self) -> Result<(), ProfileError> {
        for (name, v) in [
            ("frontend.dsb_coverage", self.dsb_coverage),
            ("frontend.ms_rate", self.ms_rate),
            ("frontend.icache_miss_rate", self.icache_miss_rate),
            ("frontend.two_uop_rate", self.two_uop_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ProfileError {
                    field: name,
                    reason: format!("must be within [0, 1], got {v}"),
                });
            }
        }
        if self.dsb_coverage + self.ms_rate > 1.0 {
            return Err(ProfileError {
                field: "frontend",
                reason: format!(
                    "dsb_coverage + ms_rate must not exceed 1 (got {})",
                    self.dsb_coverage + self.ms_rate
                ),
            });
        }
        Ok(())
    }
}

/// Branch-prediction behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBehavior {
    /// Probability a branch is mispredicted.
    pub mispredict_rate: f64,
}

impl BranchBehavior {
    /// Well-predicted branches (loop-dominated code).
    pub fn predictable() -> Self {
        BranchBehavior {
            mispredict_rate: 0.001,
        }
    }

    /// Data-dependent, hard-to-predict branches.
    pub fn erratic() -> Self {
        BranchBehavior {
            mispredict_rate: 0.08,
        }
    }

    /// Validates the rate.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if !(0.0..=1.0).contains(&self.mispredict_rate) {
            return Err(ProfileError {
                field: "branch.mispredict_rate",
                reason: format!("must be within [0, 1], got {}", self.mispredict_rate),
            });
        }
        Ok(())
    }
}

/// Register-dependency structure: how often an instruction depends on a
/// recent producer, and how close that producer is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DependencyBehavior {
    /// Probability an instruction has a register dependency at all.
    pub dep_rate: f64,
    /// Geometric-distribution parameter for the producer distance: larger
    /// values mean shorter (tighter) dependency chains. Must be in
    /// `(0, 1]`.
    pub distance_p: f64,
    /// Maximum dependency distance (clamp).
    pub max_distance: u32,
}

impl DependencyBehavior {
    /// High instruction-level parallelism: few, distant dependencies.
    pub fn high_ilp() -> Self {
        DependencyBehavior {
            dep_rate: 0.25,
            distance_p: 0.05,
            max_distance: 64,
        }
    }

    /// Tight serial chains: almost every instruction depends on the
    /// previous one.
    pub fn serial_chain() -> Self {
        DependencyBehavior {
            dep_rate: 0.9,
            distance_p: 0.8,
            max_distance: 8,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if !(0.0..=1.0).contains(&self.dep_rate) {
            return Err(ProfileError {
                field: "dependency.dep_rate",
                reason: format!("must be within [0, 1], got {}", self.dep_rate),
            });
        }
        if !(self.distance_p > 0.0 && self.distance_p <= 1.0) {
            return Err(ProfileError {
                field: "dependency.distance_p",
                reason: format!("must be within (0, 1], got {}", self.distance_p),
            });
        }
        if self.max_distance == 0 {
            return Err(ProfileError {
                field: "dependency.max_distance",
                reason: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// Error returned when a profile fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    /// The offending field.
    pub field: &'static str,
    /// The constraint that was violated.
    pub reason: String,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid workload profile: {}: {}",
            self.field, self.reason
        )
    }
}

impl std::error::Error for ProfileError {}

/// A complete synthetic workload description.
///
/// ```
/// use spire_workloads::WorkloadProfile;
///
/// let profile = WorkloadProfile::named("demo", "quick test")
///     .expect_bottleneck(spire_core::catalog::UarchArea::Memory);
/// profile.validate().expect("builder defaults are valid");
/// let mut stream = profile.stream(42);
/// let first = stream.next().unwrap();
/// assert!(first.uops >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `"tnn"`).
    pub name: String,
    /// Configuration label (e.g. `"SqueezeNet v1.1"`), mirroring the
    /// paper's Table I "Configuration" column.
    pub config: String,
    /// The dominant bottleneck this profile is tuned to exhibit (the
    /// paper's Table I color coding).
    pub expected_bottleneck: UarchArea,
    /// Instruction-class mix.
    pub mix: InstrMix,
    /// Load residency and locking.
    pub memory: MemoryBehavior,
    /// Decode-path and i-cache behaviour.
    pub frontend: FrontendBehavior,
    /// Branch predictability.
    pub branch: BranchBehavior,
    /// Register-dependency structure.
    pub dependency: DependencyBehavior,
}

impl WorkloadProfile {
    /// Creates a profile with neutral defaults (scalar mix, cache
    /// resident, hot-loop front-end, predictable branches, high ILP) to be
    /// customized with struct-update syntax or the builder-style methods.
    pub fn named(name: impl Into<String>, config: impl Into<String>) -> Self {
        WorkloadProfile {
            name: name.into(),
            config: config.into(),
            expected_bottleneck: UarchArea::Core,
            mix: InstrMix::scalar_int(),
            memory: MemoryBehavior::cache_resident(),
            frontend: FrontendBehavior::hot_loop(),
            branch: BranchBehavior::predictable(),
            dependency: DependencyBehavior::high_ilp(),
        }
    }

    /// Sets the expected bottleneck (builder style).
    pub fn expect_bottleneck(mut self, area: UarchArea) -> Self {
        self.expected_bottleneck = area;
        self
    }

    /// Sets the instruction mix (builder style).
    pub fn with_mix(mut self, mix: InstrMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the memory behaviour (builder style).
    pub fn with_memory(mut self, memory: MemoryBehavior) -> Self {
        self.memory = memory;
        self
    }

    /// Sets the front-end behaviour (builder style).
    pub fn with_frontend(mut self, frontend: FrontendBehavior) -> Self {
        self.frontend = frontend;
        self
    }

    /// Sets the branch behaviour (builder style).
    pub fn with_branch(mut self, branch: BranchBehavior) -> Self {
        self.branch = branch;
        self
    }

    /// Sets the dependency behaviour (builder style).
    pub fn with_dependency(mut self, dependency: DependencyBehavior) -> Self {
        self.dependency = dependency;
        self
    }

    /// Validates every component of the profile.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProfileError`] found.
    pub fn validate(&self) -> Result<(), ProfileError> {
        self.mix.validate()?;
        self.memory.validate()?;
        self.frontend.validate()?;
        self.branch.validate()?;
        self.dependency.validate()?;
        Ok(())
    }

    /// Creates a deterministic, infinite instruction stream for this
    /// profile.
    ///
    /// The same `(profile, seed)` pair always yields the same stream.
    pub fn stream(&self, seed: u64) -> crate::generator::WorkloadStream {
        crate::generator::WorkloadStream::new(self.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorkloadProfile::named("a", "b").validate().unwrap();
        let p = WorkloadProfile::named("hpc", "kernel")
            .with_mix(InstrMix::vector_fp())
            .with_memory(MemoryBehavior::dram_streaming())
            .with_frontend(FrontendBehavior::large_footprint())
            .with_branch(BranchBehavior::erratic())
            .with_dependency(DependencyBehavior::serial_chain());
        p.validate().unwrap();
    }

    #[test]
    fn negative_mix_fraction_rejected() {
        let mut p = WorkloadProfile::named("a", "b");
        p.mix.load = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn all_zero_mix_rejected() {
        let mut p = WorkloadProfile::named("a", "b");
        p.mix = InstrMix {
            int_alu: 0.0,
            int_mul: 0.0,
            int_div: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            vec128: 0.0,
            vec256: 0.0,
            vec512: 0.0,
            load: 0.0,
            store: 0.0,
            branch: 0.0,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn out_of_range_rates_rejected() {
        let mut p = WorkloadProfile::named("a", "b");
        p.branch.mispredict_rate = 1.5;
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::named("a", "b");
        p.frontend.dsb_coverage = 0.9;
        p.frontend.ms_rate = 0.2;
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::named("a", "b");
        p.dependency.distance_p = 0.0;
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::named("a", "b");
        p.memory.lock_rate = -0.01;
        assert!(p.validate().is_err());
    }

    #[test]
    fn profile_serde_round_trip() {
        let p = WorkloadProfile::named("x", "y").with_mix(InstrMix::vector_fp());
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkloadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn mix_total_sums_fields() {
        let m = InstrMix::scalar_int();
        assert!((m.total() - 1.0).abs() < 1e-9);
    }
}
