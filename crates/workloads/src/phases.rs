//! Phased workloads: programs whose behaviour changes over time.
//!
//! The paper cautions (Section III-A) that a workload's analysis may be
//! inaccurate "if parts of the workload's execution are over- or
//! under-represented" in its samples. Real programs have phases — an
//! initialization loop, a compute kernel, an I/O epilogue — so this
//! module provides [`PhasedWorkload`]: a stream that switches between
//! profiles on an instruction schedule, letting experiments quantify the
//! representation effect (see the `phase_representation` experiment).

use serde::{Deserialize, Serialize};
use spire_sim::Instr;

use crate::generator::WorkloadStream;
use crate::profile::{ProfileError, WorkloadProfile};

/// One phase: a profile and how many instructions it runs for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The behaviour during this phase.
    pub profile: WorkloadProfile,
    /// Phase length in instructions.
    pub instructions: u64,
}

/// A multi-phase workload description.
///
/// ```
/// use spire_workloads::{PhasedWorkload, Phase, WorkloadProfile};
///
/// let phased = PhasedWorkload::new(vec![
///     Phase { profile: WorkloadProfile::named("init", "scalar"), instructions: 1_000 },
///     Phase { profile: WorkloadProfile::named("kernel", "vector"), instructions: 9_000 },
/// ]).expect("valid phases");
/// assert_eq!(phased.total_instructions(), 10_000);
/// let instrs: Vec<_> = phased.stream(1).collect();
/// assert_eq!(instrs.len(), 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// Creates a phased workload.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] if `phases` is empty, any phase has
    /// zero instructions, or any profile fails validation.
    pub fn new(phases: Vec<Phase>) -> Result<Self, ProfileError> {
        if phases.is_empty() {
            return Err(ProfileError {
                field: "phases",
                reason: "at least one phase is required".to_owned(),
            });
        }
        for (i, phase) in phases.iter().enumerate() {
            phase.profile.validate()?;
            if phase.instructions == 0 {
                return Err(ProfileError {
                    field: "phases",
                    reason: format!("phase #{i} has zero instructions"),
                });
            }
        }
        Ok(PhasedWorkload { phases })
    }

    /// The phases, in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total instructions across all phases.
    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions).sum()
    }

    /// A finite, deterministic instruction stream running the phases in
    /// order. Phase `i` is seeded with `seed + i` so phases are
    /// independent but reproducible.
    pub fn stream(&self, seed: u64) -> PhasedStream {
        PhasedStream {
            phases: self.phases.clone(),
            current: None,
            index: 0,
            remaining: 0,
            seed,
        }
    }
}

/// Iterator over a [`PhasedWorkload`]'s instructions.
#[derive(Debug, Clone)]
pub struct PhasedStream {
    phases: Vec<Phase>,
    current: Option<WorkloadStream>,
    index: usize,
    remaining: u64,
    seed: u64,
}

impl Iterator for PhasedStream {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        loop {
            if self.remaining == 0 {
                let phase = self.phases.get(self.index)?;
                self.current = Some(phase.profile.stream(self.seed + self.index as u64));
                self.remaining = phase.instructions;
                self.index += 1;
            }
            if let Some(stream) = &mut self.current {
                self.remaining -= 1;
                return stream.next();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{InstrMix, MemoryBehavior};
    use spire_sim::InstrClass;

    fn loady() -> WorkloadProfile {
        WorkloadProfile::named("loady", "")
            .with_mix(InstrMix {
                load: 0.9,
                int_alu: 0.1,
                branch: 0.0,
                store: 0.0,
                ..InstrMix::scalar_int()
            })
            .with_memory(MemoryBehavior::dram_streaming())
    }

    fn branchy() -> WorkloadProfile {
        WorkloadProfile::named("branchy", "").with_mix(InstrMix {
            branch: 0.9,
            int_alu: 0.1,
            load: 0.0,
            store: 0.0,
            ..InstrMix::scalar_int()
        })
    }

    #[test]
    fn phases_execute_in_order_with_exact_lengths() {
        let phased = PhasedWorkload::new(vec![
            Phase {
                profile: loady(),
                instructions: 500,
            },
            Phase {
                profile: branchy(),
                instructions: 300,
            },
        ])
        .unwrap();
        let instrs: Vec<Instr> = phased.stream(3).collect();
        assert_eq!(instrs.len(), 800);
        let first_loads = instrs[..500]
            .iter()
            .filter(|i| matches!(i.class, InstrClass::Load { .. }))
            .count();
        let tail_branches = instrs[500..].iter().filter(|i| i.is_branch()).count();
        assert!(first_loads > 400, "phase 1 must be load-heavy");
        assert!(tail_branches > 240, "phase 2 must be branch-heavy");
    }

    #[test]
    fn stream_is_deterministic() {
        let phased = PhasedWorkload::new(vec![Phase {
            profile: loady(),
            instructions: 200,
        }])
        .unwrap();
        let a: Vec<Instr> = phased.stream(9).collect();
        let b: Vec<Instr> = phased.stream(9).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_zero_length_phases_are_rejected() {
        assert!(PhasedWorkload::new(vec![]).is_err());
        assert!(PhasedWorkload::new(vec![Phase {
            profile: loady(),
            instructions: 0,
        }])
        .is_err());
    }

    #[test]
    fn total_instructions_sums_phases() {
        let phased = PhasedWorkload::new(vec![
            Phase {
                profile: loady(),
                instructions: 100,
            },
            Phase {
                profile: branchy(),
                instructions: 250,
            },
        ])
        .unwrap();
        assert_eq!(phased.total_instructions(), 350);
    }
}
