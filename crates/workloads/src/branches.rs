//! Predictor-driven branch behaviour: a higher-fidelity alternative to
//! the profile's Bernoulli misprediction rate.
//!
//! [`PredictedBranches`] wraps any instruction stream, synthesizes a
//! static set of branch *sites* with biased or periodic outcome
//! patterns, and asks a real [`BranchPredictor`] model which of those
//! outcomes a front-end would have mispredicted. The mispredict flags in
//! the stream then reflect predictor microarchitecture (table size,
//! history length) instead of a fixed rate — enabling experiments such
//! as "how do SPIRE's BP metrics respond to a smaller predictor?".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spire_sim::predictor::BranchPredictor;
use spire_sim::{Instr, InstrClass};

/// Statistical description of a workload's static branch sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchSiteModel {
    /// Number of distinct static branch sites.
    pub sites: u32,
    /// Taken probability for biased sites.
    pub taken_bias: f64,
    /// Fraction of sites whose outcomes follow a short periodic pattern
    /// (learnable with history) rather than a biased coin.
    pub periodic_fraction: f64,
    /// Period length for periodic sites (2..=16 is realistic loop/data
    /// structure behaviour).
    pub period: usize,
}

impl Default for BranchSiteModel {
    fn default() -> Self {
        BranchSiteModel {
            sites: 64,
            taken_bias: 0.7,
            periodic_fraction: 0.3,
            period: 4,
        }
    }
}

impl BranchSiteModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.sites == 0 {
            return Err("sites must be at least 1".to_owned());
        }
        if !(0.0..=1.0).contains(&self.taken_bias) {
            return Err(format!(
                "taken_bias must be in [0,1], got {}",
                self.taken_bias
            ));
        }
        if !(0.0..=1.0).contains(&self.periodic_fraction) {
            return Err(format!(
                "periodic_fraction must be in [0,1], got {}",
                self.periodic_fraction
            ));
        }
        if !(2..=64).contains(&self.period) {
            return Err(format!("period must be in 2..=64, got {}", self.period));
        }
        Ok(())
    }
}

/// Outcome generator for one branch site.
#[derive(Debug, Clone)]
enum Site {
    /// Coin with the given taken probability.
    Biased(f64),
    /// Fixed repeating pattern with a phase counter.
    Periodic(Vec<bool>, usize),
}

/// Iterator adaptor replacing Bernoulli mispredict flags with
/// predictor-resolved ones.
///
/// ```
/// use spire_sim::predictor::GsharePredictor;
/// use spire_workloads::{BranchSiteModel, PredictedBranches, WorkloadProfile};
///
/// let profile = WorkloadProfile::named("demo", "predicted");
/// let stream = PredictedBranches::new(
///     profile.stream(1),
///     BranchSiteModel::default(),
///     GsharePredictor::new(12, 8),
///     7,
/// );
/// let instrs: Vec<_> = stream.take(1_000).collect();
/// assert_eq!(instrs.len(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct PredictedBranches<I, P> {
    inner: I,
    predictor: P,
    sites: Vec<Site>,
    site_pcs: Vec<u64>,
    rng: SmallRng,
    next_site: usize,
    branches_seen: u64,
    mispredicts: u64,
}

impl<I, P> PredictedBranches<I, P>
where
    I: Iterator<Item = Instr>,
    P: BranchPredictor,
{
    /// Wraps `inner`, replacing branch mispredict flags using
    /// `predictor` over a synthesized set of branch sites.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails validation.
    pub fn new(inner: I, model: BranchSiteModel, predictor: P, seed: u64) -> Self {
        model.validate().expect("branch site model must be valid");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sites = Vec::with_capacity(model.sites as usize);
        let mut site_pcs = Vec::with_capacity(model.sites as usize);
        for s in 0..model.sites {
            let pc = 0x40_0000 + u64::from(s) * 4;
            site_pcs.push(pc);
            if rng.gen_bool(model.periodic_fraction) {
                let pattern: Vec<bool> = (0..model.period).map(|_| rng.gen_bool(0.5)).collect();
                sites.push(Site::Periodic(pattern, rng.gen_range(0..model.period)));
            } else {
                sites.push(Site::Biased(model.taken_bias));
            }
        }
        PredictedBranches {
            inner,
            predictor,
            sites,
            site_pcs,
            rng,
            next_site: 0,
            branches_seen: 0,
            mispredicts: 0,
        }
    }

    /// Branches processed so far.
    pub fn branches_seen(&self) -> u64 {
        self.branches_seen
    }

    /// Mispredictions the predictor produced so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Observed misprediction rate so far (0 when no branches yet).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches_seen == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches_seen as f64
        }
    }
}

impl<I, P> Iterator for PredictedBranches<I, P>
where
    I: Iterator<Item = Instr>,
    P: BranchPredictor,
{
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let mut instr = self.inner.next()?;
        if let InstrClass::Branch { .. } = instr.class {
            // Sites execute cyclically, as the branches of a loop body
            // do: structured interleaving is what lets history-based
            // predictors learn cross-branch correlation.
            let idx = self.next_site;
            self.next_site = (self.next_site + 1) % self.sites.len();
            let pc = self.site_pcs[idx];
            let taken = match &mut self.sites[idx] {
                Site::Biased(p) => self.rng.gen_bool(*p),
                Site::Periodic(pattern, phase) => {
                    let t = pattern[*phase];
                    *phase = (*phase + 1) % pattern.len();
                    t
                }
            };
            let mispredicted = self.predictor.mispredicts(pc, taken);
            instr.class = InstrClass::Branch { mispredicted };
            self.branches_seen += 1;
            self.mispredicts += u64::from(mispredicted);
        }
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use spire_sim::predictor::{BimodalPredictor, GsharePredictor, PerfectPredictor};

    fn rate_with<P: BranchPredictor>(predictor: P, model: BranchSiteModel, n: usize) -> f64 {
        let profile = WorkloadProfile::named("t", "branches");
        let mut s = PredictedBranches::new(profile.stream(5), model, predictor, 9);
        for _ in 0..n {
            s.next();
        }
        s.mispredict_rate()
    }

    #[test]
    fn perfect_predictor_yields_zero_mispredicts() {
        let r = rate_with(PerfectPredictor, BranchSiteModel::default(), 20_000);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn gshare_beats_bimodal_on_periodic_sites() {
        let model = BranchSiteModel {
            sites: 8,
            taken_bias: 0.7,
            periodic_fraction: 1.0,
            period: 4,
        };
        let g = rate_with(GsharePredictor::new(14, 10), model, 40_000);
        let b = rate_with(BimodalPredictor::new(14), model, 40_000);
        assert!(
            g < b * 0.6,
            "gshare {g:.4} should clearly beat bimodal {b:.4} on periodic branches"
        );
    }

    #[test]
    fn smaller_tables_mispredict_more() {
        // All-periodic sites with random patterns: a 16-entry table
        // aliases hundreds of conflicting sites, a 64k-entry table
        // separates them.
        let model = BranchSiteModel {
            sites: 256,
            taken_bias: 0.9,
            periodic_fraction: 1.0,
            period: 8,
        };
        let small = rate_with(GsharePredictor::new(4, 3), model, 80_000);
        let large = rate_with(GsharePredictor::new(16, 12), model, 80_000);
        assert!(
            small > large,
            "4-entry-log table ({small:.4}) should mispredict more than 16 ({large:.4})"
        );
    }

    #[test]
    fn adaptor_only_touches_branches() {
        let profile = WorkloadProfile::named("t", "branches");
        let plain: Vec<Instr> = profile.stream(3).take(500).collect();
        let adapted: Vec<Instr> = PredictedBranches::new(
            profile.stream(3),
            BranchSiteModel::default(),
            PerfectPredictor,
            1,
        )
        .take(500)
        .collect();
        for (a, b) in plain.iter().zip(&adapted) {
            if a.is_branch() {
                assert!(b.is_branch());
            } else {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn adaptor_is_deterministic() {
        let profile = WorkloadProfile::named("t", "branches");
        let run = || -> Vec<Instr> {
            PredictedBranches::new(
                profile.stream(3),
                BranchSiteModel::default(),
                GsharePredictor::new(10, 6),
                11,
            )
            .take(1_000)
            .collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn invalid_models_are_rejected() {
        assert!(BranchSiteModel {
            sites: 0,
            ..BranchSiteModel::default()
        }
        .validate()
        .is_err());
        assert!(BranchSiteModel {
            taken_bias: 1.5,
            ..BranchSiteModel::default()
        }
        .validate()
        .is_err());
        assert!(BranchSiteModel {
            period: 1,
            ..BranchSiteModel::default()
        }
        .validate()
        .is_err());
    }
}
