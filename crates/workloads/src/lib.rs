//! # spire-workloads
//!
//! Synthetic workload profiles and instruction-stream generators for the
//! SPIRE reproduction. These stand in for the paper's 27 Phoronix Test
//! Suite HPC workloads: each profile is a statistical description (mix,
//! cache residency, branch behaviour, decode-path coverage, dependency
//! structure) tuned to exhibit the same dominant bottleneck as its real
//! counterpart, sampled into a deterministic `spire_sim::Instr` stream.
//!
//! * [`WorkloadProfile`] — the statistical description plus builder API.
//! * [`suite`] — the paper's Table I: 23 training + 4 testing workloads.
//! * [`micro`] — single-knob parameter sweeps (the "microbenchmark"
//!   training option the paper mentions).
//!
//! ```
//! use spire_sim::{Core, CoreConfig};
//! use spire_workloads::suite;
//!
//! let profile = suite::by_name("tnn", "SqueezeNet v1.1").unwrap();
//! let mut core = Core::new(CoreConfig::skylake_server());
//! let mut stream = profile.stream(1);
//! let summary = core.run(&mut stream, 50_000);
//! assert!(summary.instructions > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod branches;
mod generator;
pub mod micro;
mod phases;
mod profile;
pub mod suite;

pub use branches::{BranchSiteModel, PredictedBranches};
pub use generator::WorkloadStream;
pub use phases::{Phase, PhasedStream, PhasedWorkload};
pub use profile::{
    BranchBehavior, DependencyBehavior, FrontendBehavior, InstrMix, MemoryBehavior, ProfileError,
    WorkloadProfile,
};
