//! Deterministic instruction-stream generation from a
//! [`WorkloadProfile`].

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_sim::{DecodeSource, Instr, InstrClass, MemLevel, VecWidth};

use crate::profile::WorkloadProfile;

/// An infinite, deterministic instruction stream sampled from a profile.
///
/// The stream implements [`Iterator`]; cap it with [`Iterator::take`] or
/// let the simulator's cycle budget bound the run.
///
/// ```
/// use spire_workloads::WorkloadProfile;
///
/// let p = WorkloadProfile::named("demo", "cfg");
/// let a: Vec<_> = p.stream(7).take(100).collect();
/// let b: Vec<_> = p.stream(7).take(100).collect();
/// assert_eq!(a, b); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    profile: WorkloadProfile,
    rng: SmallRng,
    class_dist: WeightedIndex<f64>,
    level_dist: WeightedIndex<f64>,
    produced: u64,
}

/// Instruction classes in the order matching
/// [`crate::profile::InstrMix`]'s fields.
const CLASS_TABLE: [fn(&mut SmallRng, &WorkloadProfile) -> InstrClass; 12] = [
    |_, _| InstrClass::IntAlu,
    |_, _| InstrClass::IntMul,
    |_, _| InstrClass::IntDiv,
    |_, _| InstrClass::FpAdd,
    |_, _| InstrClass::FpMul,
    |_, _| InstrClass::FpDiv,
    |_, _| InstrClass::Vec(VecWidth::W128),
    |_, _| InstrClass::Vec(VecWidth::W256),
    |_, _| InstrClass::Vec(VecWidth::W512),
    |rng, p| InstrClass::Load {
        level: MemLevel::L1, // replaced below using level_dist
        locked: rng.gen_bool(p.memory.lock_rate),
    },
    |_, _| InstrClass::Store,
    |rng, p| InstrClass::Branch {
        mispredicted: rng.gen_bool(p.branch.mispredict_rate),
    },
];

impl WorkloadStream {
    /// Creates a stream for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation; validate profiles at
    /// construction time.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        profile
            .validate()
            .expect("workload profile must be valid before streaming");
        let mix = &profile.mix;
        let class_dist = WeightedIndex::new([
            mix.int_alu,
            mix.int_mul,
            mix.int_div,
            mix.fp_add,
            mix.fp_mul,
            mix.fp_div,
            mix.vec128,
            mix.vec256,
            mix.vec512,
            mix.load,
            mix.store,
            mix.branch,
        ])
        .expect("validated mix has positive total");
        let level_dist = WeightedIndex::new(profile.memory.level_weights)
            .expect("validated weights have positive total");
        WorkloadStream {
            profile,
            rng: SmallRng::seed_from_u64(seed),
            class_dist,
            level_dist,
            produced: 0,
        }
    }

    /// The profile this stream was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of instructions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    fn sample_level(&mut self) -> MemLevel {
        match self.level_dist.sample(&mut self.rng) {
            0 => MemLevel::L1,
            1 => MemLevel::L2,
            2 => MemLevel::L3,
            _ => MemLevel::Dram,
        }
    }

    fn sample_dep_distance(&mut self) -> u32 {
        let d = &self.profile.dependency;
        if !self.rng.gen_bool(d.dep_rate) {
            return 0;
        }
        // Geometric distance: number of failures before a success with
        // probability `distance_p`, shifted to start at 1.
        let mut dist = 1u32;
        while dist < d.max_distance && !self.rng.gen_bool(d.distance_p) {
            dist += 1;
        }
        // Dependencies cannot reach before the start of the stream.
        dist.min(self.produced.min(u64::from(u32::MAX)) as u32)
    }

    fn sample_decode(&mut self, class: InstrClass) -> DecodeSource {
        let fe = &self.profile.frontend;
        // Divides and locked operations are microcoded more often; model
        // that by doubling their MS probability (capped).
        let ms_rate = match class {
            InstrClass::IntDiv | InstrClass::FpDiv => (fe.ms_rate * 2.0).min(1.0),
            _ => fe.ms_rate,
        };
        let r: f64 = self.rng.gen();
        if r < ms_rate {
            DecodeSource::Ms
        } else if r < ms_rate + fe.dsb_coverage * (1.0 - ms_rate) {
            DecodeSource::Dsb
        } else {
            DecodeSource::Mite
        }
    }
}

impl Iterator for WorkloadStream {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let idx = self.class_dist.sample(&mut self.rng);
        let mut class = CLASS_TABLE[idx](&mut self.rng, &self.profile);
        if let InstrClass::Load { locked, .. } = class {
            class = InstrClass::Load {
                level: self.sample_level(),
                locked,
            };
        }
        let decode = self.sample_decode(class);
        let uops = match decode {
            // Microcoded instructions expand into several µops.
            DecodeSource::Ms => 4,
            _ => {
                if self.rng.gen_bool(self.profile.frontend.two_uop_rate) {
                    2
                } else {
                    1
                }
            }
        };
        let instr = Instr {
            class,
            uops,
            decode,
            dep_distance: self.sample_dep_distance(),
            icache_miss: self.rng.gen_bool(self.profile.frontend.icache_miss_rate),
        };
        self.produced += 1;
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BranchBehavior, FrontendBehavior, InstrMix, MemoryBehavior};

    fn count_classes(profile: &WorkloadProfile, n: usize) -> (usize, usize, usize) {
        let mut loads = 0;
        let mut branches = 0;
        let mut mispredicts = 0;
        for i in profile.stream(1).take(n) {
            if i.is_load() {
                loads += 1;
            }
            if let InstrClass::Branch { mispredicted } = i.class {
                branches += 1;
                if mispredicted {
                    mispredicts += 1;
                }
            }
        }
        (loads, branches, mispredicts)
    }

    #[test]
    fn same_seed_same_stream() {
        let p = WorkloadProfile::named("a", "b");
        let x: Vec<Instr> = p.stream(99).take(500).collect();
        let y: Vec<Instr> = p.stream(99).take(500).collect();
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let p = WorkloadProfile::named("a", "b");
        let x: Vec<Instr> = p.stream(1).take(500).collect();
        let y: Vec<Instr> = p.stream(2).take(500).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn class_frequencies_track_the_mix() {
        let p = WorkloadProfile::named("a", "b").with_mix(InstrMix::scalar_int());
        let n = 50_000;
        let (loads, branches, _) = count_classes(&p, n);
        // scalar_int: 25% loads, 17% branches.
        assert!((loads as f64 / n as f64 - 0.25).abs() < 0.02);
        assert!((branches as f64 / n as f64 - 0.17).abs() < 0.02);
    }

    #[test]
    fn mispredict_rate_is_respected() {
        let p = WorkloadProfile::named("a", "b").with_branch(BranchBehavior {
            mispredict_rate: 0.25,
        });
        let (_, branches, mispredicts) = count_classes(&p, 50_000);
        let rate = mispredicts as f64 / branches as f64;
        assert!((rate - 0.25).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn level_weights_are_respected() {
        let p = WorkloadProfile::named("a", "b").with_memory(MemoryBehavior {
            level_weights: [0.0, 0.0, 0.0, 1.0],
            lock_rate: 0.0,
        });
        for i in p.stream(3).take(1_000) {
            if let InstrClass::Load { level, .. } = i.class {
                assert_eq!(level, MemLevel::Dram);
            }
        }
    }

    #[test]
    fn dsb_coverage_controls_decode_sources() {
        let p = WorkloadProfile::named("a", "b").with_frontend(FrontendBehavior {
            dsb_coverage: 1.0,
            ms_rate: 0.0,
            icache_miss_rate: 0.0,
            two_uop_rate: 0.0,
        });
        for i in p.stream(4).take(1_000) {
            assert_eq!(i.decode, DecodeSource::Dsb);
            assert_eq!(i.uops, 1);
        }
    }

    #[test]
    fn dependencies_never_precede_stream_start() {
        let p = WorkloadProfile::named("a", "b")
            .with_dependency(crate::profile::DependencyBehavior::serial_chain());
        for (n, i) in p.stream(5).take(100).enumerate() {
            assert!(u64::from(i.dep_distance) <= n as u64);
        }
    }

    #[test]
    fn ms_instructions_are_multi_uop() {
        let p = WorkloadProfile::named("a", "b").with_frontend(FrontendBehavior {
            dsb_coverage: 0.0,
            ms_rate: 1.0,
            icache_miss_rate: 0.0,
            two_uop_rate: 0.0,
        });
        for i in p.stream(6).take(200) {
            assert_eq!(i.decode, DecodeSource::Ms);
            assert_eq!(i.uops, 4);
        }
    }

    #[test]
    fn produced_counts_instructions() {
        let p = WorkloadProfile::named("a", "b");
        let mut s = p.stream(7);
        for _ in 0..42 {
            s.next();
        }
        assert_eq!(s.produced(), 42);
    }
}
