//! The 27-workload evaluation suite mirroring the paper's Table I.
//!
//! The paper draws 23 training workloads and 4 testing workloads from the
//! Phoronix Test Suite HPC collection, chosen "because they exhibit a
//! variety of bottlenecks". We cannot run those binaries, so each entry
//! here is a [`WorkloadProfile`] tuned to exhibit the same dominant TMA
//! bottleneck as the real workload (the paper's Table I color coding),
//! with parameter variety across entries so that training covers a wide
//! intensity range per metric — the property SPIRE's rooflines need.
//!
//! The four testing workloads match the paper exactly: *TNN* (front-end
//! bound via poor DSB coverage), *scikit-learn Sparsify* (bad speculation
//! via erratic branches), *ONNX T5 Encoder* (memory bound via DRAM
//! streaming with mixed vector widths), and *Parboil CUTCP* (core bound
//! via divider pressure, locked loads and serial chains).

use spire_core::catalog::UarchArea;

use crate::profile::{
    BranchBehavior, DependencyBehavior, FrontendBehavior, InstrMix, MemoryBehavior, WorkloadProfile,
};

fn mix(
    int_alu: f64,
    fp: f64,
    vec256: f64,
    vec512: f64,
    load: f64,
    store: f64,
    branch: f64,
) -> InstrMix {
    InstrMix {
        int_alu,
        int_mul: 0.02,
        int_div: 0.0,
        fp_add: fp / 2.0,
        fp_mul: fp / 2.0,
        fp_div: 0.0,
        vec128: 0.0,
        vec256,
        vec512,
        load,
        store,
        branch,
    }
}

fn memory(l1: f64, l2: f64, l3: f64, dram: f64) -> MemoryBehavior {
    MemoryBehavior {
        level_weights: [l1, l2, l3, dram],
        lock_rate: 0.0,
    }
}

fn frontend(dsb: f64, ms: f64, icache: f64) -> FrontendBehavior {
    FrontendBehavior {
        dsb_coverage: dsb,
        ms_rate: ms,
        icache_miss_rate: icache,
        two_uop_rate: 0.08,
    }
}

fn branches(misp: f64) -> BranchBehavior {
    BranchBehavior {
        mispredict_rate: misp,
    }
}

fn deps(rate: f64, p: f64, max: u32) -> DependencyBehavior {
    DependencyBehavior {
        dep_rate: rate,
        distance_p: p,
        max_distance: max,
    }
}

#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    config: &str,
    area: UarchArea,
    mix: InstrMix,
    mem: MemoryBehavior,
    fe: FrontendBehavior,
    br: BranchBehavior,
    dep: DependencyBehavior,
) -> WorkloadProfile {
    WorkloadProfile::named(name, config)
        .expect_bottleneck(area)
        .with_mix(mix)
        .with_memory(mem)
        .with_frontend(fe)
        .with_branch(br)
        .with_dependency(dep)
}

/// The 23 training workloads (paper Table I, top section).
pub fn training() -> Vec<WorkloadProfile> {
    use UarchArea::*;
    vec![
        profile(
            "numenta-nab",
            "Relative Entropy",
            BadSpeculation,
            mix(0.42, 0.08, 0.0, 0.0, 0.24, 0.08, 0.18),
            memory(0.95, 0.035, 0.01, 0.005),
            frontend(0.92, 0.002, 0.0003),
            branches(0.05),
            deps(0.4, 0.2, 32),
        ),
        profile(
            "parboil",
            "Stencil",
            Memory,
            mix(0.2, 0.1, 0.18, 0.0, 0.32, 0.12, 0.06),
            memory(0.62, 0.16, 0.1, 0.12),
            frontend(0.92, 0.001, 0.0002),
            branches(0.004),
            deps(0.3, 0.1, 48),
        ),
        profile(
            "qmcpack",
            "O_ae_pyscf_UHF",
            Core,
            {
                let mut m = mix(0.18, 0.3, 0.14, 0.0, 0.24, 0.06, 0.06);
                m.fp_div = 0.02;
                m
            },
            memory(0.975, 0.017, 0.005, 0.003),
            frontend(0.92, 0.004, 0.0003),
            branches(0.008),
            deps(0.85, 0.6, 8),
        ),
        profile(
            "onednn",
            "IP Shapes 3D",
            Core,
            mix(0.12, 0.08, 0.3, 0.12, 0.26, 0.08, 0.04),
            memory(0.99, 0.007, 0.002, 0.001),
            frontend(0.9, 0.002, 0.0003),
            branches(0.005),
            deps(0.8, 0.5, 8),
        ),
        profile(
            "remhos",
            "Sample Remap",
            Memory,
            mix(0.22, 0.16, 0.08, 0.0, 0.32, 0.12, 0.1),
            memory(0.58, 0.18, 0.12, 0.12),
            frontend(0.8, 0.003, 0.001),
            branches(0.012),
            deps(0.35, 0.15, 40),
        ),
        profile(
            "llamafile",
            "wizardcoder-python",
            Memory,
            mix(0.1, 0.06, 0.28, 0.06, 0.36, 0.08, 0.06),
            memory(0.5, 0.14, 0.12, 0.24),
            frontend(0.88, 0.002, 0.0004),
            branches(0.006),
            deps(0.3, 0.08, 64),
        ),
        profile(
            "scikit-learn",
            "SGDOneClassSVM",
            BadSpeculation,
            mix(0.4, 0.12, 0.04, 0.0, 0.24, 0.06, 0.14),
            memory(0.96, 0.025, 0.01, 0.005),
            frontend(0.9, 0.003, 0.0004),
            branches(0.06),
            deps(0.45, 0.25, 24),
        ),
        profile(
            "heffte",
            "r2c, FFTW, F64, 256",
            Memory,
            mix(0.14, 0.12, 0.3, 0.0, 0.3, 0.1, 0.04),
            memory(0.55, 0.2, 0.13, 0.12),
            frontend(0.93, 0.001, 0.0002),
            branches(0.003),
            deps(0.4, 0.12, 48),
        ),
        profile(
            "mafft",
            "",
            FrontEnd,
            mix(0.44, 0.04, 0.0, 0.0, 0.26, 0.08, 0.18),
            memory(0.92, 0.05, 0.02, 0.01),
            frontend(0.25, 0.01, 0.006),
            branches(0.02),
            deps(0.4, 0.2, 32),
        ),
        profile(
            "scikit-learn",
            "Feature Expansions",
            Memory,
            mix(0.2, 0.1, 0.14, 0.0, 0.36, 0.14, 0.06),
            memory(0.52, 0.16, 0.14, 0.18),
            frontend(0.85, 0.002, 0.0006),
            branches(0.008),
            deps(0.3, 0.1, 56),
        ),
        profile(
            "lammps",
            "Model: 20k Atoms",
            Core,
            {
                let mut m = mix(0.18, 0.28, 0.16, 0.0, 0.26, 0.06, 0.06);
                m.fp_div = 0.015;
                m
            },
            memory(0.99, 0.007, 0.002, 0.001),
            frontend(0.92, 0.003, 0.0003),
            branches(0.006),
            deps(0.85, 0.6, 8),
        ),
        profile(
            "npb",
            "BT.C",
            Memory,
            mix(0.16, 0.2, 0.2, 0.0, 0.3, 0.1, 0.04),
            memory(0.6, 0.18, 0.12, 0.1),
            frontend(0.9, 0.001, 0.0003),
            branches(0.004),
            deps(0.35, 0.12, 48),
        ),
        profile(
            "graph500",
            "Scale: 29",
            Memory,
            mix(0.4, 0.02, 0.0, 0.0, 0.34, 0.06, 0.18),
            memory(0.42, 0.14, 0.14, 0.3),
            frontend(0.82, 0.002, 0.0008),
            branches(0.025),
            deps(0.5, 0.3, 16),
        ),
        profile(
            "faiss",
            "demo_sift1M",
            Memory,
            mix(0.16, 0.08, 0.26, 0.0, 0.34, 0.08, 0.08),
            memory(0.48, 0.18, 0.16, 0.18),
            frontend(0.9, 0.001, 0.0003),
            branches(0.01),
            deps(0.3, 0.1, 56),
        ),
        profile(
            "faiss",
            "polysemous_sift1m",
            Core,
            mix(0.34, 0.1, 0.16, 0.0, 0.26, 0.06, 0.08),
            memory(0.99, 0.007, 0.002, 0.001),
            frontend(0.92, 0.003, 0.0003),
            branches(0.015),
            deps(0.85, 0.55, 8),
        ),
        profile(
            "parboil",
            "MRI Gridding",
            Core,
            {
                let mut m = mix(0.22, 0.26, 0.12, 0.0, 0.26, 0.08, 0.06);
                m.fp_div = 0.025;
                m
            },
            memory(0.97, 0.02, 0.007, 0.003),
            frontend(0.92, 0.004, 0.0003),
            branches(0.007),
            deps(0.82, 0.55, 8),
        ),
        profile(
            "openvino",
            "Age Gen. Recog. F16",
            FrontEnd,
            mix(0.3, 0.08, 0.16, 0.0, 0.28, 0.08, 0.1),
            memory(0.9, 0.06, 0.025, 0.015),
            frontend(0.2, 0.012, 0.008),
            branches(0.012),
            deps(0.4, 0.2, 32),
        ),
        profile(
            "tensorflow-lite",
            "Mobilenet Quant",
            Core,
            mix(0.3, 0.06, 0.26, 0.0, 0.26, 0.06, 0.06),
            memory(0.99, 0.007, 0.002, 0.001),
            frontend(0.92, 0.002, 0.0003),
            branches(0.006),
            deps(0.85, 0.6, 8),
        ),
        profile(
            "openvino",
            "Face Detect. F16-I8",
            FrontEnd,
            mix(0.28, 0.08, 0.18, 0.0, 0.28, 0.08, 0.1),
            memory(0.9, 0.06, 0.025, 0.015),
            frontend(0.15, 0.015, 0.01),
            branches(0.015),
            deps(0.4, 0.2, 32),
        ),
        profile(
            "arrayfire",
            "BLAS CPU",
            Core,
            mix(0.1, 0.08, 0.2, 0.26, 0.26, 0.06, 0.04),
            memory(0.992, 0.005, 0.002, 0.001),
            frontend(0.93, 0.001, 0.0002),
            branches(0.003),
            deps(0.8, 0.5, 8),
        ),
        profile(
            "scikit-learn",
            "Random Projections",
            Memory,
            mix(0.18, 0.1, 0.18, 0.0, 0.34, 0.12, 0.08),
            memory(0.5, 0.15, 0.15, 0.2),
            frontend(0.86, 0.002, 0.0005),
            branches(0.009),
            deps(0.32, 0.1, 48),
        ),
        profile(
            "rodinia",
            "CFD Solver",
            Memory,
            mix(0.16, 0.18, 0.2, 0.0, 0.32, 0.1, 0.04),
            memory(0.56, 0.17, 0.13, 0.14),
            frontend(0.9, 0.001, 0.0003),
            branches(0.005),
            deps(0.35, 0.12, 48),
        ),
        profile(
            "fftw",
            "Stock, 1D FFT, 4096",
            Core,
            mix(0.14, 0.2, 0.28, 0.0, 0.26, 0.08, 0.04),
            memory(0.985, 0.01, 0.003, 0.002),
            frontend(0.92, 0.001, 0.0002),
            branches(0.003),
            deps(0.9, 0.7, 6),
        ),
    ]
}

/// The 4 testing workloads (paper Table I, bottom section): the strongest
/// examples of their respective TMA bottlenecks.
pub fn testing() -> Vec<WorkloadProfile> {
    use UarchArea::*;
    vec![
        // TNN / SqueezeNet: VTune attributed its front-end boundedness to
        // heavy legacy-decode use (DSB delivered only 5.4% of µops).
        profile(
            "tnn",
            "SqueezeNet v1.1",
            FrontEnd,
            mix(0.3, 0.08, 0.18, 0.0, 0.26, 0.08, 0.1),
            memory(0.92, 0.05, 0.02, 0.01),
            frontend(0.054, 0.01, 0.012),
            branches(0.01),
            deps(0.4, 0.2, 32),
        ),
        // scikit-learn Sparsify: branch-misprediction bound with divider
        // pressure and poor port utilization.
        profile(
            "scikit-learn",
            "Sparsify",
            BadSpeculation,
            {
                let mut m = mix(0.42, 0.1, 0.02, 0.0, 0.24, 0.06, 0.16);
                m.int_div = 0.01;
                m
            },
            memory(0.96, 0.025, 0.01, 0.005),
            frontend(0.9, 0.003, 0.0004),
            branches(0.09),
            deps(0.55, 0.35, 16),
        ),
        // ONNX T5 Encoder: DRAM-bound with mixed 256/512-bit SIMD widths.
        profile(
            "onnx",
            "T5 Encoder, Std.",
            Memory,
            mix(0.08, 0.04, 0.2, 0.14, 0.38, 0.1, 0.06),
            memory(0.4, 0.12, 0.12, 0.36),
            frontend(0.9, 0.001, 0.0003),
            branches(0.005),
            deps(0.3, 0.08, 64),
        ),
        // Parboil CUTCP: core-bound via poor port utilization, with lock
        // latency behind its memory-bound share.
        profile(
            "parboil",
            "CUTCP",
            Core,
            {
                let mut m = mix(0.2, 0.3, 0.1, 0.0, 0.26, 0.06, 0.06);
                m.fp_div = 0.03;
                m.int_div = 0.005;
                m
            },
            {
                let mut mb = memory(0.97, 0.02, 0.007, 0.003);
                mb.lock_rate = 0.02;
                mb
            },
            frontend(0.92, 0.006, 0.0004),
            branches(0.008),
            deps(0.88, 0.6, 6),
        ),
    ]
}

/// All 27 workloads: training followed by testing.
pub fn all() -> Vec<WorkloadProfile> {
    let mut v = training();
    v.extend(testing());
    v
}

/// Finds a workload by `(name, config)` pair; names alone are ambiguous
/// (e.g. three scikit-learn entries).
pub fn by_name(name: &str, config: &str) -> Option<WorkloadProfile> {
    all()
        .into_iter()
        .find(|p| p.name == name && p.config == config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(training().len(), 23);
        assert_eq!(testing().len(), 4);
        assert_eq!(all().len(), 27);
    }

    #[test]
    fn every_profile_validates() {
        for p in all() {
            p.validate()
                .unwrap_or_else(|e| panic!("{} ({}): {e}", p.name, p.config));
        }
    }

    #[test]
    fn testing_bottlenecks_match_table_i() {
        let t = testing();
        assert_eq!(t[0].name, "tnn");
        assert_eq!(t[0].expected_bottleneck, UarchArea::FrontEnd);
        assert_eq!(t[1].config, "Sparsify");
        assert_eq!(t[1].expected_bottleneck, UarchArea::BadSpeculation);
        assert_eq!(t[2].name, "onnx");
        assert_eq!(t[2].expected_bottleneck, UarchArea::Memory);
        assert_eq!(t[3].config, "CUTCP");
        assert_eq!(t[3].expected_bottleneck, UarchArea::Core);
    }

    #[test]
    fn training_covers_every_bottleneck_area() {
        let areas: std::collections::BTreeSet<_> =
            training().iter().map(|p| p.expected_bottleneck).collect();
        assert_eq!(areas.len(), 4, "training must span all four areas");
    }

    #[test]
    fn name_config_pairs_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for p in all() {
            assert!(
                seen.insert((p.name.clone(), p.config.clone())),
                "duplicate workload {} ({})",
                p.name,
                p.config
            );
        }
    }

    #[test]
    fn by_name_disambiguates_with_config() {
        let p = by_name("scikit-learn", "Sparsify").unwrap();
        assert_eq!(p.expected_bottleneck, UarchArea::BadSpeculation);
        assert!(by_name("scikit-learn", "nonexistent").is_none());
    }

    #[test]
    fn tnn_has_the_papers_dsb_coverage() {
        let p = by_name("tnn", "SqueezeNet v1.1").unwrap();
        assert!((p.frontend.dsb_coverage - 0.054).abs() < 1e-12);
    }
}
