//! Targeted microbenchmarks: parameter sweeps that exercise one
//! microarchitectural mechanism at a time.
//!
//! The paper notes that ideal SPIRE training data comes from "optimized
//! workloads specifically designed to exercise each metric (e.g.,
//! microbenchmarks)". These sweeps provide that option: each returns a
//! family of profiles that varies a single knob over a wide range, giving
//! a roofline dense coverage of one metric's intensity axis. They also
//! power the training-set-size ablation.

use spire_core::catalog::UarchArea;

use crate::profile::{
    BranchBehavior, DependencyBehavior, FrontendBehavior, MemoryBehavior, WorkloadProfile,
};

/// Interpolates `lo..=hi` geometrically over `steps` points.
fn geom_steps(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "a sweep needs at least two points");
    assert!(lo > 0.0 && hi > lo, "sweep bounds must be 0 < lo < hi");
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Sweeps the branch-misprediction rate (exercises `BP.*` metrics).
pub fn mispredict_sweep(steps: usize) -> Vec<WorkloadProfile> {
    geom_steps(1e-4, 0.2, steps)
        .into_iter()
        .enumerate()
        .map(|(i, rate)| {
            WorkloadProfile::named("micro-mispredict", format!("rate={rate:.5} #{i}"))
                .expect_bottleneck(UarchArea::BadSpeculation)
                .with_branch(BranchBehavior {
                    mispredict_rate: rate,
                })
        })
        .collect()
}

/// Sweeps the DRAM-resident fraction of loads (exercises `L3`, `M`,
/// `L1.*` metrics).
pub fn dram_sweep(steps: usize) -> Vec<WorkloadProfile> {
    geom_steps(1e-3, 0.8, steps)
        .into_iter()
        .enumerate()
        .map(|(i, dram)| {
            WorkloadProfile::named("micro-dram", format!("dram={dram:.4} #{i}"))
                .expect_bottleneck(UarchArea::Memory)
                .with_memory(MemoryBehavior {
                    level_weights: [1.0 - dram, 0.05_f64.min(1.0 - dram), 0.0, dram],
                    lock_rate: 0.0,
                })
        })
        .collect()
}

/// Sweeps DSB coverage downward (exercises `DB.*` and `DQ.*` metrics).
pub fn dsb_sweep(steps: usize) -> Vec<WorkloadProfile> {
    geom_steps(0.02, 0.98, steps)
        .into_iter()
        .enumerate()
        .map(|(i, dsb)| {
            WorkloadProfile::named("micro-dsb", format!("dsb={dsb:.3} #{i}"))
                .expect_bottleneck(UarchArea::FrontEnd)
                .with_frontend(FrontendBehavior {
                    dsb_coverage: dsb,
                    ms_rate: 0.001,
                    icache_miss_rate: 0.0005,
                    two_uop_rate: 0.05,
                })
        })
        .collect()
}

/// Sweeps dependency-chain tightness (exercises `CS.*` and `C1.*`
/// metrics).
pub fn dependency_sweep(steps: usize) -> Vec<WorkloadProfile> {
    geom_steps(0.02, 0.95, steps)
        .into_iter()
        .enumerate()
        .map(|(i, rate)| {
            WorkloadProfile::named("micro-deps", format!("dep_rate={rate:.3} #{i}"))
                .expect_bottleneck(UarchArea::Core)
                .with_dependency(DependencyBehavior {
                    dep_rate: rate,
                    distance_p: 0.5,
                    max_distance: 16,
                })
        })
        .collect()
}

/// The union of all sweeps: a microbenchmark training corpus.
pub fn full_corpus(steps_per_sweep: usize) -> Vec<WorkloadProfile> {
    let mut v = mispredict_sweep(steps_per_sweep);
    v.extend(dram_sweep(steps_per_sweep));
    v.extend(dsb_sweep(steps_per_sweep));
    v.extend(dependency_sweep(steps_per_sweep));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_requested_sizes_and_validate() {
        for sweep in [
            mispredict_sweep(8),
            dram_sweep(8),
            dsb_sweep(8),
            dependency_sweep(8),
        ] {
            assert_eq!(sweep.len(), 8);
            for p in &sweep {
                p.validate().unwrap();
            }
        }
        assert_eq!(full_corpus(5).len(), 20);
    }

    #[test]
    fn mispredict_sweep_is_monotone() {
        let s = mispredict_sweep(6);
        for w in s.windows(2) {
            assert!(w[1].branch.mispredict_rate > w[0].branch.mispredict_rate);
        }
    }

    #[test]
    fn dram_sweep_weights_stay_valid() {
        for p in dram_sweep(10) {
            let sum: f64 = p.memory.level_weights.iter().sum();
            assert!(sum > 0.0);
            assert!(p.memory.level_weights.iter().all(|w| *w >= 0.0));
        }
    }

    #[test]
    fn geom_steps_hits_both_ends() {
        let v = geom_steps(0.1, 10.0, 5);
        assert!((v[0] - 0.1).abs() < 1e-12);
        assert!((v[4] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_step_sweep_panics() {
        geom_steps(0.1, 1.0, 1);
    }
}
