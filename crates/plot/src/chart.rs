//! Chart model: series of points with axis configuration, independent of
//! the output backend.

use serde::{Deserialize, Serialize};

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesKind {
    /// Connected line segments (for fitted rooflines).
    Lines,
    /// Individual markers (for samples).
    Points,
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Linear mapping.
    Linear,
    /// Base-10 logarithmic mapping (positive values only; non-positive
    /// points are dropped at render time).
    Log10,
}

impl Scale {
    /// Maps a data value into scale space.
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Scale::Linear => v,
            Scale::Log10 => v.log10(),
        }
    }

    /// Returns `true` if `v` is representable on this scale.
    pub fn admits(self, v: f64) -> bool {
        match self {
            Scale::Linear => v.is_finite(),
            Scale::Log10 => v.is_finite() && v > 0.0,
        }
    }
}

/// One named series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Drawing style.
    pub kind: SeriesKind,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
}

/// A 2-D chart: axes plus series.
///
/// ```
/// use spire_plot::{Chart, Scale, SeriesKind};
///
/// let chart = Chart::new("demo", "x", "y")
///     .with_x_scale(Scale::Log10)
///     .with_series("data", SeriesKind::Points, vec![(1.0, 2.0), (10.0, 4.0)]);
/// let svg = chart.to_svg(400, 300);
/// assert!(svg.contains("<svg"));
/// assert!(svg.contains("demo"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series, drawn in order.
    pub series: Vec<Series>,
}

impl Chart {
    /// Creates an empty linear-scale chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Sets the x-axis scale (builder style).
    pub fn with_x_scale(mut self, scale: Scale) -> Self {
        self.x_scale = scale;
        self
    }

    /// Sets the y-axis scale (builder style).
    pub fn with_y_scale(mut self, scale: Scale) -> Self {
        self.y_scale = scale;
        self
    }

    /// Adds a series (builder style).
    pub fn with_series(
        mut self,
        label: impl Into<String>,
        kind: SeriesKind,
        points: Vec<(f64, f64)>,
    ) -> Self {
        self.series.push(Series {
            label: label.into(),
            kind,
            points,
        });
        self
    }

    /// All points admissible under the current scales, in scale space.
    fn scaled_points(&self) -> Vec<Vec<(f64, f64)>> {
        self.series
            .iter()
            .map(|s| {
                s.points
                    .iter()
                    .filter(|(x, y)| self.x_scale.admits(*x) && self.y_scale.admits(*y))
                    .map(|&(x, y)| (self.x_scale.apply(x), self.y_scale.apply(y)))
                    .collect()
            })
            .collect()
    }

    /// Data bounds in scale space: `(x_min, x_max, y_min, y_max)`.
    fn bounds(scaled: &[Vec<(f64, f64)>]) -> Option<(f64, f64, f64, f64)> {
        let mut b: Option<(f64, f64, f64, f64)> = None;
        for series in scaled {
            for &(x, y) in series {
                b = Some(match b {
                    None => (x, x, y, y),
                    Some((x0, x1, y0, y1)) => (x0.min(x), x1.max(x), y0.min(y), y1.max(y)),
                });
            }
        }
        b.map(|(x0, x1, y0, y1)| {
            // Avoid zero-size ranges.
            let (x0, x1) = if x0 == x1 {
                (x0 - 0.5, x1 + 0.5)
            } else {
                (x0, x1)
            };
            let (y0, y1) = if y0 == y1 {
                (y0 - 0.5, y1 + 0.5)
            } else {
                (y0, y1)
            };
            (x0, x1, y0, y1)
        })
    }

    /// Renders the chart to an SVG string.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        const MARGIN: f64 = 48.0;
        const PALETTE: [&str; 6] = [
            "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
        ];
        let w = f64::from(width);
        let h = f64::from(height);
        let scaled = self.scaled_points();
        let mut svg = String::new();
        svg.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             viewBox=\"0 0 {width} {height}\">\n"
        ));
        svg.push_str(&format!(
            "<rect width=\"{width}\" height=\"{height}\" fill=\"white\"/>\n"
        ));
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\" \
             font-family=\"sans-serif\">{}</text>\n",
            w / 2.0,
            xml_escape(&self.title)
        ));

        if let Some((x0, x1, y0, y1)) = Self::bounds(&scaled) {
            let px = |x: f64| MARGIN + (x - x0) / (x1 - x0) * (w - 2.0 * MARGIN);
            let py = |y: f64| h - MARGIN - (y - y0) / (y1 - y0) * (h - 2.0 * MARGIN);

            // Axes.
            svg.push_str(&format!(
                "<line x1=\"{m}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"black\"/>\n\
                 <line x1=\"{m}\" y1=\"{t}\" x2=\"{m}\" y2=\"{b}\" stroke=\"black\"/>\n",
                m = MARGIN,
                r = w - MARGIN,
                t = MARGIN,
                b = h - MARGIN
            ));
            // Axis labels (annotated with the scale).
            let scale_tag = |s: Scale| match s {
                Scale::Linear => "",
                Scale::Log10 => " (log10)",
            };
            svg.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\" \
                 font-family=\"sans-serif\">{}{}</text>\n",
                w / 2.0,
                h - 10.0,
                xml_escape(&self.x_label),
                scale_tag(self.x_scale)
            ));
            svg.push_str(&format!(
                "<text x=\"14\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\" \
                 font-family=\"sans-serif\" transform=\"rotate(-90 14 {})\">{}{}</text>\n",
                h / 2.0,
                h / 2.0,
                xml_escape(&self.y_label),
                scale_tag(self.y_scale)
            ));
            // End-point tick labels.
            svg.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" font-size=\"10\" font-family=\"sans-serif\">{}</text>\n",
                MARGIN,
                h - MARGIN + 14.0,
                fmt_tick(unscale(self.x_scale, x0))
            ));
            svg.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\" \
                 font-family=\"sans-serif\">{}</text>\n",
                w - MARGIN,
                h - MARGIN + 14.0,
                fmt_tick(unscale(self.x_scale, x1))
            ));
            svg.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\" \
                 font-family=\"sans-serif\">{}</text>\n",
                MARGIN - 4.0,
                h - MARGIN,
                fmt_tick(unscale(self.y_scale, y0))
            ));
            svg.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\" \
                 font-family=\"sans-serif\">{}</text>\n",
                MARGIN - 4.0,
                MARGIN + 4.0,
                fmt_tick(unscale(self.y_scale, y1))
            ));

            // Series.
            for (si, pts) in scaled.iter().enumerate() {
                let color = PALETTE[si % PALETTE.len()];
                match self.series[si].kind {
                    SeriesKind::Lines => {
                        if pts.len() >= 2 {
                            let path: Vec<String> = pts
                                .iter()
                                .enumerate()
                                .map(|(i, &(x, y))| {
                                    format!(
                                        "{}{:.2},{:.2}",
                                        if i == 0 { "M" } else { "L" },
                                        px(x),
                                        py(y)
                                    )
                                })
                                .collect();
                            svg.push_str(&format!(
                                "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" \
                                 stroke-width=\"2\"/>\n",
                                path.join(" ")
                            ));
                        }
                    }
                    SeriesKind::Points => {
                        for &(x, y) in pts {
                            svg.push_str(&format!(
                                "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"2.5\" fill=\"{color}\" \
                                 fill-opacity=\"0.6\"/>\n",
                                px(x),
                                py(y)
                            ));
                        }
                    }
                }
                // Legend entry.
                let ly = MARGIN + 16.0 * si as f64;
                svg.push_str(&format!(
                    "<rect x=\"{}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
                     <text x=\"{}\" y=\"{}\" font-size=\"11\" font-family=\"sans-serif\">{}</text>\n",
                    w - MARGIN + 4.0,
                    ly - 9.0,
                    w - MARGIN + 18.0,
                    ly,
                    xml_escape(&self.series[si].label)
                ));
            }
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Renders a coarse ASCII view (for terminal inspection).
    pub fn to_ascii(&self, cols: usize, rows: usize) -> String {
        let scaled = self.scaled_points();
        let Some((x0, x1, y0, y1)) = Self::bounds(&scaled) else {
            return format!("{} (no data)\n", self.title);
        };
        let mut grid = vec![vec![' '; cols]; rows];
        let marks = ['*', 'o', '+', 'x', '#', '@'];
        for (si, pts) in scaled.iter().enumerate() {
            let mark = marks[si % marks.len()];
            for &(x, y) in pts {
                let cx = ((x - x0) / (x1 - x0) * (cols - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (rows - 1) as f64).round() as usize;
                let row = rows - 1 - cy.min(rows - 1);
                grid[row][cx.min(cols - 1)] = mark;
            }
        }
        let mut out = format!("{}\n", self.title);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', cols));
        out.push('\n');
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", marks[si % marks.len()], s.label));
        }
        out
    }
}

/// Formats a tick value compactly: plain decimals for moderate
/// magnitudes, scientific notation otherwise.
fn fmt_tick(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".to_owned()
    } else if (0.01..10_000.0).contains(&a) {
        format!("{v:.2}")
    } else {
        format!("{v:.2e}")
    }
}

fn unscale(scale: Scale, v: f64) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log10 => 10f64.powf(v),
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart::new("t", "x", "y")
            .with_series("line", SeriesKind::Lines, vec![(0.0, 0.0), (1.0, 2.0)])
            .with_series("dots", SeriesKind::Points, vec![(0.5, 1.0)])
    }

    #[test]
    fn svg_contains_structure() {
        let svg = chart().to_svg(400, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<path"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("line")); // legend
        assert!(svg.contains("dots"));
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let c = Chart::new("t", "x", "y")
            .with_x_scale(Scale::Log10)
            .with_series(
                "s",
                SeriesKind::Points,
                vec![(0.0, 1.0), (-1.0, 1.0), (10.0, 1.0)],
            );
        let scaled = c.scaled_points();
        assert_eq!(scaled[0].len(), 1);
        assert!((scaled[0][0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_chart_renders_without_panic() {
        let c = Chart::new("empty", "x", "y");
        let svg = c.to_svg(200, 100);
        assert!(svg.contains("empty"));
        let ascii = c.to_ascii(10, 4);
        assert!(ascii.contains("no data"));
    }

    #[test]
    fn ascii_plots_all_series_markers() {
        let a = chart().to_ascii(20, 8);
        assert!(a.contains('*'));
        assert!(a.contains('o'));
        assert!(a.contains("line"));
    }

    #[test]
    fn title_is_escaped() {
        let c =
            Chart::new("a<b&c", "x", "y").with_series("s", SeriesKind::Points, vec![(1.0, 1.0)]);
        let svg = c.to_svg(100, 100);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn single_point_bounds_do_not_degenerate() {
        let c = Chart::new("t", "x", "y").with_series("s", SeriesKind::Points, vec![(2.0, 3.0)]);
        // Must not divide by zero.
        let svg = c.to_svg(100, 100);
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn scale_admits_and_applies() {
        assert!(Scale::Log10.admits(1.0));
        assert!(!Scale::Log10.admits(0.0));
        assert!(Scale::Linear.admits(-5.0));
        assert_eq!(Scale::Log10.apply(100.0), 2.0);
    }
}
