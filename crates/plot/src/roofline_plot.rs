//! Convenience constructors turning SPIRE rooflines into [`Chart`]s —
//! the recipe behind the paper's Fig. 7 plots.

use spire_core::{PiecewiseRoofline, Sample};

use crate::chart::{Chart, Scale, SeriesKind};

/// Number of evaluation points used when tracing a fitted roofline curve.
const TRACE_POINTS: usize = 256;

/// Builds a chart of a fitted roofline with its training samples, like
/// the paper's Fig. 7 panels. `log_axes` reproduces the paper's
/// log-scaled left/middle panels; pass `false` for the "non-distorting
/// linear scale" zoom of the right panel.
pub fn roofline_chart<'a>(
    roofline: &PiecewiseRoofline,
    samples: impl IntoIterator<Item = &'a Sample>,
    log_axes: bool,
) -> Chart {
    roofline_points_chart(
        roofline,
        samples.into_iter().map(|s| (s.intensity(), s.throughput())),
        log_axes,
    )
}

/// [`roofline_chart`] over raw `(intensity, throughput)` pairs, so
/// callers holding columnar data (e.g. `MetricColumn::intensities` /
/// `throughputs` slices) can stream points without materializing owned
/// [`Sample`]s. Non-finite intensities are dropped, as in
/// [`roofline_chart`].
pub fn roofline_points_chart(
    roofline: &PiecewiseRoofline,
    points: impl IntoIterator<Item = (f64, f64)>,
    log_axes: bool,
) -> Chart {
    let sample_points: Vec<(f64, f64)> =
        points.into_iter().filter(|(x, _)| x.is_finite()).collect();

    // Trace the model over the sample span (plus headroom on the right).
    let x_min = sample_points
        .iter()
        .map(|p| p.0)
        .fold(f64::INFINITY, f64::min);
    let x_max = sample_points
        .iter()
        .map(|p| p.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut curve = Vec::with_capacity(TRACE_POINTS);
    if x_min.is_finite() && x_max > 0.0 {
        let lo = if log_axes {
            x_min.max(x_max * 1e-6).max(f64::MIN_POSITIVE)
        } else {
            0.0
        };
        let hi = x_max * 1.2;
        for i in 0..TRACE_POINTS {
            let f = i as f64 / (TRACE_POINTS - 1) as f64;
            let x = if log_axes {
                lo * (hi / lo).powf(f)
            } else {
                lo + (hi - lo) * f
            };
            curve.push((x, roofline.estimate(x)));
        }
    }

    let scale = if log_axes {
        Scale::Log10
    } else {
        Scale::Linear
    };
    Chart::new(
        format!("SPIRE roofline: {}", roofline.metric()),
        "operational intensity I_x (work per event)",
        "max throughput P",
    )
    .with_x_scale(scale)
    .with_y_scale(scale)
    .with_series("fitted roofline", SeriesKind::Lines, curve)
    .with_series("training samples", SeriesKind::Points, sample_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::FitOptions;

    fn samples() -> Vec<Sample> {
        vec![
            Sample::new("m", 10.0, 10.0, 10.0).unwrap(),
            Sample::new("m", 10.0, 20.0, 5.0).unwrap(),
            Sample::new("m", 10.0, 30.0, 3.0).unwrap(),
            Sample::new("m", 10.0, 15.0, 0.5).unwrap(),
        ]
    }

    #[test]
    fn chart_has_curve_and_samples() {
        let s = samples();
        let r = PiecewiseRoofline::fit("m".into(), s.iter(), &FitOptions::default()).unwrap();
        let c = roofline_chart(&r, s.iter(), true);
        assert_eq!(c.series.len(), 2);
        assert_eq!(c.series[0].points.len(), 256);
        assert_eq!(c.series[1].points.len(), 4);
        assert_eq!(c.x_scale, Scale::Log10);
    }

    #[test]
    fn linear_chart_starts_at_zero() {
        let s = samples();
        let r = PiecewiseRoofline::fit("m".into(), s.iter(), &FitOptions::default()).unwrap();
        let c = roofline_chart(&r, s.iter(), false);
        assert_eq!(c.x_scale, Scale::Linear);
        assert_eq!(c.series[0].points[0].0, 0.0);
    }

    #[test]
    fn curve_upper_bounds_samples() {
        let s = samples();
        let r = PiecewiseRoofline::fit("m".into(), s.iter(), &FitOptions::default()).unwrap();
        let c = roofline_chart(&r, s.iter(), true);
        for &(x, y) in &c.series[1].points {
            assert!(r.estimate(x) >= y - 1e-9);
        }
        let _ = c.to_svg(640, 480);
    }
}
