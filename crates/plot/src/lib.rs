//! # spire-plot
//!
//! Dependency-free SVG and ASCII rendering for the SPIRE reproduction's
//! figures: roofline plots (paper Fig. 2 and Fig. 7), sample scatters,
//! and generic line charts.
//!
//! ```
//! use spire_plot::{Chart, SeriesKind};
//!
//! let svg = Chart::new("ipc over time", "interval", "ipc")
//!     .with_series("workload", SeriesKind::Lines, vec![(0.0, 1.2), (1.0, 1.4)])
//!     .to_svg(640, 480);
//! assert!(svg.contains("</svg>"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chart;
mod roofline_plot;

pub use chart::{Chart, Scale, Series, SeriesKind};
pub use roofline_plot::{roofline_chart, roofline_points_chart};
