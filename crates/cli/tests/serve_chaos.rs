//! End-to-end crash harness for the daemon's durable update path.
//!
//! These tests drive the real `spire` binary: train a snapshot, serve it
//! with a write-ahead journal, stream live updates, and SIGKILL the
//! daemon — no drain, no flush — then restart on the same journal and
//! assert the served model is exactly the last acknowledged state. The
//! byte-level torn-tail cases are pinned by the serve crate's
//! kill-at-every-offset test; this file proves the same contract holds
//! through the CLI surface (`serve --wal-dir`, `update --via-server`,
//! `client ping --wait`) across real process boundaries.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use spire_core::{ModelSnapshot, SampleSet, SpireModel};
use spire_counters::Dataset;
use spire_serve::{Client, ClientConfig};

fn spire() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spire"))
}

/// An OS-assigned free port. The listener is dropped before use; the
/// tiny race with other processes is acceptable for a test.
fn free_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    format!("127.0.0.1:{}", listener.local_addr().unwrap().port())
}

/// Shared corpus: a base dataset, five update batches, and a snapshot
/// trained from the base — built once with the real binary.
struct Fixture {
    dir: PathBuf,
    base: PathBuf,
    batches: Vec<PathBuf>,
    snapshot: PathBuf,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("spire-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let collect = |out: &Path, set: &str, seed: u64| {
            let status = spire()
                .args(["collect", "--out"])
                .arg(out)
                .args([
                    "--cycles",
                    "1200",
                    "--set",
                    set,
                    "--seed",
                    &seed.to_string(),
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .status()
                .expect("spawn spire collect");
            assert!(status.success(), "collect into {} failed", out.display());
        };
        collect(&base, "train", 7);
        let batches: Vec<PathBuf> = (0..5)
            .map(|i| {
                let path = dir.join(format!("batch_{i}.json"));
                collect(&path, "test", 100 + i);
                path
            })
            .collect();
        let snapshot = dir.join("model.json");
        let status = spire()
            .args(["train", "--data"])
            .arg(&base)
            .arg("--snapshot")
            .arg(&snapshot)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn spire train");
        assert!(status.success(), "training the fixture snapshot failed");
        Fixture {
            dir,
            base,
            batches,
            snapshot,
        }
    })
}

/// Starts the daemon and waits for readiness with `client ping --wait`
/// (the same poll CI uses instead of sleep loops).
fn start_daemon(f: &Fixture, addr: &str, wal: &Path) -> Child {
    let child = spire()
        .arg("serve")
        .arg(format!("m={}", f.snapshot.display()))
        .args(["--addr", addr, "--workers", "2"])
        .arg("--wal-dir")
        .arg(wal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spire serve");
    let status = spire()
        .args([
            "client",
            "ping",
            "--addr",
            addr,
            "--wait",
            "--timeout-ms",
            "15000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn spire client ping --wait");
    assert!(status.success(), "daemon at {addr} never became ready");
    child
}

fn connect(addr: &str) -> Client {
    Client::connect_with(addr, ClientConfig::default()).expect("connect to daemon")
}

/// The daemon's served state for model `m`: (last_seq, fingerprint).
fn served_state(addr: &str) -> (u64, String) {
    let stats = connect(addr).stats().expect("stats request");
    let m = stats
        .stats
        .as_ref()
        .and_then(|s| s.models.iter().find(|m| m.name == "m"))
        .expect("daemon serves model m");
    (m.last_seq.expect("wal enabled"), m.fingerprint.clone())
}

/// Fingerprint the journaled trainer must reach after the first `k`
/// batches of `sets`, computed independently by clean retraining.
fn expected_fingerprint(f: &Fixture, sets: &[SampleSet], k: usize) -> String {
    if k == 0 {
        let text = std::fs::read_to_string(&f.snapshot).unwrap();
        return ModelSnapshot::from_json(&text).unwrap().fingerprint();
    }
    let config = {
        let text = std::fs::read_to_string(&f.snapshot).unwrap();
        ModelSnapshot::from_json(&text).unwrap().config
    };
    let mut merged = SampleSet::new();
    for set in &sets[..k] {
        merged.merge(set.clone());
    }
    let model = SpireModel::train(&merged, config).unwrap();
    ModelSnapshot::from_model(&model).unwrap().fingerprint()
}

#[test]
fn sigkill_between_acked_updates_recovers_the_acked_state() {
    let f = fixture();
    let wal = f.dir.join("wal_acked");
    let addr = free_addr();
    let mut daemon = start_daemon(f, &addr, &wal);

    let base = Dataset::load(f.base.to_str().unwrap()).unwrap().merged();
    let batch = Dataset::load(f.batches[0].to_str().unwrap())
        .unwrap()
        .merged();

    let mut client = connect(&addr);
    let a = client.update("m", &base, Some("chaos-a")).unwrap();
    assert!(a.ok, "{:?}", a.error);
    assert_eq!(a.seq, Some(1));
    let b = client.update("m", &batch, Some("chaos-b")).unwrap();
    assert!(b.ok, "{:?}", b.error);
    assert_eq!(b.seq, Some(2));
    let acked_fp = b
        .fingerprint
        .clone()
        .expect("update acks carry a fingerprint");

    // SIGKILL: no drain, no final fsync beyond the per-commit ones.
    daemon.kill().expect("kill daemon");
    daemon.wait().expect("reap daemon");

    let addr2 = free_addr();
    let mut daemon2 = start_daemon(f, &addr2, &wal);
    let (seq, fp) = served_state(&addr2);
    assert_eq!(seq, 2, "both acked updates must survive the kill");
    assert_eq!(fp, acked_fp, "served model must be the last acked state");

    // The dedup window is journaled too: retrying an acked key after the
    // crash is recognized, not re-applied.
    let mut client2 = connect(&addr2);
    let retry = client2.update("m", &batch, Some("chaos-b")).unwrap();
    assert!(retry.ok, "{:?}", retry.error);
    assert_eq!(retry.applied, Some(false));
    assert_eq!(retry.seq, Some(2));
    assert_eq!(retry.fingerprint.as_deref(), Some(acked_fp.as_str()));

    // And the journal keeps rolling: a fresh key advances the sequence.
    let c = client2.update("m", &base, Some("chaos-c")).unwrap();
    assert!(c.ok, "{:?}", c.error);
    assert_eq!(c.seq, Some(3));

    let _ = client2.shutdown();
    let _ = daemon2.wait();
}

#[test]
fn sigkill_mid_update_stream_recovers_an_acked_prefix() {
    let f = fixture();
    let wal = f.dir.join("wal_stream");
    let addr = free_addr();
    let mut daemon = start_daemon(f, &addr, &wal);

    // Stream base + 5 batches through the real `update --via-server`
    // client in a child process, and SIGKILL the daemon once at least
    // one batch has been acknowledged.
    let mut stream = spire()
        .args([
            "update",
            "--via-server",
            "--addr",
            &addr,
            "--model",
            "m",
            "--data",
        ])
        .arg(&f.base)
        .args(f.batches.iter().map(|p| p.as_os_str()))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spire update --via-server");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (seq, _) = served_state(&addr);
        if seq >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "stream never applied a batch");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.kill().expect("kill daemon mid-stream");
    daemon.wait().expect("reap daemon");
    // The client may have finished or died on the broken connection;
    // either way it must not be left running.
    let _ = stream.kill();
    let _ = stream.wait();

    let addr2 = free_addr();
    let mut daemon2 = start_daemon(f, &addr2, &wal);
    let (seq, fp) = served_state(&addr2);
    let sets: Vec<SampleSet> = std::iter::once(&f.base)
        .chain(f.batches.iter())
        .map(|p| Dataset::load(p.to_str().unwrap()).unwrap().merged())
        .collect();
    assert!(
        (1..=sets.len() as u64).contains(&seq),
        "recovered seq {seq} outside the streamed range"
    );
    // The recovered model is exactly the acked prefix: bit-identical to
    // retraining from scratch on the first `seq` batches.
    assert_eq!(
        fp,
        expected_fingerprint(f, &sets, seq as usize),
        "recovered model is not the acked {seq}-batch prefix"
    );

    // Recovery is not read-only: the stream can resume where it left off.
    let mut client = connect(&addr2);
    let next = client
        .update("m", &sets[seq as usize % sets.len()], Some("resume-0"))
        .unwrap();
    assert!(next.ok, "{:?}", next.error);
    assert_eq!(next.seq, Some(seq + 1));

    let _ = client.shutdown();
    let _ = daemon2.wait();
}

#[test]
fn served_estimates_from_binary_dataset_are_bit_identical_to_json() {
    let f = fixture();

    // Re-encode the base dataset into the binary column format with the
    // real binary, then ask a running daemon for estimates through both
    // encodings of the same data — the full `--json` client envelopes
    // (float text at full precision) must match byte for byte.
    let binary = f.dir.join("base.spirecol");
    let status = spire()
        .args(["convert", "--data"])
        .arg(&f.base)
        .arg("--out")
        .arg(&binary)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn spire convert");
    assert!(status.success(), "convert to binary failed");

    let label = Dataset::load(f.base.to_str().unwrap())
        .unwrap()
        .iter()
        .next()
        .expect("fixture dataset has workloads")
        .0
        .to_owned();

    let wal = f.dir.join("wal_binfmt");
    let addr = free_addr();
    let mut daemon = start_daemon(f, &addr, &wal);
    let estimate = |data: &Path| {
        let out = spire()
            .args(["client", "estimate", "--addr", &addr, "--model", "m"])
            .arg("--data")
            .arg(data)
            .args(["--workload", &label, "--json"])
            .stderr(Stdio::null())
            .output()
            .expect("spawn spire client estimate");
        assert!(out.status.success(), "client estimate failed");
        String::from_utf8(out.stdout).expect("UTF-8 envelope")
    };
    let from_json = estimate(&f.base);
    let from_binary = estimate(&binary);
    assert!(!from_json.is_empty());

    // The daemon's LRU keys on a hash of the request's serialized
    // samples, so the second request answering from cache is itself
    // proof the binary-loaded samples are bit-identical to the
    // JSON-loaded ones. Everything else in the envelope must match
    // byte for byte.
    assert!(from_json.contains("\"cached\": false"), "{from_json}");
    assert!(
        from_binary.contains("\"cached\": true"),
        "binary-loaded samples missed the cache: not bit-identical"
    );
    assert_eq!(
        from_json.replace("\"cached\": false", "\"cached\": true"),
        from_binary,
        "served estimates differ between dataset encodings"
    );

    let _ = connect(&addr).shutdown();
    let _ = daemon.wait();
}
