//! Machine-dimension CLI tests: golden coverage for `spire machines`
//! (the catalog is compile-time data, so its `--json` envelope must be
//! byte-stable), typed rejection of invalid custom machine files, and
//! the model/data machine-mismatch path end to end — lenient degrade,
//! strict refusal, legacy machine-less artifacts, and the normalized
//! (hardware-agnostic) model that crosses machines on purpose.

use spire_cli::commands::{run, CmdResult, EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK};
use spire_core::{MachineSpec, Sample, SampleSet};
use spire_counters::Dataset;
use spire_sim::MachineCatalog;

fn run_str(argv: &[&str]) -> CmdResult {
    let v: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
    run(&v)
}

/// The exit code the binary would report for this result.
fn exit_code(result: &CmdResult) -> i32 {
    match result {
        Ok(out) if out.degraded => EXIT_DEGRADED,
        Ok(_) => EXIT_OK,
        Err(_) => EXIT_FAILURE,
    }
}

/// Compares `actual` to the committed golden, or rewrites the golden
/// when `SPIRE_UPDATE_GOLDEN` is set.
fn assert_golden(actual: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("SPIRE_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run with SPIRE_UPDATE_GOLDEN=1 if intentional"
    );
}

/// The spec of a catalog machine, by name.
fn catalog_spec(name: &str) -> MachineSpec {
    MachineCatalog::builtin().get(name).unwrap().spec()
}

/// Writes the three-metric training dataset, optionally machine-tagged.
fn write_dataset(path: &std::path::Path, machine: Option<MachineSpec>) {
    let mut set = SampleSet::new();
    for m in ["m_alpha", "m_beta", "m_gamma"] {
        for i in 1..6 {
            set.push(Sample::new(m, 10.0, (5 * i) as f64, (10 - i) as f64).unwrap());
        }
    }
    let mut ds = Dataset::new();
    ds.insert("wl", set);
    ds.set_machine(machine);
    ds.save(path).unwrap();
}

#[test]
fn golden_machines_list_and_show_json() {
    let result = run_str(&["machines", "--json"]);
    assert_eq!(exit_code(&result), EXIT_OK);
    assert_golden(&result.unwrap().text, "machines_list.golden.json");

    let result = run_str(&["machines", "show", "little", "--json"]);
    assert_eq!(exit_code(&result), EXIT_OK);
    assert_golden(&result.unwrap().text, "machines_show.golden.json");
}

#[test]
fn machines_export_round_trips_through_show() {
    let dir = std::env::temp_dir().join("spire-machines-export");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("edge.json");
    let result = run_str(&[
        "machines",
        "export",
        "edge",
        "--out",
        file.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&result), EXIT_OK);

    // The exported file resolves as a custom machine selector and keeps
    // the catalog identity: same config, same fingerprint.
    let result = run_str(&["machines", "show", file.to_str().unwrap(), "--json"]);
    assert_eq!(exit_code(&result), EXIT_OK);
    let text = result.unwrap().text;
    let spec = catalog_spec("edge");
    assert!(
        text.contains(&spec.fingerprint),
        "fingerprint survives: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn machines_show_rejects_invalid_custom_files_with_typed_errors() {
    let dir = std::env::temp_dir().join("spire-machines-invalid");
    std::fs::create_dir_all(&dir).unwrap();

    // Malformed JSON: the parse error, not a panic.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not a machine {").unwrap();
    let err = run_str(&["machines", "show", garbage.to_str().unwrap()]).unwrap_err();
    assert!(
        err.to_string().contains("machine file does not parse"),
        "parse rejection is typed: {err}"
    );

    // Parses, but the configuration violates a structural constraint.
    let mut machine = MachineCatalog::builtin().get("little").unwrap().clone();
    machine.config.backend.issue_width = 0;
    let invalid = dir.join("invalid.json");
    std::fs::write(&invalid, machine.to_json()).unwrap();
    let err = run_str(&["machines", "show", invalid.to_str().unwrap()]).unwrap_err();
    assert!(
        err.to_string().contains("machine file rejected"),
        "validation rejection is typed: {err}"
    );

    // A blank name is rejected before the config is even validated.
    let mut machine = MachineCatalog::builtin().get("little").unwrap().clone();
    machine.name = "  ".to_owned();
    let unnamed = dir.join("unnamed.json");
    std::fs::write(&unnamed, machine.to_json()).unwrap();
    let err = run_str(&["machines", "show", unnamed.to_str().unwrap()]).unwrap_err();
    assert!(
        err.to_string().contains("name must be non-empty"),
        "unnamed rejection is typed: {err}"
    );

    // An unknown selector names the catalog in its error.
    let err = run_str(&["machines", "show", "no-such-machine"]).unwrap_err();
    assert!(
        err.to_string().contains("skylake-server"),
        "unknown selector names the catalog: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn machine_mismatch_degrades_leniently_and_refuses_strictly() {
    let dir = std::env::temp_dir().join("spire-machines-mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let train_data = dir.join("little.json");
    let other_data = dir.join("hpc.json");
    let snapshot = dir.join("snap.json");
    write_dataset(&train_data, Some(catalog_spec("little")));
    write_dataset(&other_data, Some(catalog_spec("hpc")));

    let result = run_str(&[
        "train",
        "--data",
        train_data.to_str().unwrap(),
        "--snapshot",
        snapshot.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "{result:?}");

    // Lenient estimate against another machine's data: exactly one
    // machine_mismatch event carrying both fingerprints, exit code 2.
    for command in ["estimate", "analyze"] {
        let result = run_str(&[
            command,
            "--model",
            snapshot.to_str().unwrap(),
            "--data",
            other_data.to_str().unwrap(),
            "--workload",
            "wl",
            "--json",
        ]);
        assert_eq!(exit_code(&result), EXIT_DEGRADED, "{command} degrades");
        let text = result.unwrap().text;
        assert_eq!(
            text.matches("\"kind\": \"machine_mismatch\"").count(),
            1,
            "{command}: exactly one mismatch event: {text}"
        );
        assert!(text.contains(&catalog_spec("little").fingerprint), "{text}");
        assert!(text.contains(&catalog_spec("hpc").fingerprint), "{text}");
    }

    // An update seeded from mismatched data degrades the same way.
    let result = run_str(&[
        "update",
        "--model",
        snapshot.to_str().unwrap(),
        "--data",
        other_data.to_str().unwrap(),
        "--snapshot-out",
        dir.join("updated.json").to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_DEGRADED, "update degrades");
    let text = result.unwrap().text;
    assert_eq!(
        text.matches("\"kind\": \"machine_mismatch\"").count(),
        1,
        "update: exactly one mismatch event: {text}"
    );

    // Strict mode turns the degrade into a typed refusal naming both
    // machines.
    let err = run_str(&[
        "estimate",
        "--model",
        snapshot.to_str().unwrap(),
        "--data",
        other_data.to_str().unwrap(),
        "--workload",
        "wl",
        "--strict",
    ])
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("little"),
        "refusal names the model machine: {msg}"
    );
    assert!(msg.contains("hpc"), "refusal names the data machine: {msg}");

    // Matching machines stay clean: same data the model came from.
    let result = run_str(&[
        "estimate",
        "--model",
        snapshot.to_str().unwrap(),
        "--data",
        train_data.to_str().unwrap(),
        "--workload",
        "wl",
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "matching machines are clean");
    let text = result.unwrap().text;
    assert!(!text.contains("machine_mismatch"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_untagged_artifacts_skip_the_machine_check_with_a_note() {
    let dir = std::env::temp_dir().join("spire-machines-legacy");
    std::fs::create_dir_all(&dir).unwrap();
    let untagged = dir.join("untagged.json");
    let tagged = dir.join("tagged.json");
    let snapshot = dir.join("snap.json");
    write_dataset(&untagged, None);
    write_dataset(&tagged, Some(catalog_spec("edge")));

    // A machine-less snapshot (legacy) applied to tagged data: no
    // mismatch, just a note that the check was skipped.
    let result = run_str(&[
        "train",
        "--data",
        untagged.to_str().unwrap(),
        "--snapshot",
        snapshot.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "{result:?}");
    let result = run_str(&[
        "estimate",
        "--model",
        snapshot.to_str().unwrap(),
        "--data",
        tagged.to_str().unwrap(),
        "--workload",
        "wl",
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "legacy is not a mismatch");
    let text = result.unwrap().text;
    assert!(!text.contains("machine_mismatch"), "{text}");
    assert!(
        text.contains("machine provenance absent"),
        "skip is noted on the bus: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn normalized_model_crosses_machines_without_mismatch() {
    let dir = std::env::temp_dir().join("spire-machines-normalized");
    std::fs::create_dir_all(&dir).unwrap();
    let train_data = dir.join("little.json");
    let other_data = dir.join("hpc.json");
    let snapshot = dir.join("snap.json");
    write_dataset(&train_data, Some(catalog_spec("little")));
    write_dataset(&other_data, Some(catalog_spec("hpc")));

    let result = run_str(&[
        "train",
        "--data",
        train_data.to_str().unwrap(),
        "--snapshot",
        snapshot.to_str().unwrap(),
        "--normalize",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "{result:?}");

    // The hardware-agnostic model's purpose is cross-machine use: the
    // identity check is skipped and the incoming data is peak-normalized
    // by its own machine's peaks.
    let result = run_str(&[
        "estimate",
        "--model",
        snapshot.to_str().unwrap(),
        "--data",
        other_data.to_str().unwrap(),
        "--workload",
        "wl",
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "normalized transfer is clean");
    let text = result.unwrap().text;
    assert!(!text.contains("machine_mismatch"), "{text}");
    assert!(
        text.contains("peak-normalizing samples by hpc"),
        "data is normalized by its own machine: {text}"
    );

    // Normalize without provenance is a hard, typed error at train time.
    let untagged = dir.join("untagged.json");
    write_dataset(&untagged, None);
    let err = run_str(&[
        "train",
        "--data",
        untagged.to_str().unwrap(),
        "--snapshot",
        dir.join("never.json").to_str().unwrap(),
        "--normalize",
    ])
    .unwrap_err();
    assert!(
        err.to_string().contains("machine provenance"),
        "typed requirement: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
