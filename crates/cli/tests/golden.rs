//! Golden-file tests for the CLI's `--json` envelope: the full
//! ingest → train --snapshot → estimate → analyze flow on a fixture
//! dataset, asserting exit-code semantics (0 / 2 / 1) and byte-stable
//! machine output.
//!
//! Volatile content is normalized before comparison: stage wall times
//! become `0.0` and the per-run temp directory becomes `<DIR>`. To
//! regenerate the goldens after an intentional schema change, run with
//! `SPIRE_UPDATE_GOLDEN=1` and review the diff.

use spire_cli::commands::{run, CmdResult, EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK};
use spire_core::{ModelSnapshot, Sample, SampleSet};
use spire_counters::Dataset;

fn run_str(argv: &[&str]) -> CmdResult {
    let v: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
    run(&v)
}

/// The exit code the binary would report for this result.
fn exit_code(result: &CmdResult) -> i32 {
    match result {
        Ok(out) if out.degraded => EXIT_DEGRADED,
        Ok(_) => EXIT_OK,
        Err(_) => EXIT_FAILURE,
    }
}

/// Zeroes `"wall_ms"` values and replaces `dir` with `<DIR>` so the
/// remainder of the envelope must be byte-identical run to run.
fn normalize(text: &str, dir: &str) -> String {
    let mut out = String::new();
    for line in text.replace(dir, "<DIR>").lines() {
        if let Some(start) = line.find("\"wall_ms\": ") {
            let prefix = &line[..start + "\"wall_ms\": ".len()];
            let trailing = if line.trim_end().ends_with(',') {
                ","
            } else {
                ""
            };
            out.push_str(prefix);
            out.push_str("0.0");
            out.push_str(trailing);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Compares `actual` to the committed golden, or rewrites the golden
/// when `SPIRE_UPDATE_GOLDEN` is set.
fn assert_golden(actual: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("SPIRE_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run with SPIRE_UPDATE_GOLDEN=1 if intentional"
    );
}

fn fixture_csv() -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/perf_mixed.csv")
        .to_str()
        .unwrap()
        .to_owned()
}

/// A deterministic three-metric dataset for the train/estimate/analyze
/// legs (the mixed CSV's single metric is too thin to train on).
fn write_dataset(path: &std::path::Path) {
    let mut set = SampleSet::new();
    for m in ["m_alpha", "m_beta", "m_gamma"] {
        for i in 1..6 {
            set.push(Sample::new(m, 10.0, (5 * i) as f64, (10 - i) as f64).unwrap());
        }
    }
    let mut ds = Dataset::new();
    ds.insert("wl", set);
    ds.save(path).unwrap();
}

#[test]
fn golden_ingest_json_degraded() {
    let dir = std::env::temp_dir().join("spire-golden-ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("imported.json");
    let csv = fixture_csv();
    let result = run_str(&[
        "ingest",
        "--csv",
        &csv,
        "--out",
        out_file.to_str().unwrap(),
        "--label",
        "mux",
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_DEGRADED, "quarantined rows => 2");
    let fixture_dir = fixture_csv().rsplit_once('/').unwrap().0.to_owned();
    let text = normalize(&result.unwrap().text, dir.to_str().unwrap());
    let text = text.replace(&fixture_dir, "<FIXTURES>");
    assert_golden(&text, "ingest_mixed.golden.json");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_train_estimate_analyze_json() {
    let dir = std::env::temp_dir().join("spire-golden-flow");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let snap = dir.join("model.snapshot.json");
    write_dataset(&data);

    let result = run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "clean training => 0");
    assert_golden(
        &normalize(&result.unwrap().text, dir.to_str().unwrap()),
        "train.golden.json",
    );

    let common = [
        "--model",
        snap.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--workload",
        "wl",
        "--json",
    ];
    let mut argv = vec!["estimate"];
    argv.extend_from_slice(&common);
    let result = run_str(&argv);
    assert_eq!(exit_code(&result), EXIT_OK);
    assert_golden(
        &normalize(&result.unwrap().text, dir.to_str().unwrap()),
        "estimate.golden.json",
    );

    let mut argv = vec!["analyze"];
    argv.extend_from_slice(&common);
    argv.extend_from_slice(&["--top", "3"]);
    let result = run_str(&argv);
    assert_eq!(exit_code(&result), EXIT_OK);
    assert_golden(
        &normalize(&result.unwrap().text, dir.to_str().unwrap()),
        "analyze.golden.json",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_salvaged_snapshot_is_degraded_then_strict_fails() {
    let dir = std::env::temp_dir().join("spire-golden-salvage");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let snap = dir.join("model.snapshot.json");
    write_dataset(&data);
    run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
    ])
    .unwrap();

    // Corrupt one record's checksum on disk.
    let mut stored = ModelSnapshot::from_json(&std::fs::read_to_string(&snap).unwrap()).unwrap();
    stored.metrics[0].checksum = "0000000000000000".to_owned();
    std::fs::write(&snap, stored.to_json()).unwrap();

    let common = [
        "--model",
        snap.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--workload",
        "wl",
        "--json",
    ];
    // Lenient: salvaged => exit 2, with the drop visible in the events.
    let mut argv = vec!["estimate"];
    argv.extend_from_slice(&common);
    let result = run_str(&argv);
    assert_eq!(exit_code(&result), EXIT_DEGRADED, "salvage => 2");
    let text = normalize(&result.unwrap().text, dir.to_str().unwrap());
    assert!(text.contains("\"degraded\": true"));
    assert!(text.contains("\"kind\": \"snapshot_record_dropped\""));
    assert!(text.contains("\"kind\": \"snapshot_salvaged\""));
    assert_golden(&text, "estimate_salvaged.golden.json");

    // Strict: the artifact is refused outright => exit 1.
    argv.push("--strict");
    let result = run_str(&argv);
    assert_eq!(exit_code(&result), EXIT_FAILURE, "strict salvage => 1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_convert_round_trip_is_byte_identical() {
    let dir = std::env::temp_dir().join("spire-golden-convert");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let binary = dir.join("data.spirecol");
    let back = dir.join("back.json");
    write_dataset(&data);

    // JSON -> binary, with the envelope pinned (sizes are deterministic).
    let result = run_str(&[
        "convert",
        "--data",
        data.to_str().unwrap(),
        "--out",
        binary.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK, "clean convert => 0");
    assert_golden(
        &normalize(&result.unwrap().text, dir.to_str().unwrap()),
        "convert.golden.json",
    );

    // binary -> JSON reproduces the source file byte for byte.
    let result = run_str(&[
        "convert",
        "--data",
        binary.to_str().unwrap(),
        "--out",
        back.to_str().unwrap(),
        "--to",
        "json",
    ]);
    assert_eq!(exit_code(&result), EXIT_OK);
    assert_eq!(
        std::fs::read(&data).unwrap(),
        std::fs::read(&back).unwrap(),
        "JSON -> binary -> JSON must be byte-identical"
    );

    // The binary dataset answers estimates bit-identically to the JSON
    // one: the whole --json envelope (throughput included, full float
    // precision) must match byte for byte.
    let snap = dir.join("model.snapshot.json");
    run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
    ])
    .unwrap();
    let estimate = |data_path: &str| {
        let result = run_str(&[
            "estimate",
            "--model",
            snap.to_str().unwrap(),
            "--data",
            data_path,
            "--workload",
            "wl",
            "--json",
        ]);
        assert_eq!(exit_code(&result), EXIT_OK);
        normalize(&result.unwrap().text, dir.to_str().unwrap())
    };
    assert_eq!(
        estimate(data.to_str().unwrap()),
        estimate(binary.to_str().unwrap()),
        "estimates from the binary dataset drifted from the JSON path"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_envelope_is_uniform_across_subcommands() {
    // Every subcommand's --json output parses and carries the same
    // top-level schema fields in the same order.
    let dir = std::env::temp_dir().join("spire-golden-uniform");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    write_dataset(&data);
    let outputs = [
        run_str(&["list-workloads", "--json"]).unwrap(),
        run_str(&[
            "simulate",
            "--workload",
            "tnn",
            "--config",
            "SqueezeNet v1.1",
            "--cycles",
            "50000",
            "--json",
        ])
        .unwrap(),
        run_str(&[
            "tma",
            "--workload",
            "onnx",
            "--config",
            "T5 Encoder, Std.",
            "--cycles",
            "50000",
            "--json",
        ])
        .unwrap(),
        run_str(&[
            "coverage",
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "wl",
            "--json",
        ])
        .unwrap(),
    ];
    for out in &outputs {
        let lines: Vec<&str> = out.text.lines().collect();
        assert_eq!(lines[0], "{");
        assert!(lines[1].starts_with("  \"command\": "), "{}", lines[1]);
        assert!(out.text.contains("\"schema_version\": 1"));
        assert!(out.text.contains("\"degraded\": "));
        assert!(out.text.contains("\"events\": "));
        assert!(out.text.contains("\"result\": "));
    }
    std::fs::remove_dir_all(&dir).ok();
}
