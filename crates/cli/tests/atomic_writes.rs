//! Crash-safety smoke test for the CLI's durable outputs.
//!
//! Every file the toolkit persists (datasets, snapshots, deltas, SVGs)
//! goes through `spire_core::write_atomic`: bytes land in a temporary
//! sibling which is renamed over the destination. This test kills a
//! `spire collect` run at staggered points mid-flight and asserts the
//! destination is never torn — it either still holds the previous
//! complete dataset or the new complete one, and always parses.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

fn spire() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spire"))
}

fn assert_valid_dataset(path: &Path, context: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{context}: cannot read {}: {e}", path.display()));
    spire_counters::Dataset::from_json(&text)
        .unwrap_or_else(|e| panic!("{context}: destination is torn ({e})"));
}

#[test]
fn killed_collect_never_leaves_a_truncated_dataset() {
    let dir = std::env::temp_dir().join(format!("spire-atomic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("ds.json");

    // Seed the destination with a known-good dataset so a mid-overwrite
    // kill has old bytes to tear.
    let status = spire()
        .args(["collect", "--out"])
        .arg(&out)
        .args(["--cycles", "2000", "--set", "train"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn spire collect");
    assert!(status.success(), "seeding collect failed");
    assert_valid_dataset(&out, "seed run");

    // Re-collect into the same path, killing at staggered delays that
    // straddle the write. Whatever the timing, the destination must
    // still parse as a complete dataset.
    for delay_ms in [1u64, 25, 100, 400, 1600] {
        let mut child = spire()
            .args(["collect", "--out"])
            .arg(&out)
            .args(["--cycles", "20000", "--set", "train"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spire collect");
        std::thread::sleep(Duration::from_millis(delay_ms));
        let _ = child.kill();
        let _ = child.wait();
        assert_valid_dataset(&out, &format!("after kill at {delay_ms}ms"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
