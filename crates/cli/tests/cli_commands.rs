//! Behavioral tests for every `spire` subcommand, moved out of
//! `commands.rs` when it shattered into per-command modules. They only
//! use the public API, and they lock the human-readable output and
//! exit-code semantics across the pipeline-engine refactor.

use spire_cli::commands::{run, CmdResult};
use spire_core::{ModelSnapshot, Sample, SampleSet};
use spire_counters::Dataset;

fn run_str(argv: &[&str]) -> CmdResult {
    let v: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
    run(&v)
}

/// Writes a small three-metric dataset to `path` and returns it.
fn write_dataset(path: &std::path::Path) -> Dataset {
    let mut set = SampleSet::new();
    for m in ["m_alpha", "m_beta", "m_gamma"] {
        for i in 1..6 {
            let s = Sample::new(m, 10.0, (5 * i) as f64, (10 - i) as f64).unwrap();
            set.push(s);
        }
    }
    let mut ds = Dataset::new();
    ds.insert("wl", set);
    ds.save(path).unwrap();
    ds
}

#[test]
fn no_command_prints_usage() {
    let out = run_str(&[]).unwrap();
    assert!(out.contains("USAGE"));
}

#[test]
fn unknown_command_errors_with_usage() {
    let err = run_str(&["bogus"]).unwrap_err();
    assert!(err.to_string().contains("unknown command"));
}

#[test]
fn list_workloads_has_27_rows() {
    let out = run_str(&["list-workloads"]).unwrap();
    // header + 27 entries
    assert_eq!(out.lines().count(), 28);
    assert!(out.contains("tnn"));
    assert!(out.contains("CUTCP"));
}

#[test]
fn simulate_reports_ipc_and_tma() {
    let out = run_str(&[
        "simulate",
        "--workload",
        "tnn",
        "--config",
        "SqueezeNet v1.1",
        "--cycles",
        "50000",
    ])
    .unwrap();
    assert!(out.contains("ipc:"));
    assert!(out.contains("retiring"));
}

#[test]
fn simulate_unknown_workload_errors() {
    let err = run_str(&["simulate", "--workload", "nope"]).unwrap_err();
    assert!(err.to_string().contains("no workload"));
}

#[test]
fn tma_command_prints_the_tree() {
    let out = run_str(&[
        "tma",
        "--workload",
        "onnx",
        "--config",
        "T5 Encoder, Std.",
        "--cycles",
        "50000",
    ])
    .unwrap();
    assert!(out.contains("Memory Bound"));
    assert!(out.contains("Core Bound"));
    assert!(out.contains("main bottleneck: Memory"));
}

#[test]
fn end_to_end_collect_train_analyze() {
    let dir = std::env::temp_dir().join("spire-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let model = dir.join("model.json");

    // Tiny collection run over the test set to stay fast.
    let out = run_str(&[
        "collect",
        "--out",
        data.to_str().unwrap(),
        "--set",
        "test",
        "--cycles",
        "60000",
        "--interval",
        "20000",
        "--slice",
        "1000",
    ])
    .unwrap();
    assert!(out.contains("wrote"));

    let out = run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("trained"));

    let out = run_str(&[
        "analyze",
        "--model",
        model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--workload",
        "tnn (SqueezeNet v1.1)",
        "--top",
        "5",
    ])
    .unwrap();
    assert!(out.contains("ensemble throughput estimate"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plot_writes_an_svg() {
    let dir = std::env::temp_dir().join("spire-cli-plot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let model = dir.join("model.json");
    let svg = dir.join("roofline.svg");
    run_str(&[
        "collect",
        "--out",
        data.to_str().unwrap(),
        "--set",
        "test",
        "--cycles",
        "60000",
        "--interval",
        "20000",
        "--slice",
        "1000",
    ])
    .unwrap();
    run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ])
    .unwrap();
    let out = run_str(&[
        "plot",
        "--model",
        model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--metric",
        "idq.dsb_uops",
        "--out",
        svg.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("plotted"));
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.contains("<svg"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coverage_command_reports_fractions() {
    let dir = std::env::temp_dir().join("spire-cli-coverage-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    run_str(&[
        "collect",
        "--out",
        data.to_str().unwrap(),
        "--set",
        "test",
        "--cycles",
        "60000",
        "--interval",
        "20000",
        "--slice",
        "1000",
    ])
    .unwrap();
    let out = run_str(&[
        "coverage",
        "--data",
        data.to_str().unwrap(),
        "--workload",
        "tnn (SqueezeNet v1.1)",
    ])
    .unwrap();
    assert!(out.contains("coverage fraction range"));
    assert!(out.contains("time frac"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_scales_multiplexed_counts_and_stores_the_report() {
    let dir = std::env::temp_dir().join("spire-cli-ingest-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("perf.csv");
    let out_file = dir.join("imported.json");
    std::fs::write(
        &csv,
        "1.0,100,,inst_retired.any,1,100,,\n\
         1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
         1.0,7,,longest_lat_cache.miss,250000,25.00,,\n\
         broken line\n",
    )
    .unwrap();
    let out = run_str(&[
        "ingest",
        "--csv",
        csv.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
        "--label",
        "mux",
        "--ingest-report",
    ])
    .unwrap();
    assert!(out.contains("1 quarantined"));
    assert!(out.contains("quarantine breakdown"));
    assert!(out.contains("imported 1 samples"));
    assert!(out.degraded, "quarantined rows must flag partial success");
    let ds = Dataset::load(&out_file).unwrap();
    // 7 counted over 25% of the interval -> 28 estimated.
    let s = ds.get("mux").unwrap().iter().next().unwrap();
    assert_eq!(s.metric_delta(), 28.0);
    assert_eq!(ds.report("mux").unwrap().rows_scaled, 1);

    // The stored report feeds the coverage table's mux column.
    let cov = run_str(&[
        "coverage",
        "--data",
        out_file.to_str().unwrap(),
        "--workload",
        "mux",
    ])
    .unwrap();
    assert!(cov.contains("25.0%"));

    // And train --ingest-report surfaces the provenance.
    let model = dir.join("model.json");
    let trained = run_str(&[
        "train",
        "--data",
        out_file.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--ingest-report",
    ])
    .unwrap();
    assert!(trained.contains("mux:"));
    assert!(trained.contains("trained"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_accepts_front_fitting_flags() {
    let dir = std::env::temp_dir().join("spire-cli-front-flags-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let model = dir.join("model.json");
    write_dataset(&data);
    let out = run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--max-front",
        "64",
        "--thin-front",
    ])
    .unwrap();
    assert!(out.contains("trained"));
    assert!(model.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_requires_an_output() {
    let err = run_str(&["train", "--data", "whatever.json"]).unwrap_err();
    assert!(err.to_string().contains("--out and/or --snapshot"));
}

#[test]
fn train_snapshot_estimate_round_trip() {
    let dir = std::env::temp_dir().join("spire-cli-snapshot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let snap = dir.join("model.snapshot.json");
    write_dataset(&data);

    let out = run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("wrote snapshot (format v1, 3 checksummed records)"));
    assert!(out.contains("trained 3/3 metrics"));
    assert!(!out.degraded);

    // The snapshot stores provenance from the dataset.
    let stored = ModelSnapshot::from_json(&std::fs::read_to_string(&snap).unwrap()).unwrap();
    let prov = stored.provenance.as_ref().unwrap();
    assert_eq!(prov.labels, ["wl"]);
    assert_eq!(prov.total_samples, 15);
    assert!(stored.train_report.is_some());

    // estimate and analyze load the snapshot without retraining.
    let common = [
        "--model",
        snap.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--workload",
        "wl",
    ];
    let mut argv = vec!["estimate"];
    argv.extend_from_slice(&common);
    let est = run_str(&argv).unwrap();
    assert!(est.contains("ensemble throughput estimate"));
    assert!(est.contains("primary bottleneck"));
    assert!(!est.degraded);
    let mut argv = vec!["analyze"];
    argv.extend_from_slice(&common);
    let ana = run_str(&argv).unwrap();
    assert!(ana.contains("ensemble throughput estimate"));
    assert!(!ana.degraded);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_snapshot_salvages_leniently_and_refuses_strictly() {
    let dir = std::env::temp_dir().join("spire-cli-salvage-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    let snap = dir.join("model.snapshot.json");
    write_dataset(&data);
    run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
    ])
    .unwrap();

    // Corrupt one record's checksum on disk.
    let mut stored = ModelSnapshot::from_json(&std::fs::read_to_string(&snap).unwrap()).unwrap();
    stored.metrics[0].checksum = "0000000000000000".to_owned();
    std::fs::write(&snap, stored.to_json()).unwrap();

    let common = [
        "--model",
        snap.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--workload",
        "wl",
    ];
    // Lenient (default): completes on the surviving metrics, degraded.
    let mut argv = vec!["estimate"];
    argv.extend_from_slice(&common);
    let out = run_str(&argv).unwrap();
    assert!(out.degraded);
    assert!(out.contains("salvaged snapshot"));
    assert!(out.contains("dropped m_alpha"));
    assert!(out.contains("metrics contributing: 2 of 2 trained"));
    // Strict: refuses the artifact.
    argv.push("--strict");
    let err = run_str(&argv).unwrap_err();
    assert!(err.to_string().contains("corrupt"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_ingest_fails_when_over_budget() {
    let dir = std::env::temp_dir().join("spire-cli-strict-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("garbage.csv");
    let out_file = dir.join("out.json");
    std::fs::write(&csv, "junk\nmore junk\nstill junk\n").unwrap();
    let common = [
        "--csv",
        csv.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
    ];
    // Lenient mode saves the (empty) partial dataset.
    let mut argv = vec!["ingest"];
    argv.extend_from_slice(&common);
    assert!(run_str(&argv).unwrap().contains("3 quarantined"));
    // Strict mode refuses and writes nothing.
    std::fs::remove_file(&out_file).ok();
    argv.push("--strict");
    let err = run_str(&argv).unwrap_err();
    assert!(err.to_string().contains("error budget"));
    assert!(!out_file.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_scale_keeps_raw_counts() {
    let dir = std::env::temp_dir().join("spire-cli-noscale-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("perf.csv");
    let out_file = dir.join("out.json");
    std::fs::write(
        &csv,
        "1.0,100,,inst_retired.any,1,100,,\n\
         1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
         1.0,7,,longest_lat_cache.miss,250000,25.00,,\n",
    )
    .unwrap();
    run_str(&[
        "ingest",
        "--csv",
        csv.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
        "--no-scale",
    ])
    .unwrap();
    let ds = Dataset::load(&out_file).unwrap();
    let s = ds.get("imported").unwrap().iter().next().unwrap();
    assert_eq!(s.metric_delta(), 7.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn import_perf_round_trips() {
    let dir = std::env::temp_dir().join("spire-cli-perf-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("perf.csv");
    let out_file = dir.join("imported.json");
    std::fs::write(
        &csv,
        "1.0,100,,inst_retired.any,1,100,,\n\
         1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
         1.0,7,,longest_lat_cache.miss,1,100,,\n",
    )
    .unwrap();
    let out = run_str(&[
        "import-perf",
        "--csv",
        csv.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
        "--label",
        "real-cpu",
    ])
    .unwrap();
    assert!(out.contains("imported 1 samples"));
    let ds = Dataset::load(&out_file).unwrap();
    assert_eq!(ds.get("real-cpu").unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_incremental_matches_batch_training() {
    let dir = std::env::temp_dir().join("spire-cli-incr-test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.json");
    write_dataset(&data);
    let batch_snap = dir.join("batch.snapshot.json");
    let incr_snap = dir.join("incr.snapshot.json");

    run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        batch_snap.to_str().unwrap(),
    ])
    .unwrap();
    let out = run_str(&[
        "train",
        "--data",
        data.to_str().unwrap(),
        "--snapshot",
        incr_snap.to_str().unwrap(),
        "--incremental",
    ])
    .unwrap();
    assert!(out.contains("wl: +15 samples"), "{}", out.text);

    let batch = ModelSnapshot::from_json(&std::fs::read_to_string(&batch_snap).unwrap()).unwrap();
    let incr = ModelSnapshot::from_json(&std::fs::read_to_string(&incr_snap).unwrap()).unwrap();
    assert_eq!(batch.fingerprint(), incr.fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn update_command_matches_retraining_and_writes_an_applicable_delta() {
    let dir = std::env::temp_dir().join("spire-cli-update-test");
    std::fs::create_dir_all(&dir).unwrap();
    let base_data = dir.join("base.json");
    let base_ds = write_dataset(&base_data);

    // New samples for one metric only; the other two stay untouched.
    let mut extra = SampleSet::new();
    for i in 6..9 {
        extra.push(Sample::new("m_alpha", 10.0, (5 * i) as f64, (10 - i) as f64).unwrap());
    }
    let batch_data = dir.join("batch.json");
    let mut batch_ds = Dataset::new();
    batch_ds.insert("wl2", extra.clone());
    batch_ds.save(&batch_data).unwrap();

    let base_snap = dir.join("base.snapshot.json");
    run_str(&[
        "train",
        "--data",
        base_data.to_str().unwrap(),
        "--snapshot",
        base_snap.to_str().unwrap(),
    ])
    .unwrap();

    let updated_snap = dir.join("updated.snapshot.json");
    let delta_path = dir.join("delta.json");
    let out = run_str(&[
        "update",
        "--model",
        base_snap.to_str().unwrap(),
        "--data",
        base_data.to_str().unwrap(),
        batch_data.to_str().unwrap(),
        "--snapshot-out",
        updated_snap.to_str().unwrap(),
        "--out-delta",
        delta_path.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("wrote updated snapshot"), "{}", out.text);
    assert!(out.contains("wrote delta"), "{}", out.text);
    assert!(
        !out.contains("fingerprints differ"),
        "base dataset must reproduce the snapshot: {}",
        out.text
    );

    // The updated snapshot must equal a full retrain over base + batch.
    let full_data = dir.join("full.json");
    let mut full_ds = Dataset::new();
    full_ds.insert("wl", base_ds.get("wl").unwrap().clone());
    full_ds.insert("wl2", extra);
    full_ds.save(&full_data).unwrap();
    let full_snap = dir.join("full.snapshot.json");
    run_str(&[
        "train",
        "--data",
        full_data.to_str().unwrap(),
        "--snapshot",
        full_snap.to_str().unwrap(),
    ])
    .unwrap();
    let updated =
        ModelSnapshot::from_json(&std::fs::read_to_string(&updated_snap).unwrap()).unwrap();
    let full = ModelSnapshot::from_json(&std::fs::read_to_string(&full_snap).unwrap()).unwrap();
    assert_eq!(updated.fingerprint(), full.fingerprint());

    // The delta applies to the base snapshot and reproduces the update,
    // carrying only the metric whose front moved.
    let base = ModelSnapshot::from_json(&std::fs::read_to_string(&base_snap).unwrap()).unwrap();
    let delta =
        spire_core::SnapshotDelta::from_json(&std::fs::read_to_string(&delta_path).unwrap())
            .unwrap();
    assert_eq!(delta.changed.len(), 1);
    assert_eq!(delta.changed[0].metric.as_str(), "m_alpha");
    let applied = delta.apply(&base).unwrap();
    assert_eq!(applied.fingerprint(), updated.fingerprint());

    // No temp files left behind by the atomic writes.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "{stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn update_requires_an_output() {
    let err = run_str(&["update", "--model", "x.json", "--data", "y.json"]).unwrap_err();
    assert!(err
        .to_string()
        .contains("--snapshot-out and/or --out-delta"));
}
