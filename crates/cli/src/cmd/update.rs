//! `spire update`: incremental model maintenance. Seeds an
//! [`OnlineTrainer`] from the base dataset, feeds each positional batch
//! file through [`UpdateStage`], and persists the result as an updated
//! snapshot and/or a delta (changed metric records only) against the
//! existing snapshot — both written atomically.
//!
//! With `--via-server`, batches stream to a running daemon's journaled
//! `update` endpoint instead: each batch carries a fresh idempotency key
//! so the bounded retry loop can never double-apply, and the daemon's
//! WAL — not a local snapshot file — is the durability boundary.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use spire_core::pipeline::{Stage, UpdateStage};
use spire_core::{write_atomic, ModelSnapshot, OnlineTrainer, SnapshotDelta, UpdateOutcome};
use spire_serve::{Client, ClientConfig};

use crate::args::Args;
use crate::commands::CmdResult;

use super::{check_machine, json, load_dataset, CmdError, Runner};

/// Streams the base dataset plus every positional batch to a daemon.
fn run_via_server(args: &Args) -> CmdResult {
    let addr = args.require("addr")?;
    let model = args.require("model")?;
    let data_path = args.require("data")?;
    let config = ClientConfig {
        read_timeout: Duration::from_millis(args.get_or("timeout-ms", 30_000)?),
        retries: args.get_or("retries", 3)?,
        ..ClientConfig::default()
    };
    let mut client =
        Client::connect_with(addr, config).map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    // Keys are unique per run but stable per batch, so a retried send of
    // batch `i` (after a timeout or shed) is recognized and applied once.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
        ^ u128::from(std::process::id());

    let runner = Runner::from_args(args)?;
    let mut log = String::new();
    let mut last_seq = 0u64;
    let mut fingerprint = String::new();
    let mut batches = 0usize;
    let base = load_dataset(&runner, data_path)?.0;
    let base = (data_path, base.machine().cloned(), base.merged());
    let batch_paths = &args.positionals()[1..];
    let later = batch_paths
        .iter()
        .map(|p| {
            let dataset = load_dataset(&runner, p)?.0;
            Ok((p.as_str(), dataset.machine().cloned(), dataset.merged()))
        })
        .collect::<Result<Vec<_>, CmdError>>()?;
    for (label, machine, samples) in std::iter::once(base).chain(later) {
        let key = format!("spire-update-{nonce:x}-{batches}");
        let response = client
            .update_tagged(model, &samples, Some(&key), machine.as_ref())
            .map_err(|e| format!("update of {label} failed: {e}"))?;
        if !response.ok {
            return Err(response
                .error
                .unwrap_or_else(|| format!("server refused update of {label}"))
                .into());
        }
        last_seq = response.seq.unwrap_or(last_seq);
        fingerprint = response.fingerprint.clone().unwrap_or(fingerprint);
        batches += 1;
        writeln!(
            log,
            "{label}: seq {last_seq}{}{}",
            if response.applied == Some(false) {
                " (deduplicated)"
            } else {
                ""
            },
            response
                .update
                .as_ref()
                .map(|r| format!(", {}", r.summary()))
                .unwrap_or_default()
        )?;
    }
    writeln!(
        log,
        "server model {model} now at seq {last_seq} [{fingerprint}]"
    )?;

    let result = json::obj(vec![
        ("addr", json::s(addr)),
        ("model", json::s(model)),
        ("batches", json::u(batches)),
        ("last_seq", json::u(last_seq as usize)),
        ("fingerprint", json::s(fingerprint.as_str())),
    ]);
    runner.finish(args, "update", log, result)
}

/// The trainer's maintained model (present after every successful commit).
fn seeded_model(trainer: &OnlineTrainer) -> Result<&spire_core::SpireModel, CmdError> {
    trainer
        .model()
        .ok_or_else(|| "update committed no model".into())
}

pub(crate) fn run(args: &Args) -> CmdResult {
    if args.flag("via-server") {
        return run_via_server(args);
    }
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let snapshot_out = args.get("snapshot-out");
    let delta_out = args.get("out-delta");
    if snapshot_out.is_none() && delta_out.is_none() {
        return Err("update requires --snapshot-out and/or --out-delta".into());
    }
    let base_text = std::fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read snapshot {model_path}: {e}"))?;
    let base = ModelSnapshot::from_json(&base_text)?;

    let mut runner = Runner::from_args(args)?;
    // An update must be fit-compatible with the base snapshot, so the
    // training options come from the snapshot itself; only the thread
    // count is a run-time choice.
    let mut config = base.config.clone();
    config.threads = args.get_or("threads", config.threads)?;
    let strictness = runner.ctx.config.strictness;

    let mut log = String::new();
    let mut trainer = OnlineTrainer::new(config, strictness)?;

    // Batch 0: the base dataset the snapshot was trained from.
    let (dataset, warn) = load_dataset(&runner, data_path)?;
    log.push_str(&warn);
    let warn = check_machine(&runner, "update", base.machine(), dataset.machine())?;
    log.push_str(&warn);
    let (next, outcome) = UpdateStage.execute((trainer, dataset.merged()), &mut runner.ctx)?;
    trainer = next;
    let mut last: UpdateOutcome = outcome;
    writeln!(
        log,
        "seeded from {data_path}: {} samples, {} metrics",
        last.update.samples_added,
        seeded_model(&trainer)?.metric_count()
    )?;
    if ModelSnapshot::from_model(seeded_model(&trainer)?)?.fingerprint() != base.fingerprint() {
        writeln!(
            log,
            "warning: base dataset does not reproduce snapshot {model_path} \
             (fingerprints differ); the delta will carry every divergent metric"
        )?;
    }

    let batch_paths = &args.positionals()[1..];
    let mut samples_added = 0usize;
    for path in batch_paths {
        let (batch, warn) = load_dataset(&runner, path)?;
        log.push_str(&warn);
        let warn = check_machine(&runner, "update", base.machine(), batch.machine())?;
        log.push_str(&warn);
        let (next, outcome) = UpdateStage.execute((trainer, batch.merged()), &mut runner.ctx)?;
        trainer = next;
        samples_added += outcome.update.samples_added;
        writeln!(log, "{path}: {}", outcome.update.summary())?;
        last = outcome;
    }

    let model = seeded_model(&trainer)?;
    let updated = ModelSnapshot::from_model(model)?
        .with_provenance(dataset.provenance(Some(data_path)))
        .with_train_report(last.report.clone());
    if let Some(path) = snapshot_out {
        write_atomic(Path::new(path), &updated.to_json())?;
        writeln!(
            log,
            "wrote updated snapshot (format v{}, {} checksummed records) to {path}",
            spire_core::SNAPSHOT_FORMAT_VERSION,
            model.metric_count()
        )?;
    }
    let delta = SnapshotDelta::between(&base, &updated);
    if let Some(path) = delta_out {
        write_atomic(Path::new(path), &delta.to_json())?;
        writeln!(
            log,
            "wrote delta ({} changed, {} removed of {} records) to {path}",
            delta.changed.len(),
            delta.removed.len(),
            updated.metrics.len()
        )?;
    }

    let result = json::obj(vec![
        ("model", json::s(model_path)),
        ("data", json::s(data_path)),
        ("snapshot_out", json::opt_s(snapshot_out)),
        ("delta_out", json::opt_s(delta_out)),
        ("batches", json::u(batch_paths.len())),
        ("samples_added", json::u(samples_added)),
        ("metrics", json::u(model.metric_count())),
        ("changed_records", json::u(delta.changed.len())),
        ("removed_records", json::u(delta.removed.len())),
        ("update", serde::to_content(&last.update)),
        (
            "machine",
            json::machine_pair(base.machine(), dataset.machine()),
        ),
    ]);
    runner.finish(args, "update", log, result)
}
