//! Per-command modules behind the `spire` dispatcher.
//!
//! Each module does exactly three things: parse its arguments into a
//! [`PipelineConfig`], run the `spire_core::pipeline` engine, and render
//! the result — human text on stdout, or the shared `--json` envelope.
//! Degradation (exit code 2) is derived from the diagnostics bus, never
//! tracked ad hoc: any `Severity::Degraded` event flips it.

pub(crate) mod analyze;
pub(crate) mod client;
pub(crate) mod collect;
pub(crate) mod convert;
pub(crate) mod coverage;
pub(crate) mod ingest;
pub(crate) mod json;
pub(crate) mod machines;
pub(crate) mod plot;
pub(crate) mod serve;
pub(crate) mod sim;
pub(crate) mod train;
pub(crate) mod update;

pub(crate) mod estimate;

use std::error::Error;
use std::fmt::Write as _;
use std::sync::Arc;

use serde::Content;
use spire_core::pipeline::{
    CollectingSink, Event, EventSink, IngestSettings, LoadModelStage, PipelineConfig, RunContext,
    Severity, Stage,
};
use spire_core::{
    normalize_set, FitOptions, MachineSpec, SampleSet, SnapshotMode, SpireError, SpireModel,
    TrainConfig, TrainStrictness,
};
use spire_workloads::{suite, WorkloadProfile};

use crate::args::Args;
use crate::commands::{CmdOutput, CmdResult};

/// Shared error alias (same shape as `commands::CmdResult`'s error).
pub(crate) type CmdError = Box<dyn Error + Send + Sync>;

/// Renders warning-severity events (lossy-but-requested decisions like
/// front thinning) to stderr as the pre-pipeline CLI did. Degraded events
/// are *not* echoed here — the command renderers put those warnings in
/// the stdout text.
pub(crate) struct WarnSink;

impl EventSink for WarnSink {
    fn emit(&self, event: &Event) {
        if event.severity() == Severity::Warning {
            eprintln!("spire: {}", event.render());
        }
    }
}

/// One command's engine handle: the [`RunContext`] plus the collecting
/// sink every event is mirrored into (feeding the `--json` envelope, the
/// warning renderers, and the degraded flag).
pub(crate) struct Runner {
    /// The run context threaded through every stage.
    pub ctx: RunContext,
    sink: Arc<CollectingSink>,
}

impl Runner {
    /// Builds a runner from a command's parsed arguments.
    pub fn from_args(args: &Args) -> Result<Self, CmdError> {
        let sink = Arc::new(CollectingSink::new());
        let ctx = RunContext::new(pipeline_config(args)?)
            .with_sink(sink.clone())
            .with_sink(Arc::new(WarnSink));
        Ok(Runner { ctx, sink })
    }

    /// The events emitted so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.sink.events()
    }

    /// Whether the run degraded (exit-code-2 semantics, from the bus).
    pub fn degraded(&self) -> bool {
        self.ctx.degraded()
    }

    /// Finishes a command: the human `text` on stdout, or — with
    /// `--json` — the shared envelope wrapping `result` plus the full
    /// event stream. The degraded flag always comes from the bus.
    pub fn finish(&self, args: &Args, command: &str, text: String, result: Content) -> CmdResult {
        let degraded = self.degraded();
        let text = if args.flag("json") {
            json::envelope(command, degraded, &self.events(), result)?
        } else {
            text
        };
        Ok(CmdOutput { text, degraded })
    }
}

/// Builds the run's [`PipelineConfig`] from the uniform option names
/// (`--threads`, `--strict`, `--min-samples`, `--metric-budget`,
/// `--max-front`, `--thin-front`, `--min-frac`, `--budget`,
/// `--no-scale`, `--seed`). Options a command doesn't document simply
/// keep their defaults.
pub(crate) fn pipeline_config(args: &Args) -> Result<PipelineConfig, CmdError> {
    let fit_defaults = FitOptions::default();
    let strict = args.flag("strict");
    Ok(PipelineConfig {
        train: TrainConfig {
            min_samples_per_metric: args.get_or("min-samples", 1)?,
            threads: args.get_or("threads", 0)?,
            metric_error_budget: args.get_or("metric-budget", 0.5)?,
            fit: FitOptions {
                max_front_size: args.get_or("max-front", fit_defaults.max_front_size)?,
                thin_front: args.flag("thin-front"),
                ..fit_defaults
            },
            ..TrainConfig::default()
        },
        strictness: if strict {
            TrainStrictness::Strict
        } else {
            TrainStrictness::Lenient
        },
        snapshot_mode: if strict {
            SnapshotMode::Strict
        } else {
            SnapshotMode::Lenient
        },
        ingest: IngestSettings {
            min_running_frac: args.get_or("min-frac", 0.05)?,
            error_budget: args.get_or("budget", 0.5)?,
            scale_multiplexed: !args.flag("no-scale"),
        },
        seed: args.get_or("seed", 1)?,
    })
}

/// Loads a model from `path` through [`LoadModelStage`] (accepting a
/// versioned snapshot or legacy raw-model JSON, in the mode chosen by
/// `--strict`), rendering any salvage from the event stream into the
/// same warning text the pre-pipeline CLI printed.
pub(crate) fn load_model(
    runner: &mut Runner,
    path: &str,
) -> Result<(SpireModel, Option<MachineSpec>, String), CmdError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read model file {path}: {e}"))?;
    // The machine tag rides in the snapshot container's provenance, which
    // the model-load stage does not surface; legacy raw-model JSON (no
    // container) simply has no machine.
    let machine = spire_core::ModelSnapshot::from_json(&text)
        .ok()
        .and_then(|s| s.machine().cloned());
    let stage = LoadModelStage {
        source: path.to_owned(),
    };
    let model = stage.execute(text, &mut runner.ctx)?;
    let mut log = String::new();
    let events = runner.events();
    if let Some(Event::SnapshotSalvaged {
        source,
        dropped,
        total,
    }) = events
        .iter()
        .find(|e| matches!(e, Event::SnapshotSalvaged { .. }))
    {
        writeln!(
            log,
            "warning: salvaged snapshot {source}: {dropped} of {total} metric records dropped"
        )?;
        for event in &events {
            if let Event::SnapshotRecordDropped { metric, reason } = event {
                writeln!(log, "  dropped {metric}: {reason}")?;
            }
        }
    }
    Ok((model, machine, log))
}

/// Cross-checks a model's machine against a dataset's before the model is
/// applied to the data. Both present and different emits exactly one
/// `machine_mismatch` event (degrading the run, exit code 2) and — under
/// `--strict` — refuses with [`SpireError::MachineMismatch`]. Either side
/// absent is legacy, not a mismatch: a `note` event records that the
/// check was skipped. Peak-normalized (hardware-agnostic) models skip the
/// identity check entirely — cross-machine use is their purpose.
///
/// Returns warning text for the command's stdout (empty when clean).
pub(crate) fn check_machine(
    runner: &Runner,
    context: &str,
    model_machine: Option<&MachineSpec>,
    data_machine: Option<&MachineSpec>,
) -> Result<String, CmdError> {
    match (model_machine, data_machine) {
        (Some(m), _) if m.normalized => {
            runner.ctx.note(
                context,
                "model is hardware-agnostic (peak-normalized); machine-identity check skipped",
            );
            Ok(String::new())
        }
        (Some(m), Some(d)) if !m.matches(d) => {
            runner.ctx.emit(Event::MachineMismatch {
                context: context.to_owned(),
                model_machine: m.name.clone(),
                model_fingerprint: m.fingerprint.clone(),
                data_machine: d.name.clone(),
                data_fingerprint: d.fingerprint.clone(),
            });
            if runner.ctx.config.snapshot_mode == SnapshotMode::Strict {
                return Err(Box::new(SpireError::MachineMismatch {
                    expected: m.tag(),
                    found: d.tag(),
                    context: context.to_owned(),
                }));
            }
            Ok(format!(
                "warning: machine mismatch in {context}: model is from {} but the data \
                 is from {}\n",
                m.tag(),
                d.tag()
            ))
        }
        (Some(_), Some(_)) => Ok(String::new()),
        (None, _) | (_, None) => {
            runner.ctx.note(
                context,
                "machine provenance absent on model or data; machine check skipped",
            );
            Ok(String::new())
        }
    }
}

/// Prepares one workload's samples for a model: a hardware-agnostic
/// (peak-normalized) model gets the data normalized by the *data*
/// machine's peaks — that is the cross-machine transfer path — while a
/// raw model gets a machine-identity check instead. Returns the samples
/// to estimate with plus warning text for stdout.
pub(crate) fn align_samples(
    runner: &Runner,
    context: &str,
    model_machine: Option<&MachineSpec>,
    data_machine: Option<&MachineSpec>,
    samples: &SampleSet,
) -> Result<(SampleSet, String), CmdError> {
    if model_machine.is_some_and(|m| m.normalized) {
        if let Some(d) = data_machine {
            runner.ctx.note(
                context,
                format!(
                    "peak-normalizing samples by {} (peak throughput {})",
                    d.tag(),
                    d.peaks.throughput
                ),
            );
            return Ok((normalize_set(samples, &d.peaks), String::new()));
        }
        let warn = format!(
            "warning: model is peak-normalized but the data carries no machine \
             provenance; estimating {context} in raw units\n"
        );
        runner
            .ctx
            .note(context, warn.trim_start_matches("warning: ").trim_end());
        return Ok((samples.clone(), warn));
    }
    let warn = check_machine(runner, context, model_machine, data_machine)?;
    Ok((samples.clone(), warn))
}

/// Loads a dataset from `path` through [`Dataset::load_with_mode`] — the
/// single format-sniffing entry point, so `SPIRECOL` binary column files
/// and JSON datasets both work everywhere a `--data` path is accepted.
/// The integrity mode follows `--strict`: strict runs refuse any binary
/// damage, lenient runs quarantine damaged chunks, emit each one on the
/// bus as a typed `chunk_quarantined` event (degrading the run, exit
/// code 2), and render the salvage into the returned warning text.
pub(crate) fn load_dataset(
    runner: &Runner,
    path: &str,
) -> Result<(spire_counters::Dataset, String), CmdError> {
    let mode = runner.ctx.config.snapshot_mode;
    let (dataset, report) = spire_counters::Dataset::load_with_mode(path, mode)
        .map_err(|e| format!("cannot load dataset {path}: {e}"))?;
    let mut log = String::new();
    if let Some(report) = report {
        if !report.is_clean() {
            writeln!(
                log,
                "warning: salvaged binary dataset {path}: {} of {} rows quarantined \
                 ({} of {} chunks)",
                report.rows_dropped,
                report.rows_total,
                report.quarantined.len(),
                report.chunks_total
            )?;
            for q in &report.quarantined {
                writeln!(
                    log,
                    "  quarantined {}/{} chunk {} ({} rows): {}",
                    q.label, q.metric, q.chunk, q.rows, q.reason
                )?;
                runner.ctx.emit(Event::ChunkQuarantined {
                    label: q.label.clone(),
                    metric: q.metric.clone(),
                    chunk: q.chunk,
                    rows: q.rows as usize,
                    reason: q.reason.clone(),
                });
            }
        }
    }
    Ok((dataset, log))
}

/// Resolves `--workload NAME [--config C]` against the suite.
pub(crate) fn find_workload(args: &Args) -> Result<WorkloadProfile, CmdError> {
    let name = args.require("workload")?;
    let config = args.get("config").unwrap_or("");
    suite::by_name(name, config)
        .ok_or_else(|| format!("no workload named `{name}` with config `{config}`").into())
}

/// Clones a dataset's labeled entries in label order — the
/// `BuildStage` input whose merge reproduces `Dataset::merged` exactly.
pub(crate) fn labeled_sets(
    dataset: &spire_counters::Dataset,
) -> Vec<(String, spire_core::SampleSet)> {
    dataset
        .iter()
        .map(|(label, set)| (label.to_owned(), set.clone()))
        .collect()
}

/// Resolves a machine selector — a catalog preset name or the path of a
/// custom machine JSON file — into a validated [`spire_sim::Machine`].
pub(crate) fn resolve_machine_selector(selector: &str) -> Result<spire_sim::Machine, CmdError> {
    let catalog = spire_sim::MachineCatalog::builtin();
    if let Some(machine) = catalog.get(selector) {
        return Ok(machine.clone());
    }
    let text = std::fs::read_to_string(selector).map_err(|e| {
        format!(
            "`{selector}` is neither a catalog machine ({}) nor a readable machine file: {e}",
            catalog.names().join(", ")
        )
    })?;
    spire_sim::Machine::from_json(&text).map_err(|e| format!("machine file {selector}: {e}").into())
}

/// Resolves `--machine <name|path>` for sim-backed commands, defaulting
/// to the catalog's default machine when the option is absent.
pub(crate) fn resolve_machine(args: &Args) -> Result<spire_sim::Machine, CmdError> {
    match args.get("machine") {
        Some(selector) => resolve_machine_selector(selector),
        None => Ok(spire_sim::MachineCatalog::builtin()
            .default_machine()
            .clone()),
    }
}
