//! Simulator-facing commands: `list-workloads`, `simulate`, and `tma`.

use std::fmt::Write as _;

use serde::Content;
use spire_sim::Core;
use spire_tma::analyze;
use spire_workloads::suite;

use crate::args::Args;
use crate::commands::CmdResult;

use super::{find_workload, json, resolve_machine, Runner};

pub(crate) fn list_workloads(args: &Args) -> CmdResult {
    let runner = Runner::from_args(args)?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<18} {:<22} {:<16} set",
        "name", "config", "bottleneck"
    )?;
    let mut rows: Vec<Content> = Vec::new();
    let mut render = |profiles: Vec<spire_workloads::WorkloadProfile>,
                      set: &str,
                      out: &mut String|
     -> Result<(), std::fmt::Error> {
        for p in profiles {
            writeln!(
                out,
                "{:<18} {:<22} {:<16} {set}",
                p.name, p.config, p.expected_bottleneck
            )?;
            rows.push(json::obj(vec![
                ("name", json::s(p.name)),
                ("config", json::s(p.config)),
                ("bottleneck", json::s(format!("{}", p.expected_bottleneck))),
                ("set", json::s(set)),
            ]));
        }
        Ok(())
    };
    render(suite::training(), "train", &mut out)?;
    render(suite::testing(), "test", &mut out)?;
    let result = json::obj(vec![("workloads", Content::Seq(rows))]);
    runner.finish(args, "list-workloads", out, result)
}

pub(crate) fn simulate(args: &Args) -> CmdResult {
    let profile = find_workload(args)?;
    let cycles: u64 = args.get_or("cycles", 400_000)?;
    let machine = resolve_machine(args)?;
    let runner = Runner::from_args(args)?;
    let seed = runner.ctx.config.seed;
    let cfg = machine.config;
    let mut core = Core::new(cfg);
    let mut stream = profile.stream(seed);
    let summary = core.run(&mut stream, cycles);
    let tma = analyze(core.counters(), &cfg);
    let text = format!(
        "{} ({})\n  instructions: {}\n  cycles: {}\n  ipc: {:.3}\n  tma: {}\n  main: {}\n",
        profile.name,
        profile.config,
        summary.instructions,
        summary.cycles,
        summary.ipc(),
        tma.summary(),
        tma.main_category()
    );
    let result = json::obj(vec![
        ("name", json::s(profile.name)),
        ("config", json::s(profile.config)),
        ("instructions", json::u(summary.instructions as usize)),
        ("cycles", json::u(summary.cycles as usize)),
        ("ipc", json::f(summary.ipc())),
        ("tma", json::s(tma.summary())),
        ("main", json::s(format!("{}", tma.main_category()))),
        ("machine", json::machine(Some(&machine.spec()))),
    ]);
    runner.finish(args, "simulate", text, result)
}

pub(crate) fn tma(args: &Args) -> CmdResult {
    let profile = find_workload(args)?;
    let cycles: u64 = args.get_or("cycles", 400_000)?;
    let machine = resolve_machine(args)?;
    let runner = Runner::from_args(args)?;
    let seed = runner.ctx.config.seed;
    let cfg = machine.config;
    let mut core = Core::new(cfg);
    let mut stream = profile.stream(seed);
    core.run(&mut stream, cycles);
    let t = analyze(core.counters(), &cfg);
    let mut out = String::new();
    writeln!(out, "{} ({})", profile.name, profile.config)?;
    out.push_str(&t.to_tree());
    writeln!(out, "main bottleneck: {}", t.dominant_bottleneck())?;
    let result = json::obj(vec![
        ("name", json::s(profile.name)),
        ("config", json::s(profile.config)),
        (
            "main_bottleneck",
            json::s(format!("{}", t.dominant_bottleneck())),
        ),
        ("tree", json::s(t.to_tree())),
        ("machine", json::machine(Some(&machine.spec()))),
    ]);
    runner.finish(args, "tma", out, result)
}
