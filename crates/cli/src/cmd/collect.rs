//! `spire collect`: sample the workload suite on the simulated core into
//! a labeled dataset, narrating each run on the diagnostics bus.

use std::fmt::Write as _;

use serde::Content;
use spire_counters::{collect, Dataset, SessionConfig};
use spire_sim::{Core, Event};
use spire_workloads::suite;

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, resolve_machine, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let out_path = args.require("out")?;
    let which = args.get("set").unwrap_or("train");
    let machine = resolve_machine(args)?;
    let spec = machine.spec();
    let runner = Runner::from_args(args)?;
    runner
        .ctx
        .note("collect", format!("machine {}", spec.tag()));
    let seed = runner.ctx.config.seed;
    let mut session_cfg = SessionConfig::default();
    session_cfg.max_cycles = args.get_or("cycles", 2_000_000)?;
    session_cfg.interval_cycles = args.get_or("interval", session_cfg.interval_cycles)?;
    session_cfg.slice_cycles = args.get_or("slice", session_cfg.slice_cycles)?;

    let profiles = match which {
        "train" => suite::training(),
        "test" => suite::testing(),
        "all" => suite::all(),
        other => return Err(format!("--set must be train|test|all, got `{other}`").into()),
    };

    let mut dataset = Dataset::new();
    let mut log = String::new();
    let mut rows: Vec<Content> = Vec::new();
    for p in &profiles {
        let mut core = Core::new(machine.config);
        let mut stream = p.stream(seed);
        let report = collect(&mut core, &mut stream, Event::ALL, &session_cfg);
        let line = format!(
            "{} ({}): {} samples over {} intervals, overhead {:.2}%",
            p.name,
            p.config,
            report.samples.len(),
            report.intervals,
            report.overhead_fraction() * 100.0
        );
        runner.ctx.note("collect", line.clone());
        writeln!(log, "{line}")?;
        rows.push(json::obj(vec![
            ("name", json::s(p.name.clone())),
            ("config", json::s(p.config.clone())),
            ("samples", json::u(report.samples.len())),
            ("intervals", json::u(report.intervals)),
            ("overhead", json::f(report.overhead_fraction())),
        ]));
        dataset.insert(format!("{} ({})", p.name, p.config), report.samples);
    }
    dataset.set_machine(Some(spec.clone()));
    dataset.save(out_path)?;
    writeln!(
        log,
        "wrote {} samples across {} workloads to {out_path}",
        dataset.total_samples(),
        dataset.len()
    )?;
    let result = json::obj(vec![
        ("out", json::s(out_path)),
        ("total_samples", json::u(dataset.total_samples())),
        ("machine", json::machine(Some(&spec))),
        ("workloads", Content::Seq(rows)),
    ]);
    runner.finish(args, "collect", log, result)
}
