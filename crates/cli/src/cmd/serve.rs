//! `spire serve`: run the resident estimation/analysis daemon.
//!
//! Models are positional `name=path` specs (the options map keeps one
//! value per key, so repeated `--model` flags could not name several
//! models). The bound address is printed and flushed immediately so
//! scripts can read the ephemeral port before the daemon blocks in its
//! accept loop.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use spire_core::pipeline::{CollectingSink, EventSink, JsonLinesSink};
use spire_serve::{Server, ServerConfig, WalSettings};

use crate::args::Args;
use crate::commands::{CmdOutput, CmdResult};

use super::{json, pipeline_config, WarnSink};

/// Parses the positional `name=path` model specs (everything after the
/// command word).
fn model_specs(args: &Args) -> Result<Vec<(String, PathBuf)>, super::CmdError> {
    let specs: Vec<(String, PathBuf)> = args
        .positionals()
        .iter()
        .skip(1)
        .map(|spec| {
            spec.split_once('=')
                .map(|(name, path)| (name.to_owned(), PathBuf::from(path)))
                .ok_or_else(|| format!("model spec `{spec}` is not name=path"))
        })
        .collect::<Result<_, _>>()?;
    if specs.is_empty() {
        return Err("serve requires at least one name=path model spec".into());
    }
    Ok(specs)
}

pub(crate) fn run(args: &Args) -> CmdResult {
    let specs = model_specs(args)?;
    // Durable updates are opt-in: `--wal-dir` turns the journal on and
    // with it the `update` request kind (refused otherwise).
    let wal = match args.get("wal-dir") {
        None => None,
        Some(dir) => {
            let mut settings = WalSettings::new(dir);
            settings.compact_records = args.get_or("wal-compact", settings.compact_records)?;
            settings.dedup_window = args.get_or("dedup-window", settings.dedup_window)?;
            Some(settings)
        }
    };
    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_owned(),
        workers: args.get_or("workers", 2)?,
        queue_capacity: args.get_or("queue", 64)?,
        cache_capacity: args.get_or("cache", 32)?,
        max_frame: args.get_or("max-frame", 8 << 20)?,
        max_batch: args.get_or("max-batch", 32)?,
        pipeline: pipeline_config(args)?,
        wal,
        worker_restart_budget: args.get_or("restart-budget", 4)?,
        chaos: Default::default(),
    };

    let collecting = Arc::new(CollectingSink::new());
    let mut sinks: Vec<Arc<dyn EventSink>> = vec![collecting.clone(), Arc::new(WarnSink)];
    if let Some(events_path) = args.get("events") {
        let file = std::fs::File::create(events_path)
            .map_err(|e| format!("cannot create events file {events_path}: {e}"))?;
        sinks.push(Arc::new(JsonLinesSink::new(file)));
    }

    let server = Server::bind(config, specs.clone(), sinks)?;
    let addr = server.local_addr()?;
    // Flushed before the accept loop so wrappers can read the port.
    println!("spire-serve listening on {addr} ({} models)", specs.len());
    std::io::stdout().flush().ok();

    let shared = server.shared();
    let degraded = server.run()?;

    let mut text = String::new();
    writeln!(text, "spire-serve shut down cleanly")?;
    for (name, slot) in shared.registry.iter() {
        let c = &slot.counters;
        let load = |v: &std::sync::atomic::AtomicU64| v.load(std::sync::atomic::Ordering::Relaxed);
        writeln!(
            text,
            "model {name}: {} estimates, {} analyzes, {} updates, {} shed, \
             {} isolated, {} cache hits, {} reloads",
            load(&c.estimates),
            load(&c.analyzes),
            load(&c.updates),
            load(&c.shed),
            load(&c.isolated),
            load(&c.cache_hits),
            load(&c.reloads),
        )?;
    }

    let text = if args.flag("json") {
        let models = json::obj(
            specs
                .iter()
                .map(|(name, path)| (name.as_str(), json::s(path.display().to_string())))
                .collect(),
        );
        let result = json::obj(vec![
            ("addr", json::s(addr.to_string())),
            ("models", models),
        ]);
        json::envelope("serve", degraded, &collecting.events(), result)?
    } else {
        text
    };
    Ok(CmdOutput { text, degraded })
}
