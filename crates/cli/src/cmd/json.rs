//! Machine-readable output: every subcommand's `--json` envelope.
//!
//! The vendored serde shim has no `Value` type or `json!` macro, so this
//! module builds [`Content`] trees directly. The envelope schema (shared
//! by every command, documented in README "Machine-readable output"):
//!
//! ```json
//! {
//!   "command": "<subcommand>",
//!   "schema_version": 1,
//!   "degraded": false,
//!   "events": [ { "kind": "...", ... }, ... ],
//!   "result": { ...command-specific... }
//! }
//! ```

use serde::Content;
use spire_core::pipeline::Event;

use super::CmdError;

/// A [`Content`] tree made serializable (the shim's `to_string` needs a
/// `Serialize` impl, which foreign `Content` lacks).
pub(crate) struct JsonValue(pub Content);

impl serde::Serialize for JsonValue {
    fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.0.clone())
    }
}

/// An object from `(key, value)` pairs, preserving insertion order.
pub(crate) fn obj(fields: Vec<(&str, Content)>) -> Content {
    Content::Map(
        fields
            .into_iter()
            .map(|(k, v)| (Content::Str(k.to_owned()), v))
            .collect(),
    )
}

/// A string value.
pub(crate) fn s(v: impl Into<String>) -> Content {
    Content::Str(v.into())
}

/// An unsigned integer value.
pub(crate) fn u(v: usize) -> Content {
    Content::U64(v as u64)
}

/// A float value.
pub(crate) fn f(v: f64) -> Content {
    Content::F64(v)
}

/// An optional string: `null` when absent.
pub(crate) fn opt_s(v: Option<&str>) -> Content {
    match v {
        Some(v) => Content::Str(v.to_owned()),
        None => Content::Null,
    }
}

/// A machine tag: `{name, fingerprint, normalized}` or `null` when the
/// artifact carries no machine provenance.
pub(crate) fn machine(spec: Option<&spire_core::MachineSpec>) -> Content {
    match spec {
        Some(m) => obj(vec![
            ("name", s(m.name.as_str())),
            ("fingerprint", s(m.fingerprint.as_str())),
            ("normalized", Content::Bool(m.normalized)),
        ]),
        None => Content::Null,
    }
}

/// The shared `machine` column for model-vs-data commands: both sides'
/// tags (each `null` when absent).
pub(crate) fn machine_pair(
    model: Option<&spire_core::MachineSpec>,
    data: Option<&spire_core::MachineSpec>,
) -> Content {
    obj(vec![("model", machine(model)), ("data", machine(data))])
}

/// The shared envelope: command name, schema version, the degraded flag
/// (exit-code-2 semantics), the full event stream, and the
/// command-specific result.
pub(crate) fn envelope(
    command: &str,
    degraded: bool,
    events: &[Event],
    result: Content,
) -> Result<String, CmdError> {
    let events: Vec<Content> = events.iter().map(serde::to_content).collect();
    let root = obj(vec![
        ("command", s(command)),
        ("schema_version", Content::U64(1)),
        ("degraded", Content::Bool(degraded)),
        ("events", Content::Seq(events)),
        ("result", result),
    ]);
    let mut text = serde_json::to_string_pretty(&JsonValue(root))?;
    text.push('\n');
    Ok(text)
}
