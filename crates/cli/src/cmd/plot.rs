//! `spire plot`: render one metric's learned roofline with its samples.

use std::fmt::Write as _;

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, load_dataset, load_model, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let metric_name = args.require("metric")?;
    let out_path = args.require("out")?;
    let log_axes = !args.flag("linear");

    let mut runner = Runner::from_args(args)?;
    let (model, _machine, mut log) = load_model(&mut runner, model_path)?;
    let (dataset, warn) = load_dataset(&runner, data_path)?;
    log.push_str(&warn);
    let metric = spire_core::MetricId::new(metric_name);
    let roofline = model
        .roofline(&metric)
        .ok_or_else(|| format!("model has no roofline for `{metric_name}`"))?;

    // Plot against one workload's samples, or the whole dataset —
    // streaming (intensity, throughput) pairs straight off the column
    // slices instead of materializing an owned `Sample` per row.
    let columns: Vec<&spire_core::MetricColumn> = match args.get("workload") {
        Some(label) => dataset
            .get(label)
            .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?
            .column(&metric)
            .into_iter()
            .collect(),
        None => dataset
            .iter()
            .filter_map(|(_, set)| set.column(&metric))
            .collect(),
    };
    let n_samples: usize = columns.iter().map(|c| c.len()).sum();
    let points = columns.iter().flat_map(|c| {
        c.intensities()
            .iter()
            .copied()
            .zip(c.throughputs().iter().copied())
    });
    let chart = spire_plot::roofline_points_chart(roofline, points, log_axes);
    spire_core::write_atomic(std::path::Path::new(out_path), &chart.to_svg(720, 480))?;
    writeln!(
        log,
        "plotted `{metric_name}` ({n_samples} samples) to {out_path}"
    )?;
    let result = json::obj(vec![
        ("metric", json::s(metric_name)),
        ("out", json::s(out_path)),
        ("samples", json::u(n_samples)),
        ("log_axes", serde::Content::Bool(log_axes)),
    ]);
    runner.finish(args, "plot", log, result)
}
