//! `spire plot`: render one metric's learned roofline with its samples.

use std::fmt::Write as _;

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, load_model, Runner};
use spire_counters::Dataset;

pub(crate) fn run(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let metric_name = args.require("metric")?;
    let out_path = args.require("out")?;
    let log_axes = !args.flag("linear");

    let mut runner = Runner::from_args(args)?;
    let (model, mut log) = load_model(&mut runner, model_path)?;
    let dataset = Dataset::load(data_path)?;
    let metric = spire_core::MetricId::new(metric_name);
    let roofline = model
        .roofline(&metric)
        .ok_or_else(|| format!("model has no roofline for `{metric_name}`"))?;

    // Plot against one workload's samples, or the whole dataset.
    let samples: Vec<spire_core::Sample> = match args.get("workload") {
        Some(label) => dataset
            .get(label)
            .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?
            .samples_for(&metric),
        None => {
            let mut v = Vec::new();
            for (_, set) in dataset.iter() {
                v.extend(set.samples_for(&metric));
            }
            v
        }
    };
    let chart = spire_plot::roofline_chart(roofline, samples.iter(), log_axes);
    spire_core::write_atomic(std::path::Path::new(out_path), &chart.to_svg(720, 480))?;
    writeln!(
        log,
        "plotted `{metric_name}` ({} samples) to {out_path}",
        samples.len()
    )?;
    let result = json::obj(vec![
        ("metric", json::s(metric_name)),
        ("out", json::s(out_path)),
        ("samples", json::u(samples.len())),
        ("log_axes", serde::Content::Bool(log_axes)),
    ]);
    runner.finish(args, "plot", log, result)
}
