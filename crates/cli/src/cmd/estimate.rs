//! `spire estimate`: snapshot load → Estimate through the pipeline
//! engine, printing just the ensemble throughput for one workload.

use std::fmt::Write as _;

use serde::Content;
use spire_core::pipeline::{EstimateStage, Stage};

use crate::args::Args;
use crate::commands::CmdResult;

use super::{align_samples, json, load_dataset, load_model, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let mut runner = Runner::from_args(args)?;
    let (mut model, machine, mut out) = load_model(&mut runner, model_path)?;
    model.set_threads(args.get_or("threads", model.config().threads)?);
    let (dataset, warn) = load_dataset(&runner, data_path)?;
    out.push_str(&warn);
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    let (samples, warn) = align_samples(
        &runner,
        "estimate",
        machine.as_ref(),
        dataset.machine(),
        samples,
    )?;
    out.push_str(&warn);
    let estimate = EstimateStage { model: &model }.execute(samples, &mut runner.ctx)?;
    writeln!(
        out,
        "workload: {label}\nensemble throughput estimate: {:.6}",
        estimate.throughput()
    )?;
    if let Some((metric, value)) = estimate.primary_bottleneck() {
        writeln!(out, "primary bottleneck: {metric} ({value:.6})")?;
    }
    writeln!(
        out,
        "metrics contributing: {} of {} trained",
        estimate.per_metric().len(),
        model.metric_count()
    )?;
    let primary = match estimate.primary_bottleneck() {
        Some((metric, value)) => json::obj(vec![
            ("metric", json::s(metric.as_str())),
            ("value", json::f(value)),
        ]),
        None => Content::Null,
    };
    let result = json::obj(vec![
        ("workload", json::s(label)),
        ("throughput", json::f(estimate.throughput())),
        ("primary_bottleneck", primary),
        ("contributing", json::u(estimate.per_metric().len())),
        ("trained", json::u(model.metric_count())),
        (
            "machine",
            json::machine_pair(machine.as_ref(), dataset.machine()),
        ),
    ]);
    runner.finish(args, "estimate", out, result)
}
