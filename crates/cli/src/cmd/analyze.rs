//! `spire analyze`: snapshot load → Estimate → Analyze through the
//! pipeline engine, ranking bottleneck metrics for one workload.

use std::fmt::Write as _;

use serde::Content;
use spire_core::pipeline::{AnalyzeStage, EstimateStage, Stage};

use crate::args::Args;
use crate::commands::CmdResult;

use super::{align_samples, json, load_dataset, load_model, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let top: usize = args.get_or("top", 10)?;
    let mut runner = Runner::from_args(args)?;
    let (mut model, machine, mut out) = load_model(&mut runner, model_path)?;
    model.set_threads(args.get_or("threads", model.config().threads)?);
    let (dataset, warn) = load_dataset(&runner, data_path)?;
    out.push_str(&warn);
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    let (samples, warn) = align_samples(
        &runner,
        "analyze",
        machine.as_ref(),
        dataset.machine(),
        samples,
    )?;
    out.push_str(&warn);
    let estimate = EstimateStage { model: &model }.execute(samples, &mut runner.ctx)?;
    let report = AnalyzeStage::default().execute(estimate, &mut runner.ctx)?;
    write!(
        out,
        "workload: {label}\nensemble throughput estimate: {:.4}\n\n",
        report.throughput()
    )?;
    out.push_str(&report.to_table(top));
    let rows: Vec<Content> = report.top(top).iter().map(serde::to_content).collect();
    let result = json::obj(vec![
        ("workload", json::s(label)),
        ("throughput", json::f(report.throughput())),
        ("rows", Content::Seq(rows)),
        (
            "machine",
            json::machine_pair(machine.as_ref(), dataset.machine()),
        ),
    ]);
    runner.finish(args, "analyze", out, result)
}
