//! `spire client`: a test client for a running spire-serve daemon.
//!
//! One request per invocation: `--addr` plus a request kind, with
//! dataset-backed sample payloads for estimate/analyze. Shed responses
//! map to the degraded exit code (2) — the daemon answered, but refused
//! the work — while other request failures are plain errors (1).

use std::fmt::Write as _;
use std::path::Path;

use std::time::Duration;

use serde::Content;
use spire_counters::Dataset;
use spire_serve::{Client, ClientConfig, Response};

use crate::args::Args;
use crate::commands::{CmdOutput, CmdResult};

use super::json;

fn render(response: &Response) -> Result<String, super::CmdError> {
    let mut out = String::new();
    writeln!(out, "kind: {}", response.kind)?;
    if let Some(fp) = &response.fingerprint {
        writeln!(out, "fingerprint: {fp}")?;
    }
    if let Some(machine) = &response.machine {
        writeln!(out, "machine: {}", machine.tag())?;
    }
    if let Some(t) = response.throughput {
        writeln!(out, "throughput: {t:.6}")?;
    }
    if let Some(rows) = &response.ranked {
        for row in rows {
            writeln!(
                out,
                "  {:<10} {:>12.4}  {}",
                row.abbr.as_deref().unwrap_or("-"),
                row.estimate,
                row.metric
            )?;
        }
    }
    if let Some(per_metric) = &response.per_metric {
        writeln!(out, "metrics contributing: {}", per_metric.len())?;
    }
    if let (Some(seq), Some(applied)) = (response.seq, response.applied) {
        writeln!(
            out,
            "seq: {seq} ({})",
            if applied { "applied" } else { "deduplicated" }
        )?;
    }
    if let Some(report) = &response.update {
        writeln!(out, "update: {}", report.summary())?;
    }
    if let Some(info) = &response.reloaded {
        writeln!(
            out,
            "reloaded: {} -> {}{}",
            info.old_fingerprint,
            info.new_fingerprint,
            if info.salvaged { " (salvaged)" } else { "" }
        )?;
    }
    if let Some(stats) = &response.stats {
        writeln!(
            out,
            "connections: {}, requests: {}",
            stats.connections, stats.requests
        )?;
        for m in &stats.models {
            writeln!(
                out,
                "model {} [{}]{}: {} metrics, {} estimates, {} analyzes, {} updates, \
                 {} shed, {} cache hits, {} reloads{}",
                m.name,
                m.fingerprint,
                m.machine
                    .as_ref()
                    .map(|s| format!(" on {}", s.name))
                    .unwrap_or_default(),
                m.metrics,
                m.estimates,
                m.analyzes,
                m.updates,
                m.shed,
                m.cache_hits,
                m.reloads,
                m.last_seq.map(|s| format!(", seq {s}")).unwrap_or_default()
            )?;
        }
    }
    if let Some(true) = response.cached {
        writeln!(out, "cached: true")?;
    }
    Ok(out)
}

pub(crate) fn run(args: &Args) -> CmdResult {
    let addr = args.require("addr")?;
    let kind = args
        .positionals()
        .get(1)
        .map(String::as_str)
        .or_else(|| args.get("kind"))
        .ok_or(
            "client requires a request kind \
             (ping, estimate, analyze, update, reload, stats, shutdown)",
        )?;
    let config = ClientConfig {
        read_timeout: Duration::from_millis(args.get_or("timeout-ms", 30_000)?),
        retries: args.get_or("retries", 0)?,
        seed: args.get_or("seed", 1)?,
        ..ClientConfig::default()
    };

    // `ping --wait` polls until the daemon is ready (or the read timeout
    // elapses) — the scriptable readiness check CI uses instead of
    // sleep loops.
    let mut client = if kind == "ping" && args.flag("wait") {
        Client::wait_ready(
            addr,
            config,
            Duration::from_millis(args.get_or("timeout-ms", 10_000)?),
        )
        .map_err(|e| format!("daemon at {addr} did not become ready: {e}"))?
    } else {
        Client::connect_with(addr, config).map_err(|e| format!("cannot connect to {addr}: {e}"))?
    };

    let response = match kind {
        "ping" => client.ping(),
        "stats" => client.stats(),
        "shutdown" => client.shutdown(),
        "reload" => {
            let model = args.require("model")?;
            client.reload(model, args.get("path").map(Path::new))
        }
        "estimate" | "analyze" | "update" => {
            let model = args.require("model")?;
            let data_path = args.require("data")?;
            let label = args.require("workload")?;
            let dataset = Dataset::load(data_path)?;
            let samples = dataset
                .get(label)
                .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
            match kind {
                "estimate" => client.estimate(model, samples),
                "update" => {
                    client.update_tagged(model, samples, args.get("key"), dataset.machine())
                }
                _ => {
                    let top = match args.get("top") {
                        Some(_) => Some(args.get_or("top", 10)?),
                        None => None,
                    };
                    client.analyze(model, samples, top)
                }
            }
        }
        other => return Err(format!("unknown request kind `{other}`").into()),
    }
    .map_err(|e| format!("request failed: {e}"))?;

    // A shed is a typed refusal under load: degraded, not failed.
    let shed = response.shed == Some(true);
    if !response.ok && !shed {
        return Err(response
            .error
            .clone()
            .unwrap_or_else(|| "server returned an error".to_owned())
            .into());
    }
    let text = if args.flag("json") {
        let result: Content = serde::to_content(&response);
        json::envelope("client", shed, &[], result)?
    } else if shed {
        format!(
            "request shed: {}\n",
            response.error.as_deref().unwrap_or("queue full")
        )
    } else {
        render(&response)?
    };
    Ok(CmdOutput {
        text,
        degraded: shed,
    })
}
