//! `spire coverage`: sampling-coverage diagnostics for one collected
//! workload.

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, load_dataset, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let n: usize = args.get_or("n", 15)?;
    let runner = Runner::from_args(args)?;
    let (dataset, warn) = load_dataset(&runner, data_path)?;
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    // Without a session record, measure fractions against the longest
    // per-metric observation window.
    let session_time = samples
        .by_metric()
        .map(|(_, column)| column.total_time())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let report = match dataset.report(label) {
        Some(ingest) => spire_counters::CoverageReport::with_ingest(samples, session_time, ingest),
        None => spire_counters::CoverageReport::new(samples, session_time),
    };
    let (lo, hi) = report.fraction_range();
    let mut out = warn;
    out.push_str(&format!(
        "workload: {label}
metrics: {} | coverage fraction range: {:.2}%..{:.2}%

",
        report.per_metric().len(),
        lo * 100.0,
        hi * 100.0
    ));
    out.push_str(&report.to_table(n));
    let suspects = report.phase_suspects(0.3);
    if !suspects.is_empty() {
        out.push_str(&format!(
            "
{} metrics show strong throughput variation (cv > 0.3): possible phase behaviour
",
            suspects.len()
        ));
    }
    let result = json::obj(vec![
        ("workload", json::s(label)),
        ("metrics", json::u(report.per_metric().len())),
        ("fraction_lo", json::f(lo)),
        ("fraction_hi", json::f(hi)),
        ("phase_suspects", json::u(suspects.len())),
        ("report", serde::to_content(&report)),
    ]);
    runner.finish(args, "coverage", out, result)
}
