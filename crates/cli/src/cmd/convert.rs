//! `spire convert`: translate a dataset between the JSON interchange
//! format and the `SPIRECOL` binary column format.
//!
//! The round trip is lossless: JSON → binary → JSON reproduces the
//! source file byte for byte (BTreeMap label order, exact f64 bits, and
//! stored ingest reports all survive via the column file's metadata
//! blob). The input format is sniffed from the file contents, so
//! `convert` also works as a re-encoder (binary → binary rewrites with
//! fresh checksums; JSON → JSON canonicalizes).

use serde::Content;

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, load_dataset, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let out_path = args.require("out")?;
    let to = args.get("to").unwrap_or("binary");
    let runner = Runner::from_args(args)?;
    let (dataset, mut log) = load_dataset(&runner, data_path)?;
    let in_bytes = std::fs::metadata(data_path)?.len() as usize;
    let out_bytes = match to {
        "binary" => {
            let bytes = dataset.to_colfile_bytes();
            spire_core::write_atomic_bytes(std::path::Path::new(out_path), &bytes)?;
            bytes.len()
        }
        "json" => {
            let text = dataset
                .to_json()
                .map_err(|e| format!("encode failed: {e}"))?;
            spire_core::write_atomic(std::path::Path::new(out_path), &text)?;
            text.len()
        }
        other => return Err(format!("unknown target format `{other}` (binary|json)").into()),
    };
    let workloads = dataset.iter().count();
    log.push_str(&format!(
        "converted {data_path} ({in_bytes} bytes) -> {to} {out_path} ({out_bytes} bytes)\n\
         {workloads} workloads, {} samples\n",
        dataset.total_samples()
    ));
    let result = json::obj(vec![
        ("data", json::s(data_path)),
        ("out", json::s(out_path)),
        ("to", json::s(to)),
        ("workloads", json::u(workloads)),
        ("samples", json::u(dataset.total_samples())),
        ("in_bytes", json::u(in_bytes)),
        ("out_bytes", json::u(out_bytes)),
        (
            "reports_carried",
            Content::Bool(dataset.reports().next().is_some()),
        ),
        ("machine", json::machine(dataset.machine())),
    ]);
    runner.finish(args, "convert", log, result)
}
