//! `spire ingest` / `import-perf`: fault-tolerant `perf stat` CSV import
//! through the counters crate's pipeline stage.

use spire_core::pipeline::Stage;
use spire_counters::{Dataset, IngestStage};

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let csv_path = args.require("csv")?;
    let out_path = args.require("out")?;
    let label = args.get("label").unwrap_or("imported");
    let mut runner = Runner::from_args(args)?;
    let text = std::fs::read_to_string(csv_path)?;
    let stage = IngestStage {
        label: label.to_owned(),
    };
    // In strict mode the stage fails when over budget, before anything is
    // written — the partial dataset only survives lenient runs.
    let out = stage.execute(text, &mut runner.ctx)?;
    // The full table embeds the summary as its first line.
    let mut log = if args.flag("ingest-report") {
        out.report.to_table(20)
    } else {
        format!("{}\n", out.report.summary())
    };
    let n = out.samples.len();
    let report_json = serde::to_content(&out.report);
    let mut dataset = Dataset::new();
    dataset.insert_with_report(label, out.samples, out.report);
    if args.flag("binary") {
        dataset.save_binary(out_path)?;
    } else {
        dataset.save(out_path)?;
    }
    log.push_str(&format!(
        "imported {n} samples as `{label}` into {out_path}\n"
    ));
    let result = json::obj(vec![
        ("out", json::s(out_path)),
        ("label", json::s(label)),
        ("samples", json::u(n)),
        ("report", report_json),
    ]);
    runner.finish(args, "ingest", log, result)
}
