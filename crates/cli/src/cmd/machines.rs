//! `spire machines`: inspect the microarchitecture catalog.
//!
//! * `spire machines` / `spire machines list` — every catalog machine
//!   with its fingerprint and derived peaks;
//! * `spire machines show <name|path>` — one machine in full (config
//!   included), accepting a custom machine JSON file as well;
//! * `spire machines export <name|path> [--out FILE]` — the machine's
//!   JSON definition, ready to edit into a custom machine.

use std::fmt::Write as _;

use serde::Content;
use spire_sim::{Machine, MachineCatalog};

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, resolve_machine_selector, Runner};

/// `(level, lines/cycle)` bandwidth pairs in the peaks' sorted order.
fn bandwidth_rows(machine: &Machine) -> Vec<(String, f64)> {
    machine.peaks().bandwidth.into_iter().collect()
}

/// The bandwidth object for a machine's `--json` row.
fn bandwidth_obj(machine: &Machine) -> Content {
    Content::Map(
        bandwidth_rows(machine)
            .into_iter()
            .map(|(level, value)| (Content::Str(level), json::f(value)))
            .collect(),
    )
}

/// One machine's summary row: name, description, fingerprint, peaks.
fn machine_row(machine: &Machine) -> Vec<(&'static str, Content)> {
    let spec = machine.spec();
    vec![
        ("name", json::s(machine.name.as_str())),
        ("description", json::s(machine.description.as_str())),
        ("fingerprint", json::s(spec.fingerprint.as_str())),
        ("peak_throughput", json::f(spec.peaks.throughput)),
        ("bandwidth", bandwidth_obj(machine)),
    ]
}

fn render_machine(out: &mut String, machine: &Machine) -> Result<(), std::fmt::Error> {
    let spec = machine.spec();
    writeln!(out, "{} [{}]", machine.name, spec.fingerprint)?;
    writeln!(out, "  {}", machine.description)?;
    writeln!(
        out,
        "  peak throughput: {} uops/cycle",
        spec.peaks.throughput
    )?;
    for (level, value) in bandwidth_rows(machine) {
        writeln!(out, "  peak {level} bandwidth: {value:.4} lines/cycle")?;
    }
    Ok(())
}

fn list(args: &Args, runner: &Runner) -> CmdResult {
    let catalog = MachineCatalog::builtin();
    let mut out = String::new();
    let mut rows = Vec::new();
    for machine in catalog.machines() {
        render_machine(&mut out, machine)?;
        rows.push(json::obj(machine_row(machine)));
    }
    let result = json::obj(vec![
        ("machines", Content::Seq(rows)),
        ("default", json::s(spire_sim::DEFAULT_MACHINE)),
    ]);
    runner.finish(args, "machines", out, result)
}

fn show(args: &Args, runner: &Runner, selector: &str) -> CmdResult {
    let machine = resolve_machine_selector(selector)?;
    let mut out = String::new();
    render_machine(&mut out, &machine)?;
    let config = serde::to_content(&machine.config);
    let mut fields = machine_row(&machine);
    fields.push(("config", config));
    runner.finish(args, "machines", out, json::obj(fields))
}

fn export(args: &Args, runner: &Runner, selector: &str) -> CmdResult {
    let machine = resolve_machine_selector(selector)?;
    let text = machine.to_json();
    let spec = machine.spec();
    let (out, dest) = match args.get("out") {
        Some(path) => {
            spire_core::write_atomic(std::path::Path::new(path), &text)?;
            (
                format!("exported machine `{}` to {path}\n", machine.name),
                json::s(path),
            )
        }
        None => (text, Content::Null),
    };
    let result = json::obj(vec![
        ("name", json::s(machine.name.as_str())),
        ("fingerprint", json::s(spec.fingerprint.as_str())),
        ("out", dest),
    ]);
    runner.finish(args, "machines", out, result)
}

pub(crate) fn run(args: &Args) -> CmdResult {
    let runner = Runner::from_args(args)?;
    let sub = args
        .positionals()
        .get(1)
        .map(String::as_str)
        .unwrap_or("list");
    match sub {
        "list" => list(args, &runner),
        "show" | "export" => {
            let selector = args
                .positionals()
                .get(2)
                .map(String::as_str)
                .ok_or_else(|| format!("usage: spire machines {sub} <name|machine.json>"))?;
            if sub == "show" {
                show(args, &runner, selector)
            } else {
                export(args, &runner, selector)
            }
        }
        other => Err(format!(
            "unknown machines subcommand `{other}` (expected list, show, or export)"
        )
        .into()),
    }
}
