//! `spire train`: dataset → Build → Train through the pipeline engine,
//! with model/snapshot persistence at the edges. With `--incremental`
//! the labeled sets feed an [`OnlineTrainer`] one batch per workload
//! through [`UpdateStage`] instead of one monolithic fit — the result is
//! bit-identical, and the per-batch `model_refit`/`model_unchanged`
//! events show how much of the model each workload actually moved.

use std::fmt::Write as _;
use std::path::Path;

use serde::Content;
use spire_core::pipeline::Pipeline;
use spire_core::pipeline::{BuildStage, Stage, TrainStage, UpdateStage};
use spire_core::{
    normalize_set, write_atomic, MachineSpec, ModelSnapshot, OnlineTrainer, TrainOutcome,
};

use crate::args::Args;
use crate::commands::CmdResult;

use super::{json, labeled_sets, load_dataset, Runner};

pub(crate) fn run(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let out_path = args.get("out");
    let snapshot_path = args.get("snapshot");
    if out_path.is_none() && snapshot_path.is_none() {
        return Err("train requires --out and/or --snapshot".into());
    }
    let mut runner = Runner::from_args(args)?;
    let (dataset, mut log) = load_dataset(&runner, data_path)?;
    if args.flag("ingest-report") {
        let mut any = false;
        for (label, report) in dataset.reports() {
            any = true;
            writeln!(log, "{label}: {}", report.summary())?;
            if report.degraded {
                writeln!(log, "  warning: capture is degraded (possibly incomplete)")?;
            }
        }
        if !any {
            writeln!(log, "no ingest reports stored in {data_path}")?;
        }
        log.push('\n');
    }
    // `--normalize` trains a hardware-agnostic model: every sample is
    // divided by the dataset machine's peak throughput, and the snapshot's
    // machine tag flips to the normalized variant so estimate/analyze know
    // to normalize incoming data the same way.
    let normalize = args.flag("normalize");
    let machine: Option<MachineSpec> = match (normalize, dataset.machine()) {
        (true, Some(m)) => {
            runner.ctx.note(
                "train",
                format!(
                    "peak-normalizing samples by {} (peak throughput {})",
                    m.tag(),
                    m.peaks.throughput
                ),
            );
            Some(m.as_normalized())
        }
        (true, None) => {
            return Err("--normalize requires machine provenance on the dataset \
                        (collect it with `spire collect --machine ...`)"
                .into())
        }
        (false, m) => m.cloned(),
    };
    let mut sets = labeled_sets(&dataset);
    if normalize {
        let peaks = &dataset.machine().expect("checked above").peaks;
        for (_, set) in &mut sets {
            *set = normalize_set(set, peaks);
        }
    }
    let outcome = if args.flag("incremental") {
        let mut trainer = OnlineTrainer::new(
            runner.ctx.config.train.clone(),
            runner.ctx.config.strictness,
        )?;
        let mut last = None;
        for (label, set) in sets {
            let (next, outcome) = UpdateStage.execute((trainer, set), &mut runner.ctx)?;
            trainer = next;
            writeln!(log, "{label}: {}", outcome.update.summary())?;
            last = Some(outcome);
        }
        let last = last.ok_or("dataset has no workloads")?;
        log.push('\n');
        let model = trainer
            .model()
            .cloned()
            .ok_or("incremental training committed no model")?;
        TrainOutcome {
            model,
            report: last.report,
            fit_notices: last.fit_notices,
        }
    } else {
        Pipeline::new(BuildStage)
            .then(TrainStage)
            .run(sets, &mut runner.ctx)?
    };
    writeln!(log, "{}", outcome.report.to_table(10))?;
    if let Some(path) = out_path {
        write_atomic(Path::new(path), &serde_json::to_string(&outcome.model)?)?;
        writeln!(log, "wrote model to {path}")?;
    }
    if let Some(path) = snapshot_path {
        let mut provenance = dataset.provenance(Some(data_path));
        provenance.machine = machine.clone();
        let snapshot = ModelSnapshot::from_model(&outcome.model)?
            .with_provenance(provenance)
            .with_train_report(outcome.report.clone());
        write_atomic(Path::new(path), &snapshot.to_json())?;
        writeln!(
            log,
            "wrote snapshot (format v{}, {} checksummed records) to {path}",
            spire_core::SNAPSHOT_FORMAT_VERSION,
            outcome.model.metric_count()
        )?;
    }
    writeln!(
        log,
        "trained {} metric rooflines from {} samples",
        outcome.model.metric_count(),
        dataset.total_samples()
    )?;
    let result = json::obj(vec![
        ("data", json::s(data_path)),
        ("model_out", json::opt_s(out_path)),
        ("snapshot_out", json::opt_s(snapshot_path)),
        ("metrics", json::u(outcome.model.metric_count())),
        ("samples", json::u(dataset.total_samples())),
        ("machine", json::machine(machine.as_ref())),
        ("normalized", Content::Bool(normalize)),
        ("report", serde::to_content(&outcome.report)),
        (
            "fit_notices",
            Content::Seq(
                outcome
                    .fit_notices
                    .iter()
                    .map(|n| {
                        json::obj(vec![
                            ("metric", json::s(n.metric.as_str())),
                            ("original", json::u(n.original)),
                            ("retained", json::u(n.retained)),
                            ("cap", json::u(n.cap)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    runner.finish(args, "train", log, result)
}
