//! The `spire` command dispatcher. Each subcommand lives in its own
//! module under [`crate::cmd`]; they return a [`CmdOutput`] so the logic
//! is testable without capturing stdout, and so partial success (a
//! degraded-but-usable result) is visible to the process exit code.
//!
//! Every command runs through the `spire_core::pipeline` engine: a
//! [`RunContext`](spire_core::RunContext) carries the run's configuration
//! and a diagnostics bus of typed events, and the degraded flag (exit
//! code 2) is derived from that event stream rather than tracked ad hoc.

use std::error::Error;

use crate::args::Args;
use crate::cmd;

/// Process exit code for full success.
pub const EXIT_OK: i32 = 0;
/// Process exit code for failure (the command could not complete).
pub const EXIT_FAILURE: i32 = 1;
/// Process exit code for partial success: the command completed, but some
/// inputs were quarantined or dropped along the way (lenient training with
/// quarantined metrics, a salvaged snapshot, an ingest with quarantined
/// rows). Scripts that require pristine runs should treat 2 like 1;
/// pipelines that tolerate degradation can treat it like 0.
pub const EXIT_DEGRADED: i32 = 2;

/// A command's printable output plus whether the run was degraded
/// (mapped to [`EXIT_DEGRADED`] by the binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// `true` when the command completed by dropping or quarantining part
    /// of its input — derived from the diagnostics bus.
    pub degraded: bool,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        CmdOutput {
            text,
            degraded: false,
        }
    }
}

/// A [`CmdOutput`] derefs to its text, so callers that only care about
/// stdout (tests, the usage path) can treat it as a string.
impl std::ops::Deref for CmdOutput {
    type Target = str;

    fn deref(&self) -> &str {
        &self.text
    }
}

/// Convenience alias for command results.
pub type CmdResult = Result<CmdOutput, Box<dyn Error + Send + Sync>>;

/// Top-level usage text.
pub const USAGE: &str = "\
spire — SPIRE performance-model toolkit (DATE 2025 reproduction)

USAGE: spire <command> [options]

COMMANDS:
  list-workloads                      list the 27-workload evaluation suite
  machines  [list|show M|export M]    inspect the microarchitecture catalog;
            [--out FILE]              M is a catalog name or a machine JSON
                                      file. export writes the editable JSON
                                      definition (custom-machine template).
  simulate  --workload N --config C   run one workload, print a TMA summary
            [--cycles X] [--seed S] [--machine M]
  collect   --out FILE [--cycles X]   sample the full suite into a dataset
            [--set train|test|all] [--seed S] [--interval X] [--slice X]
            [--machine M]             (--machine picks the simulated core
                                      from the catalog, or a machine JSON
                                      file; the dataset is tagged with it)
  train     --data FILE               train a SPIRE model from a dataset;
            [--out FILE]              --out writes the raw model JSON,
            [--snapshot FILE]         --snapshot writes a versioned,
            [--min-samples N]         checksummed snapshot with provenance
            [--threads N]             (at least one of the two is
            [--metric-budget F]       required). Training is fault-
            [--max-front N]           isolated: failing metrics are
            [--thin-front]            quarantined up to --metric-budget
            [--strict]                (default 0.5) unless --strict, which
            [--ingest-report]         fails on the first bad metric.
            [--incremental]           --ingest-report prints the stored
            [--normalize]             ingest provenance before training.
                                      --normalize divides samples by the
                                      dataset machine's peaks, producing a
                                      hardware-agnostic model usable
                                      across machines.
                                      --thin-front re-enables lossy Pareto
                                      front thinning above --max-front
                                      samples (default 2048); without it
                                      the full front is always fitted.
                                      --incremental trains through the
                                      online maintenance layer, one batch
                                      per workload (identical model).
  update    --model SNAPSHOT          incrementally update an existing
            --data FILE [BATCH...]    snapshot: --data is the dataset the
            [--snapshot-out FILE]     snapshot was trained from, each
            [--out-delta FILE]        positional BATCH is a dataset of new
            [--threads N] [--strict]  samples. Only metrics whose Pareto
            [--via-server --addr A    front moved are refitted.
             --model NAME             --snapshot-out writes the updated
             [--retries N]            snapshot, --out-delta a delta with
             [--timeout-ms MS]]       the changed records only (at least
                                      one of the two is required); both
                                      writes are atomic. --via-server
                                      streams the batches to a running
                                      daemon's journaled update endpoint
                                      instead (--model is then the served
                                      model name); each batch carries an
                                      idempotency key so retries are safe.
  analyze   --model FILE --data FILE  rank bottleneck metrics for a workload
            --workload LABEL          (--model accepts a snapshot or raw
            [--top K] [--threads N]   model JSON; corrupted snapshot
            [--strict]                records are dropped unless --strict)
  estimate  --model FILE --data FILE  just the ensemble throughput estimate
            --workload LABEL          for a workload (same --model handling
            [--threads N] [--strict]  as analyze)
  tma       --workload N --config C   full TMA breakdown for one workload
            [--cycles X] [--seed S] [--machine M]
  ingest    --csv FILE --out FILE     fault-tolerant import of `perf stat
            [--label L]               -I -x,` output: counts are scaled by
            [--min-frac F]            1/running_frac (multiplex correction,
            [--budget F]              disable with --no-scale), broken rows
            [--no-scale] [--strict]   are quarantined under an error budget,
            [--ingest-report]         and the ingest report is stored with
            [--binary]                the dataset (alias: import-perf;
                                      --strict fails when over budget;
                                      --binary writes the SPIRECOL column
                                      format instead of JSON)
  convert   --data FILE --out FILE    re-encode a dataset: --to binary
            [--to binary|json]        (default) writes the `SPIRECOL`
            [--strict]                checksummed column format, --to json
                                      the interchange JSON. Input format
                                      is sniffed; the round trip is
                                      byte-identical and keeps stored
                                      ingest reports. Damaged binary
                                      chunks are quarantined unless
                                      --strict, which refuses them.
  plot      --model FILE --data FILE  render a metric's learned roofline
            --metric EVENT --out SVG  with its samples (add --linear for
            [--workload LABEL]        a linear-scale zoom)
  coverage  --data FILE               sampling-coverage diagnostics for a
            --workload LABEL [--n K]  collected workload (multiplex column
                                      filled from the stored ingest report)
  serve     NAME=MODEL [NAME=MODEL..] run the resident estimation daemon on
            [--addr HOST:PORT]        a length-prefixed TCP protocol; models
            [--workers N] [--queue N] hot-reload by atomic swap, same-model
            [--cache N] [--max-batch N] requests coalesce into one batched
            [--max-frame BYTES]       SoA pass, and a full queue sheds with
            [--events FILE] [--strict] a typed refusal (--events appends the
            [--wal-dir DIR]           diagnostics stream as JSON lines).
            [--wal-compact N]         --wal-dir enables durable `update`
            [--dedup-window N]        requests behind a checksummed
            [--restart-budget N]      write-ahead journal, replayed on
                                      restart; --restart-budget caps
                                      panicked-worker respawns before the
                                      daemon degrades to read-only.
  client    KIND --addr HOST:PORT     one request against a running daemon:
            [--model NAME]            ping, stats, shutdown, reload
            [--data FILE              [--path NEWSNAPSHOT], or estimate /
             --workload LABEL]        analyze / update with samples from a
            [--top K] [--path FILE]   dataset (update: --key sets the
            [--key KEY]               idempotency key). A shed response
            [--timeout-ms MS]         exits 2 (degraded). ping --wait polls
            [--retries N] [--wait]    until the daemon is ready.

GLOBAL OPTIONS:
  --json    print a machine-readable envelope instead of the human text:
            {command, schema_version, degraded, events, result}. Uniform
            across every subcommand; see README \"Machine-readable
            output\" for the schema. The exit code is unchanged.

EXIT CODES:
  0  success
  2  partial success: the command completed but quarantined or dropped
     part of its input (degraded training, salvaged snapshot, lossy
     ingest)
  1  failure
";

/// Option names that are valueless switches rather than `--key value`.
pub(crate) const BOOL_FLAGS: &[&str] = &[
    "linear",
    "ingest-report",
    "binary",
    "strict",
    "no-scale",
    "thin-front",
    "incremental",
    "wait",
    "via-server",
    "json",
    "normalize",
];

/// Dispatches a command line (without the program name).
///
/// # Errors
///
/// Returns any command error; unknown commands produce the usage text as
/// an error message.
pub fn run(argv: &[String]) -> CmdResult {
    let args = Args::parse_with_flags(argv.iter().cloned(), BOOL_FLAGS)?;
    let Some(command) = args.positionals().first().map(String::as_str) else {
        return Ok(USAGE.to_owned().into());
    };
    match command {
        "list-workloads" => cmd::sim::list_workloads(&args),
        "simulate" => cmd::sim::simulate(&args),
        "collect" => cmd::collect::run(&args),
        "train" => cmd::train::run(&args),
        "update" => cmd::update::run(&args),
        "analyze" => cmd::analyze::run(&args),
        "estimate" => cmd::estimate::run(&args),
        "tma" => cmd::sim::tma(&args),
        "ingest" | "import-perf" => cmd::ingest::run(&args),
        "convert" => cmd::convert::run(&args),
        "plot" => cmd::plot::run(&args),
        "coverage" => cmd::coverage::run(&args),
        "serve" => cmd::serve::run(&args),
        "client" => cmd::client::run(&args),
        "machines" => cmd::machines::run(&args),
        "help" | "--help" => Ok(USAGE.to_owned().into()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    }
}
