//! Implementation of the `spire` subcommands. Each command returns its
//! output as a [`CmdOutput`] so the logic is testable without capturing
//! stdout, and so partial success (a degraded-but-usable result) is
//! visible to the process exit code.

use std::error::Error;
use std::fmt::Write as _;

use spire_core::catalog::MetricCatalog;
use spire_core::snapshot::load_model;
use spire_core::{
    BottleneckReport, FitOptions, ModelSnapshot, SnapshotMode, SpireModel, TrainConfig,
    TrainStrictness,
};
use spire_counters::{collect, Dataset, IngestConfig, SessionConfig};
use spire_sim::{Core, CoreConfig, Event};
use spire_tma::analyze;
use spire_workloads::{suite, WorkloadProfile};

use crate::args::Args;

/// Process exit code for full success.
pub const EXIT_OK: i32 = 0;
/// Process exit code for failure (the command could not complete).
pub const EXIT_FAILURE: i32 = 1;
/// Process exit code for partial success: the command completed, but some
/// inputs were quarantined or dropped along the way (lenient training with
/// quarantined metrics, a salvaged snapshot, an ingest with quarantined
/// rows). Scripts that require pristine runs should treat 2 like 1;
/// pipelines that tolerate degradation can treat it like 0.
pub const EXIT_DEGRADED: i32 = 2;

/// A command's printable output plus whether the run was degraded
/// (mapped to [`EXIT_DEGRADED`] by the binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// `true` when the command completed by dropping or quarantining part
    /// of its input.
    pub degraded: bool,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        CmdOutput {
            text,
            degraded: false,
        }
    }
}

/// A [`CmdOutput`] derefs to its text, so callers that only care about
/// stdout (tests, the usage path) can treat it as a string.
impl std::ops::Deref for CmdOutput {
    type Target = str;

    fn deref(&self) -> &str {
        &self.text
    }
}

/// Convenience alias for command results.
pub type CmdResult = Result<CmdOutput, Box<dyn Error + Send + Sync>>;

/// Top-level usage text.
pub const USAGE: &str = "\
spire — SPIRE performance-model toolkit (DATE 2025 reproduction)

USAGE: spire <command> [options]

COMMANDS:
  list-workloads                      list the 27-workload evaluation suite
  simulate  --workload N --config C   run one workload, print a TMA summary
            [--cycles X] [--seed S]
  collect   --out FILE [--cycles X]   sample the full suite into a dataset
            [--set train|test|all] [--seed S] [--interval X] [--slice X]
  train     --data FILE               train a SPIRE model from a dataset;
            [--out FILE]              --out writes the raw model JSON,
            [--snapshot FILE]         --snapshot writes a versioned,
            [--min-samples N]         checksummed snapshot with provenance
            [--threads N]             (at least one of the two is
            [--metric-budget F]       required). Training is fault-
            [--max-front N]           isolated: failing metrics are
            [--thin-front]            quarantined up to --metric-budget
            [--strict]                (default 0.5) unless --strict, which
            [--ingest-report]         fails on the first bad metric.
                                      --ingest-report prints the stored
                                      ingest provenance before training.
                                      --thin-front re-enables lossy Pareto
                                      front thinning above --max-front
                                      samples (default 2048); without it
                                      the full front is always fitted.
  analyze   --model FILE --data FILE  rank bottleneck metrics for a workload
            --workload LABEL          (--model accepts a snapshot or raw
            [--top K] [--threads N]   model JSON; corrupted snapshot
            [--strict]                records are dropped unless --strict)
  estimate  --model FILE --data FILE  just the ensemble throughput estimate
            --workload LABEL          for a workload (same --model handling
            [--threads N] [--strict]  as analyze)
  tma       --workload N --config C   full TMA breakdown for one workload
            [--cycles X] [--seed S]
  ingest    --csv FILE --out FILE     fault-tolerant import of `perf stat
            [--label L]               -I -x,` output: counts are scaled by
            [--min-frac F]            1/running_frac (multiplex correction,
            [--budget F]              disable with --no-scale), broken rows
            [--no-scale] [--strict]   are quarantined under an error budget,
            [--ingest-report]         and the ingest report is stored with
                                      the dataset (alias: import-perf;
                                      --strict fails when over budget)
  plot      --model FILE --data FILE  render a metric's learned roofline
            --metric EVENT --out SVG  with its samples (add --linear for
            [--workload LABEL]        a linear-scale zoom)
  coverage  --data FILE               sampling-coverage diagnostics for a
            --workload LABEL [--n K]  collected workload (multiplex column
                                      filled from the stored ingest report)

EXIT CODES:
  0  success
  2  partial success: the command completed but quarantined or dropped
     part of its input (degraded training, salvaged snapshot, lossy
     ingest)
  1  failure
";

/// Option names that are valueless switches rather than `--key value`.
const BOOL_FLAGS: &[&str] = &[
    "linear",
    "ingest-report",
    "strict",
    "no-scale",
    "thin-front",
];

/// Dispatches a command line (without the program name).
///
/// # Errors
///
/// Returns any command error; unknown commands produce the usage text as
/// an error message.
pub fn run(argv: &[String]) -> CmdResult {
    let args = Args::parse_with_flags(argv.iter().cloned(), BOOL_FLAGS)?;
    let Some(command) = args.positionals().first().map(String::as_str) else {
        return Ok(USAGE.to_owned().into());
    };
    match command {
        "list-workloads" => list_workloads(),
        "simulate" => simulate(&args),
        "collect" => collect_cmd(&args),
        "train" => train(&args),
        "analyze" => analyze_cmd(&args),
        "estimate" => estimate_cmd(&args),
        "tma" => tma_cmd(&args),
        "ingest" | "import-perf" => ingest_cmd(&args),
        "plot" => plot_cmd(&args),
        "coverage" => coverage_cmd(&args),
        "help" | "--help" => Ok(USAGE.to_owned().into()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    }
}

/// Loads a model from `path`, accepting either a versioned snapshot or the
/// legacy raw-model JSON, in the [`SnapshotMode`] chosen by `--strict`.
///
/// Returns the model, a log of any salvage (empty when pristine), and
/// whether the load was degraded.
fn load_model_arg(
    path: &str,
    strict: bool,
) -> Result<(SpireModel, String, bool), Box<dyn Error + Send + Sync>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read model file {path}: {e}"))?;
    let mode = if strict {
        SnapshotMode::Strict
    } else {
        SnapshotMode::Lenient
    };
    let (model, report) = load_model(&text, mode)?;
    let mut log = String::new();
    let mut degraded = false;
    if let Some(report) = &report {
        if report.is_degraded() {
            degraded = true;
            writeln!(
                log,
                "warning: salvaged snapshot {path}: {} of {} metric records dropped",
                report.dropped.len(),
                report.metrics_total
            )?;
            for d in &report.dropped {
                writeln!(log, "  dropped {}: {}", d.metric.as_str(), d.reason)?;
            }
        }
    }
    Ok((model, log, degraded))
}

fn find_workload(args: &Args) -> Result<WorkloadProfile, Box<dyn Error + Send + Sync>> {
    let name = args.require("workload")?;
    let config = args.get("config").unwrap_or("");
    suite::by_name(name, config)
        .ok_or_else(|| format!("no workload named `{name}` with config `{config}`").into())
}

fn list_workloads() -> CmdResult {
    let mut out = String::new();
    writeln!(
        out,
        "{:<18} {:<22} {:<16} set",
        "name", "config", "bottleneck"
    )?;
    for p in suite::training() {
        writeln!(
            out,
            "{:<18} {:<22} {:<16} train",
            p.name, p.config, p.expected_bottleneck
        )?;
    }
    for p in suite::testing() {
        writeln!(
            out,
            "{:<18} {:<22} {:<16} test",
            p.name, p.config, p.expected_bottleneck
        )?;
    }
    Ok(out.into())
}

fn simulate(args: &Args) -> CmdResult {
    let profile = find_workload(args)?;
    let cycles: u64 = args.get_or("cycles", 400_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cfg = CoreConfig::skylake_server();
    let mut core = Core::new(cfg);
    let mut stream = profile.stream(seed);
    let summary = core.run(&mut stream, cycles);
    let tma = analyze(core.counters(), &cfg);
    Ok(format!(
        "{} ({})\n  instructions: {}\n  cycles: {}\n  ipc: {:.3}\n  tma: {}\n  main: {}\n",
        profile.name,
        profile.config,
        summary.instructions,
        summary.cycles,
        summary.ipc(),
        tma.summary(),
        tma.main_category()
    )
    .into())
}

fn collect_cmd(args: &Args) -> CmdResult {
    let out_path = args.require("out")?;
    let which = args.get("set").unwrap_or("train");
    let seed: u64 = args.get_or("seed", 1)?;
    let mut session_cfg = SessionConfig::default();
    session_cfg.max_cycles = args.get_or("cycles", 2_000_000)?;
    session_cfg.interval_cycles = args.get_or("interval", session_cfg.interval_cycles)?;
    session_cfg.slice_cycles = args.get_or("slice", session_cfg.slice_cycles)?;

    let profiles = match which {
        "train" => suite::training(),
        "test" => suite::testing(),
        "all" => suite::all(),
        other => return Err(format!("--set must be train|test|all, got `{other}`").into()),
    };

    let mut dataset = Dataset::new();
    let mut log = String::new();
    for p in &profiles {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = p.stream(seed);
        let report = collect(&mut core, &mut stream, Event::ALL, &session_cfg);
        writeln!(
            log,
            "{} ({}): {} samples over {} intervals, overhead {:.2}%",
            p.name,
            p.config,
            report.samples.len(),
            report.intervals,
            report.overhead_fraction() * 100.0
        )?;
        dataset.insert(format!("{} ({})", p.name, p.config), report.samples);
    }
    dataset.save(out_path)?;
    writeln!(
        log,
        "wrote {} samples across {} workloads to {out_path}",
        dataset.total_samples(),
        dataset.len()
    )?;
    Ok(log.into())
}

fn train(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let out_path = args.get("out");
    let snapshot_path = args.get("snapshot");
    if out_path.is_none() && snapshot_path.is_none() {
        return Err("train requires --out and/or --snapshot".into());
    }
    let dataset = Dataset::load(data_path)?;
    let mut log = String::new();
    if args.flag("ingest-report") {
        let mut any = false;
        for (label, report) in dataset.reports() {
            any = true;
            writeln!(log, "{label}: {}", report.summary())?;
            if report.degraded {
                writeln!(log, "  warning: capture is degraded (possibly incomplete)")?;
            }
        }
        if !any {
            writeln!(log, "no ingest reports stored in {data_path}")?;
        }
        log.push('\n');
    }
    let fit_defaults = FitOptions::default();
    let config = TrainConfig {
        min_samples_per_metric: args.get_or("min-samples", 1)?,
        threads: args.get_or("threads", 0)?,
        metric_error_budget: args.get_or("metric-budget", 0.5)?,
        fit: FitOptions {
            max_front_size: args.get_or("max-front", fit_defaults.max_front_size)?,
            thin_front: args.flag("thin-front"),
            ..fit_defaults
        },
        ..TrainConfig::default()
    };
    let strictness = if args.flag("strict") {
        TrainStrictness::Strict
    } else {
        TrainStrictness::Lenient
    };
    let outcome = SpireModel::train_with_report(&dataset.merged(), config, strictness)?;
    writeln!(log, "{}", outcome.report.to_table(10))?;
    if let Some(path) = out_path {
        std::fs::write(path, serde_json::to_string(&outcome.model)?)?;
        writeln!(log, "wrote model to {path}")?;
    }
    if let Some(path) = snapshot_path {
        let snapshot = ModelSnapshot::from_model(&outcome.model)?
            .with_provenance(dataset.provenance(Some(data_path)))
            .with_train_report(outcome.report.clone());
        std::fs::write(path, snapshot.to_json())?;
        writeln!(
            log,
            "wrote snapshot (format v{}, {} checksummed records) to {path}",
            spire_core::SNAPSHOT_FORMAT_VERSION,
            outcome.model.metric_count()
        )?;
    }
    writeln!(
        log,
        "trained {} metric rooflines from {} samples",
        outcome.model.metric_count(),
        dataset.total_samples()
    )?;
    Ok(CmdOutput {
        text: log,
        degraded: outcome.report.is_degraded(),
    })
}

fn analyze_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let top: usize = args.get_or("top", 10)?;
    let (mut model, mut out, degraded) = load_model_arg(model_path, args.flag("strict"))?;
    model.set_threads(args.get_or("threads", model.config().threads)?);
    let dataset = Dataset::load(data_path)?;
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    let estimate = model.estimate(samples)?;
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
    write!(
        out,
        "workload: {label}\nensemble throughput estimate: {:.4}\n\n",
        report.throughput()
    )?;
    out.push_str(&report.to_table(top));
    Ok(CmdOutput {
        text: out,
        degraded,
    })
}

fn estimate_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let (mut model, mut out, degraded) = load_model_arg(model_path, args.flag("strict"))?;
    model.set_threads(args.get_or("threads", model.config().threads)?);
    let dataset = Dataset::load(data_path)?;
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    let estimate = model.estimate(samples)?;
    writeln!(
        out,
        "workload: {label}\nensemble throughput estimate: {:.6}",
        estimate.throughput()
    )?;
    if let Some((metric, value)) = estimate.primary_bottleneck() {
        writeln!(out, "primary bottleneck: {metric} ({value:.6})")?;
    }
    writeln!(
        out,
        "metrics contributing: {} of {} trained",
        estimate.per_metric().len(),
        model.metric_count()
    )?;
    Ok(CmdOutput {
        text: out,
        degraded,
    })
}

fn tma_cmd(args: &Args) -> CmdResult {
    let profile = find_workload(args)?;
    let cycles: u64 = args.get_or("cycles", 400_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cfg = CoreConfig::skylake_server();
    let mut core = Core::new(cfg);
    let mut stream = profile.stream(seed);
    core.run(&mut stream, cycles);
    let t = analyze(core.counters(), &cfg);
    let mut out = String::new();
    writeln!(out, "{} ({})", profile.name, profile.config)?;
    out.push_str(&t.to_tree());
    writeln!(out, "main bottleneck: {}", t.dominant_bottleneck())?;
    Ok(out.into())
}

fn coverage_cmd(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let n: usize = args.get_or("n", 15)?;
    let dataset = Dataset::load(data_path)?;
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    // Without a session record, measure fractions against the longest
    // per-metric observation window.
    let session_time = samples
        .by_metric()
        .map(|(_, column)| column.total_time())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let report = match dataset.report(label) {
        Some(ingest) => spire_counters::CoverageReport::with_ingest(samples, session_time, ingest),
        None => spire_counters::CoverageReport::new(samples, session_time),
    };
    let (lo, hi) = report.fraction_range();
    let mut out = format!(
        "workload: {label}
metrics: {} | coverage fraction range: {:.2}%..{:.2}%

",
        report.per_metric().len(),
        lo * 100.0,
        hi * 100.0
    );
    out.push_str(&report.to_table(n));
    let suspects = report.phase_suspects(0.3);
    if !suspects.is_empty() {
        out.push_str(&format!(
            "
{} metrics show strong throughput variation (cv > 0.3): possible phase behaviour
",
            suspects.len()
        ));
    }
    Ok(out.into())
}

fn plot_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let metric_name = args.require("metric")?;
    let out_path = args.require("out")?;
    let log_axes = !args.flag("linear");

    let (model, mut log, degraded) = load_model_arg(model_path, args.flag("strict"))?;
    let dataset = Dataset::load(data_path)?;
    let metric = spire_core::MetricId::new(metric_name);
    let roofline = model
        .roofline(&metric)
        .ok_or_else(|| format!("model has no roofline for `{metric_name}`"))?;

    // Plot against one workload's samples, or the whole dataset.
    let samples: Vec<spire_core::Sample> = match args.get("workload") {
        Some(label) => dataset
            .get(label)
            .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?
            .samples_for(&metric),
        None => {
            let mut v = Vec::new();
            for (_, set) in dataset.iter() {
                v.extend(set.samples_for(&metric));
            }
            v
        }
    };
    let chart = spire_plot::roofline_chart(roofline, samples.iter(), log_axes);
    std::fs::write(out_path, chart.to_svg(720, 480))?;
    writeln!(
        log,
        "plotted `{metric_name}` ({} samples) to {out_path}",
        samples.len()
    )?;
    Ok(CmdOutput {
        text: log,
        degraded,
    })
}

fn ingest_cmd(args: &Args) -> CmdResult {
    let csv_path = args.require("csv")?;
    let out_path = args.require("out")?;
    let label = args.get("label").unwrap_or("imported");
    let config = IngestConfig {
        min_running_frac: args.get_or("min-frac", 0.05)?,
        error_budget: args.get_or("budget", 0.5)?,
        scale_multiplexed: !args.flag("no-scale"),
        ..IngestConfig::default()
    };
    config.validate()?;
    let text = std::fs::read_to_string(csv_path)?;
    let out = spire_counters::ingest_perf_csv(&text, &config);
    // The full table embeds the summary as its first line.
    let mut log = if args.flag("ingest-report") {
        out.report.to_table(20)
    } else {
        format!("{}\n", out.report.summary())
    };
    if args.flag("strict") && out.report.budget_exceeded() {
        let report = out.report;
        return Err(spire_core::SpireError::ErrorBudgetExceeded {
            quarantined: report.rows_quarantined,
            total: report.rows_seen,
            budget: report.error_budget,
        }
        .into());
    }
    let n = out.samples.len();
    // Quarantined rows (or a capture the supervision layer flagged) mean
    // the dataset is usable but lossy — surface that via the exit code.
    let degraded = out.report.rows_quarantined > 0 || out.report.degraded;
    let mut dataset = Dataset::new();
    dataset.insert_with_report(label, out.samples, out.report);
    dataset.save(out_path)?;
    log.push_str(&format!(
        "imported {n} samples as `{label}` into {out_path}\n"
    ));
    Ok(CmdOutput {
        text: log,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::{Sample, SampleSet};

    fn run_str(argv: &[&str]) -> CmdResult {
        let v: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
        run(&v)
    }

    /// Writes a small three-metric dataset to `path` and returns it.
    fn write_dataset(path: &std::path::Path) -> Dataset {
        let mut set = SampleSet::new();
        for m in ["m_alpha", "m_beta", "m_gamma"] {
            for i in 1..6 {
                let s = Sample::new(m, 10.0, (5 * i) as f64, (10 - i) as f64).unwrap();
                set.push(s);
            }
        }
        let mut ds = Dataset::new();
        ds.insert("wl", set);
        ds.save(path).unwrap();
        ds
    }

    #[test]
    fn no_command_prints_usage() {
        let out = run_str(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_str(&["bogus"]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn list_workloads_has_27_rows() {
        let out = run_str(&["list-workloads"]).unwrap();
        // header + 27 entries
        assert_eq!(out.lines().count(), 28);
        assert!(out.contains("tnn"));
        assert!(out.contains("CUTCP"));
    }

    #[test]
    fn simulate_reports_ipc_and_tma() {
        let out = run_str(&[
            "simulate",
            "--workload",
            "tnn",
            "--config",
            "SqueezeNet v1.1",
            "--cycles",
            "50000",
        ])
        .unwrap();
        assert!(out.contains("ipc:"));
        assert!(out.contains("retiring"));
    }

    #[test]
    fn simulate_unknown_workload_errors() {
        let err = run_str(&["simulate", "--workload", "nope"]).unwrap_err();
        assert!(err.to_string().contains("no workload"));
    }

    #[test]
    fn tma_command_prints_the_tree() {
        let out = run_str(&[
            "tma",
            "--workload",
            "onnx",
            "--config",
            "T5 Encoder, Std.",
            "--cycles",
            "50000",
        ])
        .unwrap();
        assert!(out.contains("Memory Bound"));
        assert!(out.contains("Core Bound"));
        assert!(out.contains("main bottleneck: Memory"));
    }

    #[test]
    fn end_to_end_collect_train_analyze() {
        let dir = std::env::temp_dir().join("spire-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let model = dir.join("model.json");

        // Tiny collection run over the test set to stay fast.
        let out = run_str(&[
            "collect",
            "--out",
            data.to_str().unwrap(),
            "--set",
            "test",
            "--cycles",
            "60000",
            "--interval",
            "20000",
            "--slice",
            "1000",
        ])
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("trained"));

        let out = run_str(&[
            "analyze",
            "--model",
            model.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "tnn (SqueezeNet v1.1)",
            "--top",
            "5",
        ])
        .unwrap();
        assert!(out.contains("ensemble throughput estimate"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plot_writes_an_svg() {
        let dir = std::env::temp_dir().join("spire-cli-plot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let model = dir.join("model.json");
        let svg = dir.join("roofline.svg");
        run_str(&[
            "collect",
            "--out",
            data.to_str().unwrap(),
            "--set",
            "test",
            "--cycles",
            "60000",
            "--interval",
            "20000",
            "--slice",
            "1000",
        ])
        .unwrap();
        run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&[
            "plot",
            "--model",
            model.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--metric",
            "idq.dsb_uops",
            "--out",
            svg.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("plotted"));
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coverage_command_reports_fractions() {
        let dir = std::env::temp_dir().join("spire-cli-coverage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        run_str(&[
            "collect",
            "--out",
            data.to_str().unwrap(),
            "--set",
            "test",
            "--cycles",
            "60000",
            "--interval",
            "20000",
            "--slice",
            "1000",
        ])
        .unwrap();
        let out = run_str(&[
            "coverage",
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "tnn (SqueezeNet v1.1)",
        ])
        .unwrap();
        assert!(out.contains("coverage fraction range"));
        assert!(out.contains("time frac"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_scales_multiplexed_counts_and_stores_the_report() {
        let dir = std::env::temp_dir().join("spire-cli-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("perf.csv");
        let out_file = dir.join("imported.json");
        std::fs::write(
            &csv,
            "1.0,100,,inst_retired.any,1,100,,\n\
             1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
             1.0,7,,longest_lat_cache.miss,250000,25.00,,\n\
             broken line\n",
        )
        .unwrap();
        let out = run_str(&[
            "ingest",
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
            "--label",
            "mux",
            "--ingest-report",
        ])
        .unwrap();
        assert!(out.contains("1 quarantined"));
        assert!(out.contains("quarantine breakdown"));
        assert!(out.contains("imported 1 samples"));
        assert!(out.degraded, "quarantined rows must flag partial success");
        let ds = Dataset::load(&out_file).unwrap();
        // 7 counted over 25% of the interval -> 28 estimated.
        let s = ds.get("mux").unwrap().iter().next().unwrap();
        assert_eq!(s.metric_delta(), 28.0);
        assert_eq!(ds.report("mux").unwrap().rows_scaled, 1);

        // The stored report feeds the coverage table's mux column.
        let cov = run_str(&[
            "coverage",
            "--data",
            out_file.to_str().unwrap(),
            "--workload",
            "mux",
        ])
        .unwrap();
        assert!(cov.contains("25.0%"));

        // And train --ingest-report surfaces the provenance.
        let model = dir.join("model.json");
        let trained = run_str(&[
            "train",
            "--data",
            out_file.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--ingest-report",
        ])
        .unwrap();
        assert!(trained.contains("mux:"));
        assert!(trained.contains("trained"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_accepts_front_fitting_flags() {
        let dir = std::env::temp_dir().join("spire-cli-front-flags-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let model = dir.join("model.json");
        write_dataset(&data);
        let out = run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--max-front",
            "64",
            "--thin-front",
        ])
        .unwrap();
        assert!(out.contains("trained"));
        assert!(model.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_requires_an_output() {
        let err = run_str(&["train", "--data", "whatever.json"]).unwrap_err();
        assert!(err.to_string().contains("--out and/or --snapshot"));
    }

    #[test]
    fn train_snapshot_estimate_round_trip() {
        let dir = std::env::temp_dir().join("spire-cli-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let snap = dir.join("model.snapshot.json");
        write_dataset(&data);

        let out = run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote snapshot (format v1, 3 checksummed records)"));
        assert!(out.contains("trained 3/3 metrics"));
        assert!(!out.degraded);

        // The snapshot stores provenance from the dataset.
        let stored = ModelSnapshot::from_json(&std::fs::read_to_string(&snap).unwrap()).unwrap();
        let prov = stored.provenance.as_ref().unwrap();
        assert_eq!(prov.labels, ["wl"]);
        assert_eq!(prov.total_samples, 15);
        assert!(stored.train_report.is_some());

        // estimate and analyze load the snapshot without retraining.
        let common = [
            "--model",
            snap.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "wl",
        ];
        let mut argv = vec!["estimate"];
        argv.extend_from_slice(&common);
        let est = run_str(&argv).unwrap();
        assert!(est.contains("ensemble throughput estimate"));
        assert!(est.contains("primary bottleneck"));
        assert!(!est.degraded);
        let mut argv = vec!["analyze"];
        argv.extend_from_slice(&common);
        let ana = run_str(&argv).unwrap();
        assert!(ana.contains("ensemble throughput estimate"));
        assert!(!ana.degraded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_snapshot_salvages_leniently_and_refuses_strictly() {
        let dir = std::env::temp_dir().join("spire-cli-salvage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let snap = dir.join("model.snapshot.json");
        write_dataset(&data);
        run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .unwrap();

        // Corrupt one record's checksum on disk.
        let mut stored =
            ModelSnapshot::from_json(&std::fs::read_to_string(&snap).unwrap()).unwrap();
        stored.metrics[0].checksum = "0000000000000000".to_owned();
        std::fs::write(&snap, stored.to_json()).unwrap();

        let common = [
            "--model",
            snap.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "wl",
        ];
        // Lenient (default): completes on the surviving metrics, degraded.
        let mut argv = vec!["estimate"];
        argv.extend_from_slice(&common);
        let out = run_str(&argv).unwrap();
        assert!(out.degraded);
        assert!(out.contains("salvaged snapshot"));
        assert!(out.contains("dropped m_alpha"));
        assert!(out.contains("metrics contributing: 2 of 2 trained"));
        // Strict: refuses the artifact.
        argv.push("--strict");
        let err = run_str(&argv).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_ingest_fails_when_over_budget() {
        let dir = std::env::temp_dir().join("spire-cli-strict-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("garbage.csv");
        let out_file = dir.join("out.json");
        std::fs::write(&csv, "junk\nmore junk\nstill junk\n").unwrap();
        let common = [
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ];
        // Lenient mode saves the (empty) partial dataset.
        let mut argv = vec!["ingest"];
        argv.extend_from_slice(&common);
        assert!(run_str(&argv).unwrap().contains("3 quarantined"));
        // Strict mode refuses and writes nothing.
        std::fs::remove_file(&out_file).ok();
        argv.push("--strict");
        let err = run_str(&argv).unwrap_err();
        assert!(err.to_string().contains("error budget"));
        assert!(!out_file.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_scale_keeps_raw_counts() {
        let dir = std::env::temp_dir().join("spire-cli-noscale-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("perf.csv");
        let out_file = dir.join("out.json");
        std::fs::write(
            &csv,
            "1.0,100,,inst_retired.any,1,100,,\n\
             1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
             1.0,7,,longest_lat_cache.miss,250000,25.00,,\n",
        )
        .unwrap();
        run_str(&[
            "ingest",
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
            "--no-scale",
        ])
        .unwrap();
        let ds = Dataset::load(&out_file).unwrap();
        let s = ds.get("imported").unwrap().iter().next().unwrap();
        assert_eq!(s.metric_delta(), 7.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_perf_round_trips() {
        let dir = std::env::temp_dir().join("spire-cli-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("perf.csv");
        let out_file = dir.join("imported.json");
        std::fs::write(
            &csv,
            "1.0,100,,inst_retired.any,1,100,,\n\
             1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
             1.0,7,,longest_lat_cache.miss,1,100,,\n",
        )
        .unwrap();
        let out = run_str(&[
            "import-perf",
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
            "--label",
            "real-cpu",
        ])
        .unwrap();
        assert!(out.contains("imported 1 samples"));
        let ds = Dataset::load(&out_file).unwrap();
        assert_eq!(ds.get("real-cpu").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
