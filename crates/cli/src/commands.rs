//! Implementation of the `spire` subcommands. Each command returns its
//! output as a `String` so the logic is testable without capturing
//! stdout.

use std::error::Error;
use std::fmt::Write as _;

use spire_core::catalog::MetricCatalog;
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::{collect, Dataset, SessionConfig};
use spire_sim::{Core, CoreConfig, Event};
use spire_tma::analyze;
use spire_workloads::{suite, WorkloadProfile};

use crate::args::Args;

/// Convenience alias for command results.
pub type CmdResult = Result<String, Box<dyn Error + Send + Sync>>;

/// Top-level usage text.
pub const USAGE: &str = "\
spire — SPIRE performance-model toolkit (DATE 2025 reproduction)

USAGE: spire <command> [options]

COMMANDS:
  list-workloads                      list the 27-workload evaluation suite
  simulate  --workload N --config C   run one workload, print a TMA summary
            [--cycles X] [--seed S]
  collect   --out FILE [--cycles X]   sample the full suite into a dataset
            [--set train|test|all] [--seed S] [--interval X] [--slice X]
  train     --data FILE --out FILE    train a SPIRE model from a dataset
            [--min-samples N]         (--threads N fans per-metric fits
            [--threads N]             across N threads; 0 = auto)
  analyze   --model FILE --data FILE  rank bottleneck metrics for a workload
            --workload LABEL [--top K] [--threads N]
  tma       --workload N --config C   full TMA breakdown for one workload
            [--cycles X] [--seed S]
  import-perf --csv FILE --out FILE   convert `perf stat -I -x,` output
                                      into a SPIRE dataset (label: --label)
  plot      --model FILE --data FILE  render a metric's learned roofline
            --metric EVENT --out SVG  with its samples (add --linear for
            [--workload LABEL]        a linear-scale zoom)
  coverage  --data FILE               sampling-coverage diagnostics for a
            --workload LABEL [--n K]  collected workload
";

/// Dispatches a command line (without the program name).
///
/// # Errors
///
/// Returns any command error; unknown commands produce the usage text as
/// an error message.
pub fn run(argv: &[String]) -> CmdResult {
    let args = Args::parse(argv.iter().cloned())?;
    let Some(command) = args.positionals().first().map(String::as_str) else {
        return Ok(USAGE.to_owned());
    };
    match command {
        "list-workloads" => list_workloads(),
        "simulate" => simulate(&args),
        "collect" => collect_cmd(&args),
        "train" => train(&args),
        "analyze" => analyze_cmd(&args),
        "tma" => tma_cmd(&args),
        "import-perf" => import_perf(&args),
        "plot" => plot_cmd(&args),
        "coverage" => coverage_cmd(&args),
        "help" | "--help" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    }
}

fn find_workload(args: &Args) -> Result<WorkloadProfile, Box<dyn Error + Send + Sync>> {
    let name = args.require("workload")?;
    let config = args.get("config").unwrap_or("");
    suite::by_name(name, config)
        .ok_or_else(|| format!("no workload named `{name}` with config `{config}`").into())
}

fn list_workloads() -> CmdResult {
    let mut out = String::new();
    writeln!(
        out,
        "{:<18} {:<22} {:<16} set",
        "name", "config", "bottleneck"
    )?;
    for p in suite::training() {
        writeln!(
            out,
            "{:<18} {:<22} {:<16} train",
            p.name, p.config, p.expected_bottleneck
        )?;
    }
    for p in suite::testing() {
        writeln!(
            out,
            "{:<18} {:<22} {:<16} test",
            p.name, p.config, p.expected_bottleneck
        )?;
    }
    Ok(out)
}

fn simulate(args: &Args) -> CmdResult {
    let profile = find_workload(args)?;
    let cycles: u64 = args.get_or("cycles", 400_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cfg = CoreConfig::skylake_server();
    let mut core = Core::new(cfg);
    let mut stream = profile.stream(seed);
    let summary = core.run(&mut stream, cycles);
    let tma = analyze(core.counters(), &cfg);
    Ok(format!(
        "{} ({})\n  instructions: {}\n  cycles: {}\n  ipc: {:.3}\n  tma: {}\n  main: {}\n",
        profile.name,
        profile.config,
        summary.instructions,
        summary.cycles,
        summary.ipc(),
        tma.summary(),
        tma.main_category()
    ))
}

fn collect_cmd(args: &Args) -> CmdResult {
    let out_path = args.require("out")?;
    let which = args.get("set").unwrap_or("train");
    let seed: u64 = args.get_or("seed", 1)?;
    let mut session_cfg = SessionConfig::default();
    session_cfg.max_cycles = args.get_or("cycles", 2_000_000)?;
    session_cfg.interval_cycles = args.get_or("interval", session_cfg.interval_cycles)?;
    session_cfg.slice_cycles = args.get_or("slice", session_cfg.slice_cycles)?;

    let profiles = match which {
        "train" => suite::training(),
        "test" => suite::testing(),
        "all" => suite::all(),
        other => return Err(format!("--set must be train|test|all, got `{other}`").into()),
    };

    let mut dataset = Dataset::new();
    let mut log = String::new();
    for p in &profiles {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = p.stream(seed);
        let report = collect(&mut core, &mut stream, Event::ALL, &session_cfg);
        writeln!(
            log,
            "{} ({}): {} samples over {} intervals, overhead {:.2}%",
            p.name,
            p.config,
            report.samples.len(),
            report.intervals,
            report.overhead_fraction() * 100.0
        )?;
        dataset.insert(format!("{} ({})", p.name, p.config), report.samples);
    }
    dataset.save(out_path)?;
    writeln!(
        log,
        "wrote {} samples across {} workloads to {out_path}",
        dataset.total_samples(),
        dataset.len()
    )?;
    Ok(log)
}

fn train(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let out_path = args.require("out")?;
    let dataset = Dataset::load(data_path)?;
    let config = TrainConfig {
        min_samples_per_metric: args.get_or("min-samples", 1)?,
        threads: args.get_or("threads", 0)?,
        ..TrainConfig::default()
    };
    let model = SpireModel::train(&dataset.merged(), config)?;
    let json = serde_json::to_string(&model)?;
    std::fs::write(out_path, &json)?;
    Ok(format!(
        "trained {} metric rooflines from {} samples; wrote {out_path}\n",
        model.metric_count(),
        dataset.total_samples()
    ))
}

fn analyze_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let top: usize = args.get_or("top", 10)?;
    let mut model: SpireModel = serde_json::from_str(&std::fs::read_to_string(model_path)?)?;
    model.set_threads(args.get_or("threads", model.config().threads)?);
    let dataset = Dataset::load(data_path)?;
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    let estimate = model.estimate(samples)?;
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
    let mut out = format!(
        "workload: {label}\nensemble throughput estimate: {:.4}\n\n",
        report.throughput()
    );
    out.push_str(&report.to_table(top));
    Ok(out)
}

fn tma_cmd(args: &Args) -> CmdResult {
    let profile = find_workload(args)?;
    let cycles: u64 = args.get_or("cycles", 400_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cfg = CoreConfig::skylake_server();
    let mut core = Core::new(cfg);
    let mut stream = profile.stream(seed);
    core.run(&mut stream, cycles);
    let t = analyze(core.counters(), &cfg);
    let mut out = String::new();
    writeln!(out, "{} ({})", profile.name, profile.config)?;
    out.push_str(&t.to_tree());
    writeln!(out, "main bottleneck: {}", t.dominant_bottleneck())?;
    Ok(out)
}

fn coverage_cmd(args: &Args) -> CmdResult {
    let data_path = args.require("data")?;
    let label = args.require("workload")?;
    let n: usize = args.get_or("n", 15)?;
    let dataset = Dataset::load(data_path)?;
    let samples = dataset
        .get(label)
        .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?;
    // Without a session record, measure fractions against the longest
    // per-metric observation window.
    let session_time = samples
        .by_metric()
        .map(|(_, column)| column.total_time())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let report = spire_counters::CoverageReport::new(samples, session_time);
    let (lo, hi) = report.fraction_range();
    let mut out = format!(
        "workload: {label}
metrics: {} | coverage fraction range: {:.2}%..{:.2}%

",
        report.per_metric().len(),
        lo * 100.0,
        hi * 100.0
    );
    out.push_str(&report.to_table(n));
    let suspects = report.phase_suspects(0.3);
    if !suspects.is_empty() {
        out.push_str(&format!(
            "
{} metrics show strong throughput variation (cv > 0.3): possible phase behaviour
",
            suspects.len()
        ));
    }
    Ok(out)
}

fn plot_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let data_path = args.require("data")?;
    let metric_name = args.require("metric")?;
    let out_path = args.require("out")?;
    let log_axes = args.get("linear").is_none();

    let model: SpireModel = serde_json::from_str(&std::fs::read_to_string(model_path)?)?;
    let dataset = Dataset::load(data_path)?;
    let metric = spire_core::MetricId::new(metric_name);
    let roofline = model
        .roofline(&metric)
        .ok_or_else(|| format!("model has no roofline for `{metric_name}`"))?;

    // Plot against one workload's samples, or the whole dataset.
    let samples: Vec<spire_core::Sample> = match args.get("workload") {
        Some(label) => dataset
            .get(label)
            .ok_or_else(|| format!("dataset has no workload labeled `{label}`"))?
            .samples_for(&metric),
        None => {
            let mut v = Vec::new();
            for (_, set) in dataset.iter() {
                v.extend(set.samples_for(&metric));
            }
            v
        }
    };
    let chart = spire_plot::roofline_chart(roofline, samples.iter(), log_axes);
    std::fs::write(out_path, chart.to_svg(720, 480))?;
    Ok(format!(
        "plotted `{metric_name}` ({} samples) to {out_path}
",
        samples.len()
    ))
}

fn import_perf(args: &Args) -> CmdResult {
    let csv_path = args.require("csv")?;
    let out_path = args.require("out")?;
    let label = args.get("label").unwrap_or("imported");
    let text = std::fs::read_to_string(csv_path)?;
    let samples = spire_counters::perf::import_perf_stat(&text)?;
    let n = samples.len();
    let mut dataset = Dataset::new();
    dataset.insert(label, samples);
    dataset.save(out_path)?;
    Ok(format!(
        "imported {n} samples as `{label}` into {out_path}\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(argv: &[&str]) -> CmdResult {
        let v: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
        run(&v)
    }

    #[test]
    fn no_command_prints_usage() {
        let out = run_str(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_str(&["bogus"]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn list_workloads_has_27_rows() {
        let out = run_str(&["list-workloads"]).unwrap();
        // header + 27 entries
        assert_eq!(out.lines().count(), 28);
        assert!(out.contains("tnn"));
        assert!(out.contains("CUTCP"));
    }

    #[test]
    fn simulate_reports_ipc_and_tma() {
        let out = run_str(&[
            "simulate",
            "--workload",
            "tnn",
            "--config",
            "SqueezeNet v1.1",
            "--cycles",
            "50000",
        ])
        .unwrap();
        assert!(out.contains("ipc:"));
        assert!(out.contains("retiring"));
    }

    #[test]
    fn simulate_unknown_workload_errors() {
        let err = run_str(&["simulate", "--workload", "nope"]).unwrap_err();
        assert!(err.to_string().contains("no workload"));
    }

    #[test]
    fn tma_command_prints_the_tree() {
        let out = run_str(&[
            "tma",
            "--workload",
            "onnx",
            "--config",
            "T5 Encoder, Std.",
            "--cycles",
            "50000",
        ])
        .unwrap();
        assert!(out.contains("Memory Bound"));
        assert!(out.contains("Core Bound"));
        assert!(out.contains("main bottleneck: Memory"));
    }

    #[test]
    fn end_to_end_collect_train_analyze() {
        let dir = std::env::temp_dir().join("spire-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let model = dir.join("model.json");

        // Tiny collection run over the test set to stay fast.
        let out = run_str(&[
            "collect",
            "--out",
            data.to_str().unwrap(),
            "--set",
            "test",
            "--cycles",
            "60000",
            "--interval",
            "20000",
            "--slice",
            "1000",
        ])
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("trained"));

        let out = run_str(&[
            "analyze",
            "--model",
            model.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "tnn (SqueezeNet v1.1)",
            "--top",
            "5",
        ])
        .unwrap();
        assert!(out.contains("ensemble throughput estimate"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plot_writes_an_svg() {
        let dir = std::env::temp_dir().join("spire-cli-plot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        let model = dir.join("model.json");
        let svg = dir.join("roofline.svg");
        run_str(&[
            "collect",
            "--out",
            data.to_str().unwrap(),
            "--set",
            "test",
            "--cycles",
            "60000",
            "--interval",
            "20000",
            "--slice",
            "1000",
        ])
        .unwrap();
        run_str(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&[
            "plot",
            "--model",
            model.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--metric",
            "idq.dsb_uops",
            "--out",
            svg.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("plotted"));
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coverage_command_reports_fractions() {
        let dir = std::env::temp_dir().join("spire-cli-coverage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.json");
        run_str(&[
            "collect",
            "--out",
            data.to_str().unwrap(),
            "--set",
            "test",
            "--cycles",
            "60000",
            "--interval",
            "20000",
            "--slice",
            "1000",
        ])
        .unwrap();
        let out = run_str(&[
            "coverage",
            "--data",
            data.to_str().unwrap(),
            "--workload",
            "tnn (SqueezeNet v1.1)",
        ])
        .unwrap();
        assert!(out.contains("coverage fraction range"));
        assert!(out.contains("time frac"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_perf_round_trips() {
        let dir = std::env::temp_dir().join("spire-cli-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("perf.csv");
        let out_file = dir.join("imported.json");
        std::fs::write(
            &csv,
            "1.0,100,,inst_retired.any,1,100,,\n\
             1.0,50,,cpu_clk_unhalted.thread,1,100,,\n\
             1.0,7,,longest_lat_cache.miss,1,100,,\n",
        )
        .unwrap();
        let out = run_str(&[
            "import-perf",
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
            "--label",
            "real-cpu",
        ])
        .unwrap();
        assert!(out.contains("imported 1 samples"));
        let ds = Dataset::load(&out_file).unwrap();
        assert_eq!(ds.get("real-cpu").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
