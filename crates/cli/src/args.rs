//! Tiny hand-rolled argument parsing: `--key value` flags plus
//! positional arguments, no external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments: positionals plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Errors from argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` appeared with no following value.
    MissingValue(String),
    /// A required option was absent.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// The unparsable value.
        value: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "option --{flag} requires a value"),
            ArgsError::MissingOption(name) => write!(f, "required option --{name} is missing"),
            ArgsError::BadValue { option, value } => {
                write!(f, "option --{option} has unparsable value {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// One classified command-line word from an [`ArgCursor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgItem {
    /// A bare word (no `--` prefix).
    Positional(String),
    /// A valueless `--switch` named in the cursor's bool-flag set.
    Switch(String),
    /// A `--key value` pair.
    Value(String, String),
}

/// The one shared argument-classification loop: walks raw words and
/// yields [`ArgItem`]s, treating the keys named in `bool_flags` as
/// valueless switches. [`Args::parse_with_flags`] and the bench bins'
/// flag parsing are both built on this cursor, so there is exactly one
/// place that knows how `--key value` vs `--switch` disambiguation works.
#[derive(Debug)]
pub struct ArgCursor<I: Iterator<Item = String>> {
    raw: I,
    bool_flags: Vec<String>,
}

impl<I: Iterator<Item = String>> ArgCursor<I> {
    /// Builds a cursor over raw words (without the program name).
    pub fn new<J>(raw: J, bool_flags: &[&str]) -> Self
    where
        J: IntoIterator<IntoIter = I>,
    {
        ArgCursor {
            raw: raw.into_iter(),
            bool_flags: bool_flags.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

impl<I: Iterator<Item = String>> Iterator for ArgCursor<I> {
    type Item = Result<ArgItem, ArgsError>;

    fn next(&mut self) -> Option<Self::Item> {
        let word = self.raw.next()?;
        let Some(key) = word.strip_prefix("--") else {
            return Some(Ok(ArgItem::Positional(word)));
        };
        if self.bool_flags.iter().any(|f| f == key) {
            return Some(Ok(ArgItem::Switch(key.to_owned())));
        }
        Some(match self.raw.next() {
            Some(value) => Ok(ArgItem::Value(key.to_owned(), value)),
            None => Err(ArgsError::MissingValue(key.to_owned())),
        })
    }
}

impl Args {
    /// Parses a raw argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] if a `--flag` has no value.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::parse_with_flags(raw, &[])
    }

    /// Like [`Args::parse`], but the keys named in `bool_flags` are
    /// valueless switches: `--strict` records `strict = "true"` without
    /// consuming the next argument.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] if a non-switch `--flag` has no
    /// value.
    pub fn parse_with_flags<I, S>(raw: I, bool_flags: &[&str]) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        for item in ArgCursor::new(raw.into_iter().map(Into::into), bool_flags) {
            match item? {
                ArgItem::Positional(word) => out.positionals.push(word),
                ArgItem::Switch(key) => {
                    out.options.insert(key, "true".to_owned());
                }
                ArgItem::Value(key, value) => {
                    out.options.insert(key, value);
                }
            }
        }
        Ok(out)
    }

    /// Whether a boolean switch (see [`Args::parse_with_flags`]) was set.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }

    /// Positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingOption`] when absent.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgsError> {
        self.get(key).ok_or(ArgsError::MissingOption(key))
    }

    /// An optional parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                option: key.to_owned(),
                value: v.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_and_options() {
        let a = Args::parse(["cmd", "--x", "1", "pos2", "--y", "two"]).unwrap();
        assert_eq!(a.positionals(), ["cmd", "pos2"]);
        assert_eq!(a.get("x"), Some("1"));
        assert_eq!(a.get("y"), Some("two"));
        assert_eq!(a.get("z"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(matches!(
            Args::parse(["--flag"]),
            Err(ArgsError::MissingValue(_))
        ));
    }

    #[test]
    fn bool_flags_do_not_consume_values() {
        let a = Args::parse_with_flags(
            ["cmd", "--strict", "file.csv", "--budget", "0.2"],
            &["strict"],
        )
        .unwrap();
        assert_eq!(a.positionals(), ["cmd", "file.csv"]);
        assert!(a.flag("strict"));
        assert!(!a.flag("budget")); // has a value, not a switch
        assert_eq!(a.get("budget"), Some("0.2"));
        // A trailing switch needs no value.
        let b = Args::parse_with_flags(["--strict"], &["strict"]).unwrap();
        assert!(b.flag("strict"));
    }

    #[test]
    fn arg_cursor_classifies_words() {
        let items: Vec<ArgItem> = ArgCursor::new(
            ["cmd", "--strict", "--seed", "7", "pos"].map(String::from),
            &["strict"],
        )
        .collect::<Result<_, _>>()
        .unwrap();
        assert_eq!(
            items,
            [
                ArgItem::Positional("cmd".into()),
                ArgItem::Switch("strict".into()),
                ArgItem::Value("seed".into(), "7".into()),
                ArgItem::Positional("pos".into()),
            ]
        );
        let mut cursor = ArgCursor::new(["--seed"].map(String::from), &[]);
        assert!(matches!(
            cursor.next(),
            Some(Err(ArgsError::MissingValue(_)))
        ));
    }

    #[test]
    fn require_and_get_or() {
        let a = Args::parse(["--n", "5"]).unwrap();
        assert_eq!(a.require("n").unwrap(), "5");
        assert!(matches!(a.require("m"), Err(ArgsError::MissingOption("m"))));
        assert_eq!(a.get_or("n", 1u64).unwrap(), 5);
        assert_eq!(a.get_or("m", 7u64).unwrap(), 7);
        let bad = Args::parse(["--n", "xyz"]).unwrap();
        assert!(matches!(
            bad.get_or::<u64>("n", 0),
            Err(ArgsError::BadValue { .. })
        ));
    }
}
