//! # spire-cli
//!
//! The `spire` command-line interface: collect counter samples from the
//! simulated CPU (or import real `perf stat` output), train SPIRE
//! models, and rank bottleneck metrics — the full workflow of the paper
//! from a shell.
//!
//! See [`commands::USAGE`] for the command reference. The command logic
//! lives in this library so it is unit-testable; the binary is a thin
//! wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub(crate) mod cmd;
pub mod commands;
