//! Thin binary wrapper around the `spire-cli` command library.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match spire_cli::commands::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
