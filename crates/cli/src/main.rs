//! Thin binary wrapper around the `spire` command library.
//!
//! Exit codes: 0 success, 2 partial success (the command completed but
//! quarantined or dropped part of its input), 1 failure.

use spire_cli::commands::{EXIT_DEGRADED, EXIT_FAILURE, EXIT_OK};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match spire_cli::commands::run(&argv) {
        Ok(out) => {
            print!("{}", out.text);
            if out.degraded {
                EXIT_DEGRADED
            } else {
                EXIT_OK
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            EXIT_FAILURE
        }
    };
    std::process::exit(code);
}
