//! Length-prefixed framing over any byte stream.
//!
//! Every protocol message is one frame: a 4-byte big-endian payload
//! length followed by that many bytes of UTF-8 JSON. The prefix makes
//! message boundaries explicit (no delimiter scanning, no ambiguity with
//! newlines inside JSON strings) and lets the reader enforce a payload
//! cap *before* allocating, so an adversarial 4-GiB length prefix costs
//! four bytes of reading, not an allocation.

use std::io::{self, Read, Write};

/// Framing-layer errors, kept separate from [`io::Error`] so callers can
/// distinguish "the peer broke protocol" from "the socket died".
#[derive(Debug)]
pub enum FrameError {
    /// The declared payload length exceeds the configured cap.
    Oversize {
        /// Declared payload length.
        declared: usize,
        /// The reader's cap.
        max: usize,
    },
    /// The stream ended in the middle of a frame (after a partial length
    /// prefix or a partial payload).
    Truncated,
    /// Transport failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX bytes",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, enforcing `max` before allocating.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); a close *inside* a frame is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::Oversize { declared, max });
    }
    let mut payload = vec![0u8; declared];
    let mut read = 0;
    while read < declared {
        match r.read(&mut payload[read..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_payloads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xFFu8; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), vec![0xFF; 300]);
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversize_declared_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Oversize {
                declared,
                max: 64
            } if declared == u32::MAX as usize
        ));
    }

    #[test]
    fn mid_frame_close_is_truncated_not_clean_eof() {
        // Partial prefix.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 64).unwrap_err();
        assert!(matches!(err, FrameError::Truncated));
        // Full prefix, partial payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        assert!(matches!(err, FrameError::Truncated));
    }
}
