//! spire-serve: a resident estimation/analysis daemon over SPIRE
//! snapshot models.
//!
//! The paper's deployment shape is train-once/analyze-many: a fitted
//! ensemble answers estimate and bottleneck-ranking queries for a stream
//! of workloads. This crate turns that CLI round trip into a long-running
//! service:
//!
//! - **Protocol** ([`frame`], [`proto`]): length-prefixed JSON frames on
//!   plain `std::net` sockets — no network crates, explicit payload caps.
//! - **Registry** ([`registry`]): named snapshot models behind
//!   `RwLock<Arc<...>>`, hot-reloaded by atomic swap through the existing
//!   checksum/salvage machinery; every response carries the fingerprint
//!   of the snapshot that produced it.
//! - **Queue + workers** ([`queue`], the worker pool in [`server`]):
//!   bounded queues whose overflow sheds requests with typed
//!   `request_shed` events; workers coalesce same-model requests into one
//!   batched SoA estimate pass (`SpireModel::estimate_batch`,
//!   bit-identical to per-request estimation) and contain request panics
//!   at the request boundary (`parallel::run_catching`).
//! - **Cache** ([`cache`]): per-model LRU of recent batch results keyed
//!   by request identity including the serving fingerprint.
//!
//! All serving decisions — sheds, isolations, reloads, salvages — are
//! typed events on the shared `DiagnosticsBus`, so the daemon's event
//! stream is greppable and its degraded state maps to the CLI's exit
//! code 2 convention.

#![forbid(unsafe_code)]

use std::time::Duration;

pub mod cache;
pub mod client;
pub mod frame;
pub mod proto;
pub mod queue;
pub mod registry;
pub mod server;
pub mod wal;
mod worker;

pub use client::{Client, ClientConfig};
pub use frame::FrameError;
pub use proto::{Request, Response};
pub use server::{ChaosConfig, Server, ServerConfig};
pub use wal::WalSettings;

/// Serving-layer errors.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(std::io::Error),
    /// Framing violation (oversize or truncated frame).
    Frame(FrameError),
    /// A request named a model the registry does not hold.
    UnknownModel(String),
    /// The server did not answer within the client's read timeout — a
    /// distinct, retryable condition (the request may still have been
    /// applied, which is what idempotency keys are for).
    Timeout(Duration),
    /// Any other protocol or load failure, with detail.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Frame(e) => write!(f, "{e}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model {name}"),
            ServeError::Timeout(limit) => {
                write!(f, "no response within {} ms", limit.as_millis())
            }
            ServeError::Protocol(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}
