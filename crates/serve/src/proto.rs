//! The request/response protocol spoken inside frames.
//!
//! Messages are flat structs with a `kind` discriminator and optional
//! payload fields, so the wire schema is one stable JSON object per
//! direction and absent fields simply stay `None`. Request kinds:
//! `ping`, `estimate`, `analyze`, `reload`, `stats`, `shutdown`.
//!
//! Every model-touching response carries the `fingerprint` of the
//! snapshot that produced it, which is what makes hot reload observable:
//! a client racing a reload can attribute each response to exactly the
//! old or the new model.

use serde::{Deserialize, Serialize};
use spire_core::{MachineSpec, RankedMetric, SampleSet, UpdateReport};

/// One client request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// `ping` | `estimate` | `analyze` | `update` | `reload` | `stats`
    /// | `shutdown`.
    pub kind: String,
    /// Target model name (estimate / analyze / update / reload).
    pub model: Option<String>,
    /// Workload samples (estimate / analyze / update), in the standard
    /// `{"samples": [...]}` row format.
    pub samples: Option<SampleSet>,
    /// How many ranked rows to return (analyze; default 10).
    pub top: Option<usize>,
    /// Snapshot path override (reload; defaults to the model's
    /// registered path).
    pub path: Option<String>,
    /// Caller-supplied idempotency key (update): a retried request
    /// carrying the same key and batch is applied at most once.
    pub key: Option<String>,
    /// The machine the samples were collected on, when the client knows
    /// it. Updates against a model tagged with a *different* machine are
    /// refused (the same policy as fingerprint mismatches); estimate and
    /// analyze responses echo both tags so the caller can attribute
    /// cross-machine drift.
    pub machine: Option<MachineSpec>,
}

impl Request {
    /// A bare request of the given kind with no payload.
    pub fn bare(kind: &str) -> Self {
        Request {
            kind: kind.to_owned(),
            model: None,
            samples: None,
            top: None,
            path: None,
            key: None,
            machine: None,
        }
    }
}

/// Per-metric detail of an estimate response (a flattened
/// [`spire_core::ensemble::MetricEstimate`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricResult {
    /// The metric.
    pub metric: String,
    /// Time-weighted merged estimate (paper Eq. 1).
    pub merged: f64,
    /// Samples merged for this metric.
    pub sample_count: usize,
}

/// Outcome of a reload request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadInfo {
    /// Fingerprint before the swap.
    pub old_fingerprint: String,
    /// Fingerprint after the swap.
    pub new_fingerprint: String,
    /// Whether the load salvaged (dropped) any snapshot records.
    pub salvaged: bool,
}

/// Per-model counters reported by `stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelStats {
    /// Registry name.
    pub name: String,
    /// Fingerprint of the currently served snapshot.
    pub fingerprint: String,
    /// Trained metrics in the served model.
    pub metrics: usize,
    /// Total estimate requests routed to this model.
    pub estimates: u64,
    /// Total analyze requests routed to this model.
    pub analyzes: u64,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Requests isolated after a contained panic.
    pub isolated: u64,
    /// Batch-result cache hits.
    pub cache_hits: u64,
    /// Batch-result cache misses.
    pub cache_misses: u64,
    /// Worker batches that coalesced more than one request.
    pub coalesced_batches: u64,
    /// Largest coalesced batch seen.
    pub max_batch: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Committed update batches.
    pub updates: u64,
    /// Retried updates the idempotency window absorbed.
    pub deduplicated: u64,
    /// Last committed journal sequence number, when updates are enabled.
    pub last_seq: Option<u64>,
    /// overlap@5 between the last two analyze rankings, when two exist.
    pub drift_overlap: Option<f64>,
    /// Kendall tau between the last two analyze rankings, when two exist.
    pub drift_tau: Option<f64>,
    /// The machine the served snapshot's training data came from, when
    /// its provenance recorded one.
    pub machine: Option<MachineSpec>,
}

/// Server-wide counters reported by `stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests parsed since start.
    pub requests: u64,
    /// Per-model counters, in registry order.
    pub models: Vec<ModelStats>,
}

/// One server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Echoes the request kind (`pong` for `ping`), or `error`.
    pub kind: String,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Error detail when `ok` is false.
    pub error: Option<String>,
    /// True when the request was shed under load (a retry-later signal,
    /// distinct from a malformed or failing request).
    pub shed: Option<bool>,
    /// The model that served the request.
    pub model: Option<String>,
    /// Fingerprint of the snapshot that served the request.
    pub fingerprint: Option<String>,
    /// Ensemble throughput estimate (estimate / analyze).
    pub throughput: Option<f64>,
    /// Per-metric merge detail (estimate).
    pub per_metric: Option<Vec<MetricResult>>,
    /// Ranked bottleneck rows (analyze).
    pub ranked: Option<Vec<RankedMetric>>,
    /// Whether this response came from the batch-result cache.
    pub cached: Option<bool>,
    /// Reload outcome (reload).
    pub reloaded: Option<ReloadInfo>,
    /// Server counters (stats).
    pub stats: Option<ServerStats>,
    /// Journal sequence number of the commit (update).
    pub seq: Option<u64>,
    /// Whether the batch was applied (`false`: a retried idempotency
    /// key was recognized and the batch was not re-applied).
    pub applied: Option<bool>,
    /// What the commit recomputed (update, when applied).
    pub update: Option<UpdateReport>,
    /// The machine tag of the snapshot that served the request, when its
    /// provenance recorded one.
    pub machine: Option<MachineSpec>,
}

impl Response {
    /// A minimal success response of the given kind.
    pub fn ok(kind: &str) -> Self {
        Response {
            kind: kind.to_owned(),
            ok: true,
            error: None,
            shed: None,
            model: None,
            fingerprint: None,
            throughput: None,
            per_metric: None,
            ranked: None,
            cached: None,
            reloaded: None,
            stats: None,
            seq: None,
            applied: None,
            update: None,
            machine: None,
        }
    }

    /// An error response with the given detail.
    pub fn error(detail: impl Into<String>) -> Self {
        let mut r = Response::ok("error");
        r.ok = false;
        r.error = Some(detail.into());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_requests_round_trip_with_missing_fields() {
        let parsed: Request = serde_json::from_str(r#"{"kind":"ping"}"#).unwrap();
        assert_eq!(parsed.kind, "ping");
        assert!(parsed.model.is_none());
        assert!(parsed.samples.is_none());

        let full = Request {
            kind: "analyze".into(),
            model: Some("prod".into()),
            samples: None,
            top: Some(5),
            path: None,
            key: None,
            machine: None,
        };
        let back: Request = serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back.kind, "analyze");
        assert_eq!(back.top, Some(5));
    }

    #[test]
    fn error_responses_carry_detail() {
        let r = Response::error("bad frame");
        assert!(!r.ok);
        let json = serde_json::to_string(&r).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.as_deref(), Some("bad frame"));
        assert_eq!(back.kind, "error");
    }
}
