//! A small LRU cache of recent batch results, one per served model.
//!
//! Keys are 64-bit FNV-1a hashes of the request's semantic identity
//! (kind, top-k, serving fingerprint, serialized samples), so a hit can
//! only occur for a byte-identical workload against the same snapshot —
//! reloads implicitly invalidate because the fingerprint is part of the
//! key. Recency is a monotonic tick, eviction is exact least-recent.

use std::collections::HashMap;

use crate::proto::Response;

/// Exact-LRU map from request hash to cached response.
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<u64, (u64, Response)>,
    tick: u64,
    capacity: usize,
}

impl LruCache {
    /// A cache holding at most `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: u64) -> Option<Response> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(seen, response)| {
            *seen = tick;
            response.clone()
        })
    }

    /// Inserts `key`, evicting the least-recently-used entry when full.
    pub fn put(&mut self, key: u64, response: Response) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (seen, _))| *seen)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, response));
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Hashes one request's semantic identity into a cache key.
pub fn request_key(kind: &str, top: usize, fingerprint: &str, samples_json: &str) -> u64 {
    let mut bytes = Vec::with_capacity(kind.len() + fingerprint.len() + samples_json.len() + 24);
    bytes.extend_from_slice(kind.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&top.to_le_bytes());
    bytes.push(0);
    bytes.extend_from_slice(fingerprint.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(samples_json.as_bytes());
    spire_core::snapshot::fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.put(1, Response::ok("estimate"));
        cache.put(2, Response::ok("estimate"));
        assert!(cache.get(1).is_some()); // refresh 1 -> 2 is now LRU
        cache.put(3, Response::ok("estimate"));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.put(1, Response::ok("estimate"));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn keys_separate_kind_top_and_fingerprint() {
        let k = |kind, top, fp| request_key(kind, top, fp, "{}");
        assert_ne!(k("estimate", 10, "aa"), k("analyze", 10, "aa"));
        assert_ne!(k("analyze", 5, "aa"), k("analyze", 10, "aa"));
        assert_ne!(k("analyze", 10, "aa"), k("analyze", 10, "bb"));
        assert_eq!(k("analyze", 10, "aa"), k("analyze", 10, "aa"));
    }
}
