//! Crash-safe model maintenance: a checksummed write-ahead journal
//! behind the daemon's `update` request.
//!
//! ## Durability contract
//!
//! An `update` is acknowledged only after its journal record is written
//! and fsynced. On restart the daemon replays the journal and must
//! reproduce the pre-crash model **bit-identically** — the same
//! discipline the online trainer already pins against batch retraining
//! (`online_equivalence.rs`), extended across a process boundary. A
//! record the crash tore in half was by definition never acknowledged,
//! so the replay truncates it (typed `wal_truncated` event, Warning)
//! and loses nothing a client was promised.
//!
//! ## On-disk layout (per model, under the configured WAL directory)
//!
//! - `<name>.base.json` — the anchor [`ModelSnapshot`]: zero metric
//!   records plus the pinned [`TrainConfig`]. The maintained model is
//!   the online trainer over exactly the streamed batches (matching a
//!   clean batch retrain over them), so the delta chain starts from the
//!   empty model, and the anchor's only jobs are pinning the training
//!   configuration and the first record's `base_fingerprint`.
//! - `<name>.checkpoint.json` — compaction output ([`WalCheckpoint`]):
//!   the full sample set and model fingerprint as of a sequence number,
//!   written with [`write_atomic`]. Replay folds it in first and skips
//!   journal records it already covers.
//! - `<name>.wal` — the journal: a 12-byte header (`SPIREWAL` magic +
//!   big-endian u32 version) followed by records framed as
//!   `[u32 BE payload len][u64 BE fnv1a64(payload)][payload JSON]`,
//!   reusing the snapshot layer's FNV-1a checksum. Each payload is one
//!   [`WalRecord`]: sequence number, optional idempotency key, the
//!   batch itself, and the [`SnapshotDelta`] the commit produced —
//!   every record is chained to its predecessor through the delta's
//!   base/result fingerprints, so replay can *verify* each step rather
//!   than trust it.
//!
//! ## Commit ordering
//!
//! [`UpdateState::apply_update`] trains a **cloned** trainer first (a
//! failed or refused commit leaves no trace), appends + fsyncs the
//! journal record, and only then publishes the new state in memory. A
//! failed append is rolled back by truncating the journal to its
//! previous length; if even that fails the state is poisoned and all
//! further updates are refused with a typed error until restart.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use spire_core::pipeline::{Event, RunContext};
use spire_core::snapshot::fnv1a64;
use spire_core::{
    write_atomic, MachineSpec, ModelSnapshot, OnlineTrainer, SampleSet, SnapshotDelta,
    SnapshotProvenance, SpireModel, TrainConfig, TrainStrictness, UpdateReport,
    SNAPSHOT_FORMAT_VERSION,
};

use crate::ServeError;

/// Journal file magic; the version after it gates format evolution.
pub const WAL_MAGIC: &[u8; 8] = b"SPIREWAL";
/// Journal format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + big-endian version.
pub const WAL_HEADER_LEN: u64 = 12;
/// Per-record frame overhead: u32 length + u64 checksum.
pub const WAL_FRAME_LEN: u64 = 12;
/// Hard cap on one record's payload — a corrupt length prefix must not
/// trigger a giant allocation during replay.
const MAX_RECORD_LEN: usize = 256 << 20;

/// Where and how a daemon journals updates.
#[derive(Debug, Clone)]
pub struct WalSettings {
    /// Directory holding every model's journal, anchor, and checkpoint.
    pub dir: PathBuf,
    /// Compact (checkpoint + journal reset) after this many records.
    pub compact_records: usize,
    /// Idempotency-window size: how many recent keyed commits are
    /// remembered for retry deduplication.
    pub dedup_window: usize,
}

impl WalSettings {
    /// Settings with the default compaction and dedup windows.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalSettings {
            dir: dir.into(),
            compact_records: 64,
            dedup_window: 64,
        }
    }

    /// The journal path for `model`.
    pub fn wal_path(&self, model: &str) -> PathBuf {
        self.dir.join(format!("{model}.wal"))
    }

    /// The anchor-snapshot path for `model`.
    pub fn base_path(&self, model: &str) -> PathBuf {
        self.dir.join(format!("{model}.base.json"))
    }

    /// The checkpoint path for `model`.
    pub fn checkpoint_path(&self, model: &str) -> PathBuf {
        self.dir.join(format!("{model}.checkpoint.json"))
    }
}

/// One journaled update: the batch plus the delta its commit produced,
/// chained to the previous record through the delta's fingerprints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based; 0 is the anchor).
    pub seq: u64,
    /// Caller-supplied idempotency key, when the client sent one.
    pub key: Option<String>,
    /// 16-hex FNV-1a fingerprint of the batch's canonical JSON, the
    /// other half of the idempotency identity.
    pub batch_fingerprint: String,
    /// The committed sample batch, replayed through the online trainer.
    pub batch: SampleSet,
    /// The snapshot delta this commit produced; `base_fingerprint` must
    /// equal the replaying trainer's current fingerprint and
    /// `result_fingerprint` the post-commit one, or replay refuses.
    pub delta: SnapshotDelta,
}

/// Compaction output: everything needed to rebuild the trainer without
/// the records the checkpoint covers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalCheckpoint {
    /// Snapshot-format version (shared with the model snapshot layer).
    pub format_version: u32,
    /// Highest journal sequence folded into this checkpoint.
    pub seq: u64,
    /// Fingerprint the rebuilt model must reproduce.
    pub fingerprint: String,
    /// Every sample committed up to `seq`, in commit order.
    pub samples: SampleSet,
}

/// What the journal scan found on open.
#[derive(Debug)]
pub struct WalScan {
    /// Whole, checksum-verified records in file order.
    pub records: Vec<WalRecord>,
    /// `(valid_records, dropped_bytes)` when a torn or corrupt tail was
    /// cut off.
    pub truncated: Option<(usize, u64)>,
}

/// The append-only journal file for one model.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Logical end of valid data (the append position).
    len: u64,
    path: PathBuf,
}

fn io_err(context: &str, e: std::io::Error) -> ServeError {
    ServeError::Protocol(format!("{context}: {e}"))
}

impl Wal {
    /// Opens (or creates) the journal at `path`, scanning every record
    /// and truncating a torn or corrupt tail back to the last whole
    /// record. The scan result reports what was kept and what was cut.
    pub fn open(path: &Path) -> Result<(Wal, WalScan), ServeError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(&format!("cannot open journal {}", path.display()), e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err(&format!("cannot read journal {}", path.display()), e))?;

        let mut records = Vec::new();
        let mut valid_end = WAL_HEADER_LEN;
        let total = bytes.len() as u64;
        let header_ok = bytes.len() >= WAL_HEADER_LEN as usize
            && &bytes[..8] == WAL_MAGIC
            && u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) == WAL_VERSION;
        if header_ok {
            let mut pos = WAL_HEADER_LEN as usize;
            loop {
                let Some(record) = read_record(&bytes, pos) else {
                    break;
                };
                pos += WAL_FRAME_LEN as usize + record.1;
                records.push(record.0);
                valid_end = pos as u64;
            }
        } else if bytes.is_empty() {
            // Fresh journal: write the header.
            file.write_all(WAL_MAGIC)
                .and_then(|()| file.write_all(&WAL_VERSION.to_be_bytes()))
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("cannot initialize journal", e))?;
            return Ok((
                Wal {
                    file,
                    len: WAL_HEADER_LEN,
                    path: path.to_path_buf(),
                },
                WalScan {
                    records,
                    truncated: None,
                },
            ));
        } else {
            // A short or foreign header: nothing is trustworthy. Reset
            // to an empty journal and report everything as dropped.
            file.set_len(0)
                .and_then(|()| file.seek(SeekFrom::Start(0)).map(|_| ()))
                .and_then(|()| file.write_all(WAL_MAGIC))
                .and_then(|()| file.write_all(&WAL_VERSION.to_be_bytes()))
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("cannot reset damaged journal header", e))?;
            return Ok((
                Wal {
                    file,
                    len: WAL_HEADER_LEN,
                    path: path.to_path_buf(),
                },
                WalScan {
                    records,
                    truncated: Some((0, total)),
                },
            ));
        }

        let truncated = if valid_end < total {
            file.set_len(valid_end)
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("cannot truncate torn journal tail", e))?;
            Some((records.len(), total - valid_end))
        } else {
            None
        };
        file.seek(SeekFrom::Start(valid_end))
            .map_err(|e| io_err("cannot seek journal", e))?;
        Ok((
            Wal {
                file,
                len: valid_end,
                path: path.to_path_buf(),
            },
            WalScan { records, truncated },
        ))
    }

    /// Appends one record and fsyncs. On any failure the journal is
    /// rolled back to its previous length so a half-written frame can
    /// never be mistaken for a commit; a rollback failure is returned
    /// as `Err(Err(_))` and the caller must poison the state.
    #[allow(clippy::result_large_err)]
    pub fn append(&mut self, record: &WalRecord) -> Result<(), Result<ServeError, ServeError>> {
        let payload = serde_json::to_string(record).map_err(|e| {
            Ok(ServeError::Protocol(format!(
                "cannot serialize record: {e}"
            )))
        })?;
        let payload = payload.as_bytes();
        let prev = self.len;
        let result = (|| -> std::io::Result<()> {
            let len = u32::try_from(payload.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "record exceeds u32 bytes")
            })?;
            self.file.write_all(&len.to_be_bytes())?;
            self.file.write_all(&fnv1a64(payload).to_be_bytes())?;
            self.file.write_all(payload)?;
            self.file.sync_data()
        })();
        match result {
            Ok(()) => {
                self.len = prev + WAL_FRAME_LEN + payload.len() as u64;
                Ok(())
            }
            Err(e) => {
                let rollback = self
                    .file
                    .set_len(prev)
                    .and_then(|()| self.file.seek(SeekFrom::Start(prev)).map(|_| ()))
                    .and_then(|()| self.file.sync_data());
                let append_err = io_err(
                    &format!("cannot append to journal {}", self.path.display()),
                    e,
                );
                match rollback {
                    Ok(()) => Err(Ok(append_err)),
                    Err(re) => Err(Err(ServeError::Protocol(format!(
                        "{append_err}; rollback also failed ({re}) — journal state unknown"
                    )))),
                }
            }
        }
    }

    /// Discards every record (after a checkpoint covered them).
    pub fn reset(&mut self) -> Result<(), ServeError> {
        self.file
            .set_len(WAL_HEADER_LEN)
            .and_then(|()| self.file.seek(SeekFrom::Start(WAL_HEADER_LEN)).map(|_| ()))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err("cannot reset journal", e))?;
        self.len = WAL_HEADER_LEN;
        Ok(())
    }

    /// Fsyncs the journal (the shutdown drain's last act).
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("cannot fsync journal", e))
    }

    /// Current logical length in bytes (tests index kill offsets by it).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }
}

/// Decodes the record starting at `pos`, returning it and its payload
/// length — or `None` for anything short, corrupt, or unparseable (the
/// truncation point).
fn read_record(bytes: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    let frame = bytes.get(pos..pos + WAL_FRAME_LEN as usize)?;
    let len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    if len > MAX_RECORD_LEN {
        return None;
    }
    let checksum = u64::from_be_bytes([
        frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
    ]);
    let payload = bytes.get(pos + WAL_FRAME_LEN as usize..pos + WAL_FRAME_LEN as usize + len)?;
    if fnv1a64(payload) != checksum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let record: WalRecord = serde_json::from_str(text).ok()?;
    Some((record, len))
}

/// A remembered keyed commit, for retry deduplication.
#[derive(Debug, Clone)]
struct DedupEntry {
    key: String,
    batch_fingerprint: String,
    seq: u64,
    fingerprint: String,
}

/// The acknowledgement an applied (or deduplicated) update earns.
#[derive(Debug, Clone)]
pub struct UpdateAck {
    /// The commit's journal sequence number.
    pub seq: u64,
    /// The model fingerprint after the commit.
    pub fingerprint: String,
    /// `false` when the idempotency window recognized a retry and the
    /// batch was *not* re-applied.
    pub applied: bool,
    /// What the commit recomputed (absent on deduplicated retries).
    pub report: Option<UpdateReport>,
    /// The post-commit model, for the registry to install (absent on
    /// deduplicated retries).
    pub model: Option<SpireModel>,
}

/// Per-model durable update state: the online trainer, its journal, the
/// delta-chain head, and the idempotency window.
#[derive(Debug)]
pub struct UpdateState {
    model_name: String,
    settings: WalSettings,
    trainer: OnlineTrainer,
    /// Snapshot of the trainer's current model — each commit's delta
    /// base, so the journal chain is verifiable link by link.
    head: ModelSnapshot,
    seq: u64,
    wal: Wal,
    dedup: VecDeque<DedupEntry>,
    /// The served model's machine tag: stamped onto every delta-chain
    /// head, so journal records inherit it and replay's `delta.apply`
    /// cross-check re-verifies the machine link by link.
    machine: Option<MachineSpec>,
    records_since_checkpoint: usize,
    /// Set when a failed append could not be rolled back; all further
    /// updates are refused until restart.
    broken: Option<String>,
}

/// A provenance record carrying only a machine tag (the delta chain's
/// heads are rebuilt models, so the tag is the only provenance that
/// survives replay).
fn machine_provenance(machine: Option<&MachineSpec>) -> Option<SnapshotProvenance> {
    machine.map(|m| SnapshotProvenance {
        machine: Some(m.clone()),
        ..SnapshotProvenance::default()
    })
}

/// The empty anchor snapshot: no metric records, pinned config (and the
/// served model's machine tag, when it has one). Its fingerprint (FNV-1a
/// of zero `metric:checksum` lines) anchors the first journal record's
/// delta; the machine tag makes every later delta in the chain carry it,
/// so replay re-verifies the machine per link through
/// [`SnapshotDelta::apply`]'s cross-machine refusal.
fn anchor_snapshot(config: TrainConfig, machine: Option<&MachineSpec>) -> ModelSnapshot {
    ModelSnapshot {
        format_version: SNAPSHOT_FORMAT_VERSION,
        checksum_algorithm: "fnv1a64".to_owned(),
        config,
        skipped_metrics: Vec::new(),
        provenance: machine_provenance(machine),
        train_report: None,
        metrics: Vec::new(),
    }
}

fn snapshot_of(
    model: &SpireModel,
    machine: Option<&MachineSpec>,
) -> Result<ModelSnapshot, ServeError> {
    let snapshot = ModelSnapshot::from_model(model)
        .map_err(|e| ServeError::Protocol(format!("cannot snapshot updated model: {e}")))?;
    Ok(match machine_provenance(machine) {
        Some(provenance) => snapshot.with_provenance(provenance),
        None => snapshot,
    })
}

impl UpdateState {
    /// Opens (or creates) the durable state for `model_name`, replaying
    /// checkpoint + journal. Returns the state and, when any committed
    /// update was recovered, the model that must be installed as the
    /// served entry.
    ///
    /// Replay is verified at every link: the checkpoint's rebuilt model
    /// must reproduce its recorded fingerprint, and each journal record
    /// must chain (`delta.base_fingerprint` equals the current head)
    /// and land (`delta.result_fingerprint` equals the re-committed
    /// trainer's fingerprint, cross-checked against `delta.apply`). Any
    /// mismatch is a typed refusal — never a silent wrong merge.
    pub fn open(
        model_name: &str,
        config: &TrainConfig,
        strictness: TrainStrictness,
        settings: &WalSettings,
        machine: Option<&MachineSpec>,
        ctx: &RunContext,
    ) -> Result<(UpdateState, Option<(SpireModel, String)>), ServeError> {
        std::fs::create_dir_all(&settings.dir).map_err(|e| {
            io_err(
                &format!("cannot create WAL directory {}", settings.dir.display()),
                e,
            )
        })?;

        // Anchor: pin the config the whole delta chain trains under.
        let base_path = settings.base_path(model_name);
        let anchor = if base_path.exists() {
            let text = std::fs::read_to_string(&base_path)
                .map_err(|e| io_err(&format!("cannot read {}", base_path.display()), e))?;
            ModelSnapshot::from_json(&text).map_err(|e| {
                ServeError::Protocol(format!("damaged anchor {}: {e}", base_path.display()))
            })?
        } else {
            let anchor = anchor_snapshot(config.clone(), machine);
            write_atomic(&base_path, &anchor.to_json())
                .map_err(|e| io_err(&format!("cannot write {}", base_path.display()), e))?;
            anchor
        };

        let mut trainer = OnlineTrainer::new(anchor.config.clone(), strictness)
            .map_err(|e| ServeError::Protocol(format!("invalid anchor config: {e}")))?;
        let mut head = anchor;
        let mut seq = 0u64;

        // Checkpoint: fold in compacted history.
        let checkpoint_path = settings.checkpoint_path(model_name);
        if checkpoint_path.exists() {
            let text = std::fs::read_to_string(&checkpoint_path)
                .map_err(|e| io_err(&format!("cannot read {}", checkpoint_path.display()), e))?;
            let cp: WalCheckpoint = serde_json::from_str(&text).map_err(|e| {
                ServeError::Protocol(format!(
                    "damaged checkpoint {}: {e}",
                    checkpoint_path.display()
                ))
            })?;
            if cp.format_version != SNAPSHOT_FORMAT_VERSION {
                return Err(ServeError::Protocol(format!(
                    "unsupported checkpoint format version {}",
                    cp.format_version
                )));
            }
            trainer.push_batch(&cp.samples);
            trainer
                .commit()
                .map_err(|e| ServeError::Protocol(format!("checkpoint replay failed: {e}")))?;
            let model = trainer
                .model()
                .ok_or_else(|| ServeError::Protocol("checkpoint produced no model".to_owned()))?;
            let rebuilt = snapshot_of(model, machine)?;
            if rebuilt.fingerprint() != cp.fingerprint {
                return Err(ServeError::Protocol(format!(
                    "checkpoint replay for {model_name} produced fingerprint {}, expected {}",
                    rebuilt.fingerprint(),
                    cp.fingerprint
                )));
            }
            head = rebuilt;
            seq = cp.seq;
        }

        // Journal: truncate the torn tail, then replay the verified chain.
        let (wal, scan) = Wal::open(&settings.wal_path(model_name))?;
        if let Some((valid_records, dropped_bytes)) = scan.truncated {
            ctx.emit(Event::WalTruncated {
                model: model_name.to_owned(),
                valid_records,
                dropped_bytes,
            });
        }
        let mut dedup = VecDeque::new();
        let mut records_since_checkpoint = 0usize;
        for record in &scan.records {
            if record.seq <= seq {
                // Covered by the checkpoint (a crash between checkpoint
                // write and journal reset leaves these behind).
                remember(&mut dedup, record, settings.dedup_window);
                continue;
            }
            records_since_checkpoint += 1;
            if record.seq != seq + 1 {
                return Err(ServeError::Protocol(format!(
                    "journal gap for {model_name}: record seq {} after seq {seq}",
                    record.seq
                )));
            }
            let head_fp = head.fingerprint();
            if record.delta.base_fingerprint != head_fp {
                return Err(ServeError::Protocol(format!(
                    "journal chain broken for {model_name} at seq {}: delta base {} \
                     does not match replayed fingerprint {head_fp}",
                    record.seq, record.delta.base_fingerprint
                )));
            }
            trainer.push_batch(&record.batch);
            trainer.commit().map_err(|e| {
                ServeError::Protocol(format!(
                    "journal replay for {model_name} failed at seq {}: {e}",
                    record.seq
                ))
            })?;
            let model = trainer.model().ok_or_else(|| {
                ServeError::Protocol(format!("replay produced no model at seq {}", record.seq))
            })?;
            let rebuilt = snapshot_of(model, machine)?;
            if rebuilt.fingerprint() != record.delta.result_fingerprint {
                return Err(ServeError::Protocol(format!(
                    "journal replay for {model_name} diverged at seq {}: rebuilt {}, \
                     record says {}",
                    record.seq,
                    rebuilt.fingerprint(),
                    record.delta.result_fingerprint
                )));
            }
            // Cross-check through the delta path too: applying the
            // record's delta to the old head must land on the same model.
            let applied = record.delta.apply(&head).map_err(|e| {
                ServeError::Protocol(format!(
                    "journal delta for {model_name} refuses its own base at seq {}: {e}",
                    record.seq
                ))
            })?;
            if applied.fingerprint() != rebuilt.fingerprint() {
                return Err(ServeError::Protocol(format!(
                    "journal delta for {model_name} disagrees with retrain at seq {}",
                    record.seq
                )));
            }
            head = rebuilt;
            seq = record.seq;
            remember(&mut dedup, record, settings.dedup_window);
        }

        let recovered = if seq > 0 {
            trainer.model().map(|m| (m.clone(), head.fingerprint()))
        } else {
            None
        };
        Ok((
            UpdateState {
                model_name: model_name.to_owned(),
                settings: settings.clone(),
                trainer,
                head,
                seq,
                wal,
                dedup,
                machine: machine.cloned(),
                records_since_checkpoint,
                broken: None,
            },
            recovered,
        ))
    }

    /// The last committed sequence number (0 before the first commit).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The current model fingerprint.
    pub fn fingerprint(&self) -> String {
        self.head.fingerprint()
    }

    /// The maintained model, once at least one update committed.
    pub fn model(&self) -> Option<&SpireModel> {
        self.trainer.model()
    }

    /// Marks the state unusable (e.g. after a panic mid-apply); every
    /// later update is refused with this reason.
    pub fn mark_broken(&mut self, reason: impl Into<String>) {
        if self.broken.is_none() {
            self.broken = Some(reason.into());
        }
    }

    /// Fsyncs the journal (graceful-shutdown drain).
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.wal.sync()
    }

    /// Applies one update batch: dedup check, clone-train-commit,
    /// journal append + fsync, then publish. See the module docs for
    /// the ordering argument.
    pub fn apply_update(
        &mut self,
        samples: &SampleSet,
        samples_json: &str,
        key: Option<&str>,
        ctx: &RunContext,
    ) -> Result<UpdateAck, ServeError> {
        if let Some(reason) = &self.broken {
            return Err(ServeError::Protocol(format!(
                "updates for {} are disabled: {reason}",
                self.model_name
            )));
        }
        let batch_fingerprint = format!("{:016x}", fnv1a64(samples_json.as_bytes()));
        if let Some(key) = key {
            if let Some(hit) = self
                .dedup
                .iter()
                .find(|e| e.key == key && e.batch_fingerprint == batch_fingerprint)
            {
                ctx.emit(Event::UpdateDeduplicated {
                    model: self.model_name.clone(),
                    seq: hit.seq,
                    key: key.to_owned(),
                });
                return Ok(UpdateAck {
                    seq: hit.seq,
                    fingerprint: hit.fingerprint.clone(),
                    applied: false,
                    report: None,
                    model: None,
                });
            }
        }
        if samples.is_empty() {
            return Err(ServeError::Protocol(
                "update requires a non-empty sample batch".to_owned(),
            ));
        }

        // Train a candidate first: a refused commit must leave no trace,
        // in memory or on disk.
        let mut candidate = self.trainer.clone();
        candidate.push_batch(samples);
        let outcome = candidate
            .commit()
            .map_err(|e| ServeError::Protocol(format!("update commit refused: {e}")))?;
        let model = candidate
            .model()
            .ok_or_else(|| ServeError::Protocol("update commit produced no model".to_owned()))?;
        let new_head = snapshot_of(model, self.machine.as_ref())?;
        let new_fingerprint = new_head.fingerprint();
        let old_fingerprint = self.head.fingerprint();
        let seq = self.seq + 1;
        let record = WalRecord {
            seq,
            key: key.map(str::to_owned),
            batch_fingerprint: batch_fingerprint.clone(),
            batch: samples.clone(),
            delta: SnapshotDelta::between(&self.head, &new_head),
        };

        // Durability point: the record is on disk (or nothing is).
        match self.wal.append(&record) {
            Ok(()) => {}
            Err(Ok(e)) => return Err(e),
            Err(Err(e)) => {
                self.broken = Some(e.to_string());
                return Err(e);
            }
        }

        // Publish: plain moves, no fallible step between disk and memory.
        let model = model.clone();
        self.trainer = candidate;
        self.head = new_head;
        self.seq = seq;
        self.records_since_checkpoint += 1;
        if let Some(key) = key {
            self.dedup.push_back(DedupEntry {
                key: key.to_owned(),
                batch_fingerprint,
                seq,
                fingerprint: new_fingerprint.clone(),
            });
            while self.dedup.len() > self.settings.dedup_window.max(1) {
                self.dedup.pop_front();
            }
        }
        ctx.emit(Event::ModelUpdated {
            model: self.model_name.clone(),
            seq,
            old_fingerprint,
            new_fingerprint: new_fingerprint.clone(),
            samples: samples.len(),
        });
        self.maybe_compact(ctx);
        Ok(UpdateAck {
            seq,
            fingerprint: new_fingerprint,
            applied: true,
            report: Some(outcome.update),
            model: Some(model),
        })
    }

    /// Compacts once enough records accumulated: checkpoint written
    /// atomically first, journal reset second — a crash between the two
    /// is safe because replay skips records the checkpoint covers. A
    /// failed checkpoint write only defers compaction to the next
    /// commit; it never loses data.
    fn maybe_compact(&mut self, ctx: &RunContext) {
        if self.records_since_checkpoint < self.settings.compact_records.max(1) {
            return;
        }
        let checkpoint = WalCheckpoint {
            format_version: SNAPSHOT_FORMAT_VERSION,
            seq: self.seq,
            fingerprint: self.head.fingerprint(),
            samples: self.trainer.samples().clone(),
        };
        let json = match serde_json::to_string(&checkpoint) {
            Ok(json) => json,
            Err(_) => return,
        };
        let path = self.settings.checkpoint_path(&self.model_name);
        if write_atomic(&path, &json).is_err() {
            return;
        }
        let records = self.records_since_checkpoint;
        if self.wal.reset().is_ok() {
            self.records_since_checkpoint = 0;
        }
        ctx.emit(Event::WalCompacted {
            model: self.model_name.clone(),
            seq: self.seq,
            records,
        });
    }
}

fn remember(dedup: &mut VecDeque<DedupEntry>, record: &WalRecord, window: usize) {
    if let Some(key) = &record.key {
        dedup.push_back(DedupEntry {
            key: key.clone(),
            batch_fingerprint: record.batch_fingerprint.clone(),
            seq: record.seq,
            fingerprint: record.delta.result_fingerprint.clone(),
        });
        while dedup.len() > window.max(1) {
            dedup.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::pipeline::PipelineConfig;
    use spire_core::Sample;

    fn ctx() -> RunContext {
        RunContext::new(PipelineConfig::default())
    }

    fn batch(salt: u64, n: usize) -> SampleSet {
        let mut set = SampleSet::new();
        for i in 0..n {
            let x = (salt * 31 + i as u64) as f64;
            set.push(Sample::new("wal.metric", 10.0, 5.0 + x, 1.0 + (x * 7.0) % 13.0).unwrap());
            set.push(Sample::new("wal.other", 10.0, 3.0 + x, 2.0 + (x * 3.0) % 11.0).unwrap());
        }
        set
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "spire-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_round_trips_and_survives_reopen() {
        let dir = temp_dir("roundtrip");
        let settings = WalSettings::new(&dir);
        let config = TrainConfig::default();
        let ctx = ctx();
        let mut fingerprints = Vec::new();
        {
            let (mut state, recovered) = UpdateState::open(
                "m",
                &config,
                TrainStrictness::Lenient,
                &settings,
                None,
                &ctx,
            )
            .unwrap();
            assert!(recovered.is_none());
            for salt in 0..4 {
                let b = batch(salt, 6);
                let json = serde_json::to_string(&b).unwrap();
                let ack = state.apply_update(&b, &json, None, &ctx).unwrap();
                assert!(ack.applied);
                assert_eq!(ack.seq, salt + 1);
                fingerprints.push(ack.fingerprint);
            }
        }
        // Reopen: replay must land on the last acknowledged fingerprint
        // and equal a clean batch retrain over all four batches.
        let (state, recovered) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            None,
            &ctx,
        )
        .unwrap();
        let (model, fp) = recovered.expect("recovered model");
        assert_eq!(state.seq(), 4);
        assert_eq!(fp, *fingerprints.last().unwrap());
        let mut merged = SampleSet::new();
        for salt in 0..4 {
            merged.merge(batch(salt, 6));
        }
        let retrained = SpireModel::train(&merged, config.clone()).unwrap();
        assert_eq!(
            model, retrained,
            "recovery must equal a clean batch retrain"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovers() {
        let dir = temp_dir("torn");
        let settings = WalSettings::new(&dir);
        let config = TrainConfig::default();
        let ctx = ctx();
        let wal_path = settings.wal_path("m");
        {
            let (mut state, _) = UpdateState::open(
                "m",
                &config,
                TrainStrictness::Lenient,
                &settings,
                None,
                &ctx,
            )
            .unwrap();
            for salt in 0..3 {
                let b = batch(salt, 6);
                let json = serde_json::to_string(&b).unwrap();
                state.apply_update(&b, &json, None, &ctx).unwrap();
            }
        }
        // Tear the last record in half.
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 40]).unwrap();
        let (state, recovered) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            None,
            &ctx,
        )
        .unwrap();
        assert_eq!(state.seq(), 2, "the torn third record must be dropped");
        let (model, _) = recovered.unwrap();
        let mut merged = SampleSet::new();
        merged.merge(batch(0, 6));
        merged.merge(batch(1, 6));
        assert_eq!(model, SpireModel::train(&merged, config.clone()).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keyed_retry_is_applied_at_most_once() {
        let dir = temp_dir("dedup");
        let settings = WalSettings::new(&dir);
        let config = TrainConfig::default();
        let ctx = ctx();
        let (mut state, _) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            None,
            &ctx,
        )
        .unwrap();
        let b = batch(0, 6);
        let json = serde_json::to_string(&b).unwrap();
        let first = state.apply_update(&b, &json, Some("k1"), &ctx).unwrap();
        assert!(first.applied);
        let retry = state.apply_update(&b, &json, Some("k1"), &ctx).unwrap();
        assert!(!retry.applied, "retried key must not re-apply");
        assert_eq!(retry.seq, first.seq);
        assert_eq!(retry.fingerprint, first.fingerprint);
        // Same key, different batch: a distinct update, not a retry.
        let b2 = batch(9, 6);
        let json2 = serde_json::to_string(&b2).unwrap();
        let other = state.apply_update(&b2, &json2, Some("k1"), &ctx).unwrap();
        assert!(other.applied);
        assert_eq!(other.seq, first.seq + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_checkpoints_and_recovery_still_matches_retrain() {
        let dir = temp_dir("compact");
        let mut settings = WalSettings::new(&dir);
        settings.compact_records = 2;
        let config = TrainConfig::default();
        let ctx = ctx();
        let mut last_fp = String::new();
        {
            let (mut state, _) = UpdateState::open(
                "m",
                &config,
                TrainStrictness::Lenient,
                &settings,
                None,
                &ctx,
            )
            .unwrap();
            for salt in 0..5 {
                let b = batch(salt, 6);
                let json = serde_json::to_string(&b).unwrap();
                last_fp = state
                    .apply_update(&b, &json, None, &ctx)
                    .unwrap()
                    .fingerprint;
            }
        }
        assert!(
            settings.checkpoint_path("m").exists(),
            "compaction must have written a checkpoint"
        );
        let (state, recovered) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            None,
            &ctx,
        )
        .unwrap();
        assert_eq!(state.seq(), 5);
        let (model, fp) = recovered.unwrap();
        assert_eq!(fp, last_fp);
        let mut merged = SampleSet::new();
        for salt in 0..5 {
            merged.merge(batch(salt, 6));
        }
        assert_eq!(model, SpireModel::train(&merged, config.clone()).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn machine(name: &str, fp: &str) -> MachineSpec {
        MachineSpec {
            name: name.to_owned(),
            fingerprint: fp.to_owned(),
            peaks: spire_core::MachinePeaks {
                throughput: 4.0,
                bandwidth: std::collections::BTreeMap::new(),
            },
            normalized: false,
        }
    }

    #[test]
    fn machine_tag_threads_through_journal_and_refuses_cross_machine_replay() {
        let dir = temp_dir("machine");
        let settings = WalSettings::new(&dir);
        let config = TrainConfig::default();
        let ctx = ctx();
        let m = machine("skylake-server", "aaaaaaaaaaaaaaaa");
        {
            let (mut state, _) = UpdateState::open(
                "m",
                &config,
                TrainStrictness::Lenient,
                &settings,
                Some(&m),
                &ctx,
            )
            .unwrap();
            for salt in 0..3 {
                let b = batch(salt, 6);
                let json = serde_json::to_string(&b).unwrap();
                state.apply_update(&b, &json, None, &ctx).unwrap();
            }
        }
        // The anchor on disk carries the machine tag.
        let anchor_text = std::fs::read_to_string(settings.base_path("m")).unwrap();
        let anchor = ModelSnapshot::from_json(&anchor_text).unwrap();
        assert_eq!(anchor.machine().unwrap().name, "skylake-server");
        // Same machine replays cleanly.
        let (state, recovered) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            Some(&m),
            &ctx,
        )
        .unwrap();
        assert_eq!(state.seq(), 3);
        assert!(recovered.is_some());
        // A different machine is refused at the first chained link — the
        // journal deltas carry the original tag and `delta.apply` refuses
        // a cross-machine base during replay.
        let other = machine("little", "bbbbbbbbbbbbbbbb");
        let err = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            Some(&other),
            &ctx,
        )
        .unwrap_err();
        assert!(err.to_string().contains("machine mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batch_and_broken_state_are_refused() {
        let dir = temp_dir("refuse");
        let settings = WalSettings::new(&dir);
        let config = TrainConfig::default();
        let ctx = ctx();
        let (mut state, _) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            None,
            &ctx,
        )
        .unwrap();
        let empty = SampleSet::new();
        let json = serde_json::to_string(&empty).unwrap();
        assert!(state.apply_update(&empty, &json, None, &ctx).is_err());
        state.mark_broken("test poison");
        let b = batch(0, 6);
        let json = serde_json::to_string(&b).unwrap();
        let err = state.apply_update(&b, &json, None, &ctx).unwrap_err();
        assert!(err.to_string().contains("test poison"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
