//! A small synchronous client for the serve protocol, shared by the
//! `spire client` subcommand and the integration tests.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

use spire_core::SampleSet;

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response};
use crate::ServeError;

/// One connection to a spire-serve daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr` with a generous response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            max_frame: 64 << 20,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let json = serde_json::to_string(request)
            .map_err(|e| ServeError::Protocol(format!("cannot serialize request: {e}")))?;
        write_frame(&mut self.writer, json.as_bytes()).map_err(ServeError::Io)?;
        let payload = read_frame(&mut self.reader, self.max_frame)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".to_owned()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|e| ServeError::Protocol(format!("response is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| ServeError::Protocol(format!("invalid response: {e}")))
    }

    /// `ping` → expects `pong`.
    pub fn ping(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::bare("ping"))
    }

    /// `estimate` of `samples` under `model`.
    pub fn estimate(&mut self, model: &str, samples: &SampleSet) -> Result<Response, ServeError> {
        let mut request = Request::bare("estimate");
        request.model = Some(model.to_owned());
        request.samples = Some(samples.clone());
        self.request(&request)
    }

    /// `analyze` of `samples` under `model`, returning the top `top` rows.
    pub fn analyze(
        &mut self,
        model: &str,
        samples: &SampleSet,
        top: Option<usize>,
    ) -> Result<Response, ServeError> {
        let mut request = Request::bare("analyze");
        request.model = Some(model.to_owned());
        request.samples = Some(samples.clone());
        request.top = top;
        self.request(&request)
    }

    /// `reload` of `model`, optionally from a new snapshot path.
    pub fn reload(&mut self, model: &str, path: Option<&Path>) -> Result<Response, ServeError> {
        let mut request = Request::bare("reload");
        request.model = Some(model.to_owned());
        request.path = path.map(|p| p.display().to_string());
        self.request(&request)
    }

    /// `stats` counters.
    pub fn stats(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::bare("stats"))
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::bare("shutdown"))
    }
}
