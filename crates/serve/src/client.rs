//! A small synchronous client for the serve protocol, shared by the
//! `spire client` subcommand and the integration tests.
//!
//! Resilience lives here, not in the daemon: connects and shed responses
//! retry under bounded, seeded, jittered exponential backoff
//! ([`ClientConfig::retries`]), and a read timeout surfaces as the
//! distinct [`ServeError::Timeout`] — retryable, but *only* safely so
//! for requests carrying an idempotency key, because a timed-out update
//! may have committed before the response was lost.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::{Duration, Instant};

use spire_core::fault::FaultRng;
use spire_core::{MachineSpec, SampleSet};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{Request, Response};
use crate::ServeError;

/// Client-side transport knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long one request waits for its response before surfacing
    /// [`ServeError::Timeout`].
    pub read_timeout: Duration,
    /// Maximum accepted response frame, in bytes.
    pub max_frame: usize,
    /// Extra attempts after the first for retryable failures (connect
    /// refused, timeout, shed). `0` preserves single-shot semantics.
    pub retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff delay.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter, so retry schedules are reproducible.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            max_frame: 64 << 20,
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            seed: 1,
        }
    }
}

impl ClientConfig {
    /// The jittered delay before retry attempt `attempt` (0-based):
    /// exponential in the attempt number, capped, then scaled by a
    /// seeded factor in `[0.5, 1.0)` so synchronized clients desynchronize.
    fn backoff(&self, attempt: u32, rng: &mut FaultRng) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.backoff_cap);
        let jitter = 0.5 + (rng.next_u64() % 1000) as f64 / 2000.0;
        exp.mul_f64(jitter)
    }
}

/// One connection to a spire-serve daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    config: ClientConfig,
}

/// Whether the timeout-class io error kinds occurred.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl Client {
    /// Connects to `addr` with default configuration (30 s timeout, no
    /// retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to `addr` under `config`, retrying refused connects with
    /// jittered exponential backoff when `config.retries > 0`.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ServeError> {
        let mut rng = FaultRng::new(config.seed);
        let mut attempt = 0;
        loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    let read_half = stream.try_clone()?;
                    return Ok(Client {
                        reader: BufReader::new(read_half),
                        writer: BufWriter::new(stream),
                        config,
                    });
                }
                Err(e) if attempt < config.retries => {
                    let _ = e;
                    std::thread::sleep(config.backoff(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }

    /// Waits until the daemon answers `ping`, reconnecting with backoff
    /// for up to `deadline` — the readiness poll behind
    /// `spire client ping --wait` (and CI's replacement for sleep loops).
    pub fn wait_ready(
        addr: impl ToSocketAddrs + Clone,
        config: ClientConfig,
        deadline: Duration,
    ) -> Result<Client, ServeError> {
        let start = Instant::now();
        let mut rng = FaultRng::new(config.seed);
        let mut attempt = 0;
        loop {
            match Client::connect_with(addr.clone(), config.clone()) {
                Ok(mut client) => match client.ping() {
                    Ok(r) if r.ok => return Ok(client),
                    Ok(_) | Err(_) if start.elapsed() < deadline => {}
                    Ok(r) => {
                        return Err(ServeError::Protocol(format!(
                            "daemon answered ping with {}",
                            r.error.unwrap_or_else(|| r.kind.clone())
                        )))
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    if start.elapsed() >= deadline {
                        return Err(e);
                    }
                }
            }
            std::thread::sleep(config.backoff(attempt.min(6), &mut rng));
            attempt += 1;
        }
    }

    /// Sends one request and waits for its response. A read timeout maps
    /// to [`ServeError::Timeout`]; the connection should be considered
    /// desynced afterwards (a late response may still arrive on the wire).
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let json = serde_json::to_string(request)
            .map_err(|e| ServeError::Protocol(format!("cannot serialize request: {e}")))?;
        write_frame(&mut self.writer, json.as_bytes()).map_err(ServeError::Io)?;
        let payload = match read_frame(&mut self.reader, self.config.max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                return Err(ServeError::Protocol(
                    "server closed the connection".to_owned(),
                ))
            }
            Err(FrameError::Io(e)) if is_timeout(&e) => {
                return Err(ServeError::Timeout(self.config.read_timeout))
            }
            Err(e) => return Err(e.into()),
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|e| ServeError::Protocol(format!("response is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| ServeError::Protocol(format!("invalid response: {e}")))
    }

    /// Sends `request`, retrying timeouts and shed responses up to the
    /// configured budget with jittered exponential backoff. Responses
    /// (including errors) that are neither shed nor timeouts return
    /// immediately. Only safe for idempotent requests: a timed-out
    /// update without a `key` may apply twice.
    pub fn request_with_retry(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut rng = FaultRng::new(self.config.seed);
        let mut attempt = 0;
        loop {
            match self.request(request) {
                Ok(r) if r.shed == Some(true) && attempt < self.config.retries => {}
                Ok(r) => return Ok(r),
                Err(ServeError::Timeout(_)) if attempt < self.config.retries => {}
                Err(e) => return Err(e),
            }
            std::thread::sleep(self.config.backoff(attempt, &mut rng));
            attempt += 1;
        }
    }

    /// `ping` → expects `pong`.
    pub fn ping(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::bare("ping"))
    }

    /// `estimate` of `samples` under `model`.
    pub fn estimate(&mut self, model: &str, samples: &SampleSet) -> Result<Response, ServeError> {
        let mut request = Request::bare("estimate");
        request.model = Some(model.to_owned());
        request.samples = Some(samples.clone());
        self.request(&request)
    }

    /// `analyze` of `samples` under `model`, returning the top `top` rows.
    pub fn analyze(
        &mut self,
        model: &str,
        samples: &SampleSet,
        top: Option<usize>,
    ) -> Result<Response, ServeError> {
        let mut request = Request::bare("analyze");
        request.model = Some(model.to_owned());
        request.samples = Some(samples.clone());
        request.top = top;
        self.request(&request)
    }

    /// `update`: streams one sample batch into `model`'s online trainer,
    /// journaled before acknowledgment. With a `key`, retries of the
    /// same batch are applied at most once; retryable failures use the
    /// configured retry budget.
    pub fn update(
        &mut self,
        model: &str,
        samples: &SampleSet,
        key: Option<&str>,
    ) -> Result<Response, ServeError> {
        self.update_tagged(model, samples, key, None)
    }

    /// [`update`](Client::update) with the batch's machine tag attached:
    /// the daemon refuses the batch when the served model is tagged with
    /// a *different* machine (the same policy as fingerprint mismatches).
    /// An untagged batch against a tagged model passes — absence is
    /// legacy, not a mismatch.
    pub fn update_tagged(
        &mut self,
        model: &str,
        samples: &SampleSet,
        key: Option<&str>,
        machine: Option<&MachineSpec>,
    ) -> Result<Response, ServeError> {
        let mut request = Request::bare("update");
        request.model = Some(model.to_owned());
        request.samples = Some(samples.clone());
        request.key = key.map(str::to_owned);
        request.machine = machine.cloned();
        if key.is_some() {
            self.request_with_retry(&request)
        } else {
            self.request(&request)
        }
    }

    /// `reload` of `model`, optionally from a new snapshot path.
    pub fn reload(&mut self, model: &str, path: Option<&Path>) -> Result<Response, ServeError> {
        let mut request = Request::bare("reload");
        request.model = Some(model.to_owned());
        request.path = path.map(|p| p.display().to_string());
        self.request(&request)
    }

    /// `stats` counters.
    pub fn stats(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::bare("stats"))
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::bare("shutdown"))
    }
}
