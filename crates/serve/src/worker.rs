//! The worker pool's batch-processing loop.
//!
//! Workers pop coalesced same-model batches from the [`crate::queue`],
//! run one batched SoA estimate pass over all of them
//! ([`spire_core::SpireModel::estimate_batch`] — bit-identical to
//! per-request estimation), and fan typed responses back to each
//! request's reply channel. The whole batch serves from one `Arc`'d
//! model entry cloned up front, so a concurrent hot reload can never
//! tear a batch: every response is attributable to exactly the snapshot
//! fingerprint it carries.
//!
//! Panic containment is two-level: a batch that panics is retried
//! request-by-request under [`spire_core::parallel::run_catching`], so
//! one poisoned request degrades to a typed `request_isolated` error
//! while its batch neighbors still get answers.

use std::sync::Arc;
use std::time::Instant;

use spire_core::ensemble::Estimate;
use spire_core::parallel;
use spire_core::pipeline::Event;
use spire_core::{BottleneckReport, SampleSet, SpireError};

use crate::cache::request_key;
use crate::proto::{MetricResult, Response};
use crate::queue::Job;
use crate::registry::{ModelCounters, ModelEntry, ModelSlot};
use crate::server::ServerShared;

/// Whether any job in the batch carries a sample metric whose name
/// contains `marker` — the chaos harness's injection seam: tests plant
/// a marked metric in a request to detonate a panic at a chosen layer.
fn batch_matches_marker(batch: &[Job], marker: &str) -> bool {
    batch.iter().any(|job| {
        job.request
            .samples
            .as_ref()
            .is_some_and(|s| s.metrics().any(|m| m.as_str().contains(marker)))
    })
}

/// The analyze default for `top` when a request does not specify one.
pub(crate) const DEFAULT_TOP: usize = 10;

/// The `top` value that participates in a request's cache key (estimate
/// responses do not vary with `top`).
pub(crate) fn effective_top(kind: &str, top: Option<usize>) -> usize {
    if kind == "analyze" {
        top.unwrap_or(DEFAULT_TOP)
    } else {
        0
    }
}

/// Runs until the queue closes and drains.
pub(crate) fn worker_loop(shared: &ServerShared) {
    while let Some(batch) = shared.queue.pop_coalesced(shared.config.max_batch) {
        // Chaos seam OUTSIDE the request containment: this panic
        // escapes to the supervisor, exercising worker restart and the
        // restart budget (the in-containment seam is in the estimate
        // closure below).
        if let Some(marker) = &shared.config.chaos.worker_panic_marker {
            if batch_matches_marker(&batch, marker) {
                panic!("chaos: worker panic marker {marker:?} matched");
            }
        }
        if batch[0].is_update() {
            process_update_batch(shared, batch);
        } else {
            process_batch(shared, batch);
        }
    }
}

/// Applies a coalesced batch of update jobs sequentially under the
/// slot's update mutex (writes are serialized per model; the journal
/// orders them). Each committed update swaps the served entry, so
/// subsequent reads see the new fingerprint immediately.
fn process_update_batch(shared: &ServerShared, batch: Vec<Job>) {
    let Some(slot) = shared.registry.get(&batch[0].model) else {
        let name = batch[0].model.clone();
        for job in batch {
            let _ = job
                .reply
                .send(Response::error(format!("unknown model {name}")));
        }
        return;
    };
    let mut guard = slot.update.lock().unwrap_or_else(|p| p.into_inner());
    for job in batch {
        let Some(state) = guard.as_mut() else {
            let _ = job.reply.send(Response::error(
                "updates are disabled: start the daemon with --wal-dir to enable \
                 durable model maintenance",
            ));
            continue;
        };
        if shared.read_only() {
            let _ = job.reply.send(Response::error(
                "daemon is read-only (worker restart budget exhausted); update refused",
            ));
            continue;
        }
        // A batch tagged with a different machine is refused like a
        // fingerprint mismatch: folding foreign-machine samples into the
        // delta chain would silently corrupt the model. Either side
        // lacking a tag (legacy artifacts, untagged clients) passes, and
        // a peak-normalized model is machine-agnostic by construction.
        let entry_machine = slot.current().machine.clone();
        if let (Some(model_m), Some(data_m)) = (&entry_machine, &job.request.machine) {
            if !model_m.normalized && !model_m.matches(data_m) {
                shared.bus.emit(Event::MachineMismatch {
                    context: "serve update".to_owned(),
                    model_machine: model_m.name.clone(),
                    model_fingerprint: model_m.fingerprint.clone(),
                    data_machine: data_m.name.clone(),
                    data_fingerprint: data_m.fingerprint.clone(),
                });
                let mut r = Response::error(format!(
                    "machine mismatch: model {} is from {} but the update batch is \
                     from {}; update refused",
                    job.model,
                    model_m.tag(),
                    data_m.tag()
                ));
                r.model = Some(job.model.clone());
                r.machine = entry_machine;
                let _ = job.reply.send(r);
                continue;
            }
        }
        let samples = job.request.samples.as_ref().expect("validated at enqueue");
        let ctx = shared.ctx();
        let key = job.request.key.as_deref();
        let outcome =
            parallel::run_catching(|| state.apply_update(samples, &job.samples_json, key, &ctx));
        let response = match outcome {
            Ok(Ok(ack)) => {
                if ack.applied {
                    ModelCounters::bump(&slot.counters.updates);
                    if let Some(model) = &ack.model {
                        slot.install(ModelEntry {
                            model: model.clone(),
                            fingerprint: ack.fingerprint.clone(),
                            machine: entry_machine.clone(),
                        });
                    }
                } else {
                    ModelCounters::bump(&slot.counters.deduplicated);
                }
                let mut r = Response::ok("update");
                r.model = Some(job.model.clone());
                r.fingerprint = Some(ack.fingerprint);
                r.seq = Some(ack.seq);
                r.applied = Some(ack.applied);
                r.update = ack.report;
                r.machine = entry_machine;
                r
            }
            Ok(Err(e)) => {
                let mut r = Response::error(e.to_string());
                r.model = Some(job.model.clone());
                r
            }
            Err(panic_msg) => {
                // A panic mid-apply may have left half-built state; the
                // clone-then-publish discipline makes that unlikely, but
                // refusing further writes is the safe side.
                state.mark_broken(format!("panic during update: {panic_msg}"));
                ModelCounters::bump(&slot.counters.isolated);
                shared.bus.emit(Event::RequestIsolated {
                    request: "update".to_owned(),
                    detail: panic_msg.clone(),
                });
                let mut r = Response::error(format!(
                    "update isolated after panic: {panic_msg}; further updates for this \
                     model are refused until restart"
                ));
                r.model = Some(job.model.clone());
                r
            }
        };
        let _ = job.reply.send(response);
    }
}

fn process_batch(shared: &ServerShared, batch: Vec<Job>) {
    let Some(slot) = shared.registry.get(&batch[0].model) else {
        let name = batch[0].model.clone();
        for job in batch {
            let _ = job
                .reply
                .send(Response::error(format!("unknown model {name}")));
        }
        return;
    };
    // One entry serves the whole batch: requests never straddle a reload.
    let entry = slot.current();
    slot.counters.observe_batch(batch.len() as u64);
    let total_samples: usize = batch
        .iter()
        .map(|j| j.request.samples.as_ref().map_or(0, SampleSet::len))
        .sum();
    shared.bus.emit(Event::StageStarted {
        stage: "serve-batch".to_owned(),
        items_in: Some(total_samples),
    });
    let start = Instant::now();
    let sets: Vec<&SampleSet> = batch
        .iter()
        .map(|j| j.request.samples.as_ref().expect("validated at enqueue"))
        .collect();
    match parallel::run_catching(|| {
        // Chaos seam INSIDE request containment: drives the isolation
        // path (typed error, worker survives) for tests.
        if let Some(marker) = &shared.config.chaos.panic_marker {
            if batch_matches_marker(&batch, marker) {
                panic!("chaos: request panic marker {marker:?} matched");
            }
        }
        entry.model.estimate_batch(&sets)
    }) {
        Ok(results) => {
            shared.bus.emit(Event::StageFinished {
                stage: "serve-batch".to_owned(),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                items_in: Some(total_samples),
                items_out: Some(results.len()),
            });
            for (job, result) in batch.into_iter().zip(results) {
                finish_job(shared, slot, &entry, job, result);
            }
        }
        Err(batch_panic) => {
            // The coalesced pass panicked; degrade to per-request retries
            // so only the poisoned request(s) fail.
            for job in batch {
                let samples = job.request.samples.as_ref().expect("validated at enqueue");
                match parallel::run_catching(|| {
                    if let Some(marker) = &shared.config.chaos.panic_marker {
                        if batch_matches_marker(std::slice::from_ref(&job), marker) {
                            panic!("chaos: request panic marker {marker:?} matched");
                        }
                    }
                    entry.model.estimate(samples)
                }) {
                    Ok(result) => finish_job(shared, slot, &entry, job, result),
                    Err(panic_msg) => {
                        ModelCounters::bump(&slot.counters.isolated);
                        shared.bus.emit(Event::RequestIsolated {
                            request: job.request.kind.clone(),
                            detail: panic_msg.clone(),
                        });
                        let mut response = Response::error(format!(
                            "request isolated after panic: {panic_msg} \
                             (batch pass reported: {batch_panic})"
                        ));
                        response.model = Some(job.model.clone());
                        response.fingerprint = Some(entry.fingerprint.clone());
                        let _ = job.reply.send(response);
                    }
                }
            }
        }
    }
}

/// Builds the job's response from its estimate outcome, caches success,
/// and replies.
fn finish_job(
    shared: &ServerShared,
    slot: &ModelSlot,
    entry: &Arc<ModelEntry>,
    job: Job,
    result: Result<Estimate, SpireError>,
) {
    let response = match result {
        Err(e) => {
            let mut r = Response::error(e.to_string());
            r.model = Some(job.model.clone());
            r.fingerprint = Some(entry.fingerprint.clone());
            r.machine = entry.machine.clone();
            r
        }
        Ok(estimate) => {
            let mut r = Response::ok(&job.request.kind);
            r.model = Some(job.model.clone());
            r.fingerprint = Some(entry.fingerprint.clone());
            r.machine = entry.machine.clone();
            r.cached = Some(false);
            if job.request.kind == "analyze" {
                let report = BottleneckReport::new(&estimate, &shared.catalog);
                update_drift(slot, &report);
                let top = effective_top("analyze", job.request.top);
                r.throughput = Some(report.throughput());
                r.ranked = Some(report.top(top).to_vec());
            } else {
                r.throughput = Some(estimate.throughput());
                r.per_metric = Some(
                    estimate
                        .per_metric()
                        .iter()
                        .map(|(metric, me)| MetricResult {
                            metric: metric.to_string(),
                            merged: me.merged,
                            sample_count: me.sample_count,
                        })
                        .collect(),
                );
            }
            r
        }
    };
    if response.ok {
        let top = effective_top(&job.request.kind, job.request.top);
        let key = request_key(
            &job.request.kind,
            top,
            &entry.fingerprint,
            &job.samples_json,
        );
        slot.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .put(key, response.clone());
    }
    let _ = job.reply.send(response);
}

/// Records ranking drift between the last two analyze reports — the
/// `stats` endpoint's `overlap@5` / Kendall-tau pair, which also keeps
/// the hardened rank statistics on a hot path.
fn update_drift(slot: &ModelSlot, report: &BottleneckReport) {
    let mut last = slot.last_report.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(prev) = last.as_ref() {
        let (overlap, tau) = prev.compare(report, 5);
        *slot.drift.lock().unwrap_or_else(|p| p.into_inner()) = Some((overlap, tau));
    }
    *last = Some(report.clone());
}
