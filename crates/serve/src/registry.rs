//! The model registry: named snapshot models behind atomically-swappable
//! `Arc` handles.
//!
//! Each registered model is one [`ModelSlot`]: the snapshot path it was
//! loaded from, the currently-served [`ModelEntry`] behind an
//! `RwLock<Arc<...>>`, its counters, result cache, and analyze-drift
//! state. A hot reload builds the new entry off-lock (file read,
//! checksum-verified snapshot load, fingerprint), then swaps the `Arc`
//! under a brief write lock — in-flight requests keep the entry they
//! cloned and finish against exactly the snapshot they started with,
//! which is why every response can carry an attributable fingerprint.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};

use spire_core::pipeline::{Event, RunContext};
use spire_core::snapshot::{load_model, ModelSnapshot};
use spire_core::{BottleneckReport, MachineSpec, SpireModel};

use crate::cache::LruCache;
use crate::proto::ReloadInfo;
use crate::wal::{UpdateState, WalSettings};
use crate::ServeError;

/// One immutable served model: requests clone the `Arc` and never
/// observe a half-swapped state.
#[derive(Debug)]
pub struct ModelEntry {
    /// The loaded (possibly salvaged) model.
    pub model: SpireModel,
    /// Fingerprint of the snapshot re-derived from the served model, so
    /// it identifies what is actually answering requests even after a
    /// lenient salvage dropped records.
    pub fingerprint: String,
    /// The machine the snapshot's training data came from, when its
    /// provenance recorded one. Every response carries it, and updates
    /// against a batch tagged with a different machine are refused.
    pub machine: Option<MachineSpec>,
}

/// Per-model request counters (all relaxed: they are monotonic telemetry,
/// not synchronization).
#[derive(Debug, Default)]
pub struct ModelCounters {
    /// Estimate requests routed here.
    pub estimates: AtomicU64,
    /// Analyze requests routed here.
    pub analyzes: AtomicU64,
    /// Requests shed because the queue was full.
    pub shed: AtomicU64,
    /// Requests isolated after a contained panic.
    pub isolated: AtomicU64,
    /// Cache hits.
    pub cache_hits: AtomicU64,
    /// Cache misses.
    pub cache_misses: AtomicU64,
    /// Worker batches that coalesced >1 request.
    pub coalesced_batches: AtomicU64,
    /// Largest batch seen.
    pub max_batch: AtomicU64,
    /// Successful reloads.
    pub reloads: AtomicU64,
    /// Committed update batches.
    pub updates: AtomicU64,
    /// Retried updates absorbed by the idempotency window.
    pub deduplicated: AtomicU64,
}

impl ModelCounters {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises `max_batch` to at least `n`.
    pub fn observe_batch(&self, n: u64) {
        self.max_batch.fetch_max(n, Ordering::Relaxed);
        if n > 1 {
            Self::bump(&self.coalesced_batches);
        }
    }
}

/// One registered model with its serving state.
pub struct ModelSlot {
    path: Mutex<PathBuf>,
    current: RwLock<Arc<ModelEntry>>,
    /// Telemetry counters.
    pub counters: ModelCounters,
    /// Recent batch results, keyed by request identity hash.
    pub cache: Mutex<LruCache>,
    /// The previous analyze report, for ranking-drift stats.
    pub last_report: Mutex<Option<BottleneckReport>>,
    /// `(overlap@5, kendall tau)` between the last two analyze rankings.
    pub drift: Mutex<Option<(f64, f64)>>,
    /// Durable update state, when the daemon journals updates (`None`
    /// without a WAL directory — updates are then refused, never
    /// applied volatile). The mutex also serializes commits per model.
    pub update: Mutex<Option<UpdateState>>,
}

impl ModelSlot {
    /// The currently-served entry (an `Arc` clone; never blocks writers
    /// for longer than the clone).
    pub fn current(&self) -> Arc<ModelEntry> {
        self.current
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The snapshot path backing this slot.
    pub fn path(&self) -> PathBuf {
        self.path.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Swaps the served entry (a committed update's publish step).
    pub fn install(&self, entry: ModelEntry) {
        let mut current = self.current.write().unwrap_or_else(|p| p.into_inner());
        *current = Arc::new(entry);
    }
}

/// Named models served by one daemon.
pub struct ModelRegistry {
    slots: BTreeMap<String, ModelSlot>,
}

/// Loads one snapshot file into an entry, mirroring salvage decisions
/// onto the context's bus (the same events `LoadModelStage` emits).
fn load_entry(name: &str, path: &Path, ctx: &RunContext) -> Result<(ModelEntry, bool), ServeError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        ServeError::Protocol(format!("cannot read snapshot {}: {e}", path.display()))
    })?;
    let (model, report) = load_model(&text, ctx.config.snapshot_mode)
        .map_err(|e| ServeError::Protocol(format!("cannot load model {name}: {e}")))?;
    let mut salvaged = false;
    if let Some(report) = report {
        if report.is_degraded() {
            salvaged = true;
            for d in &report.dropped {
                ctx.emit(Event::SnapshotRecordDropped {
                    metric: d.metric.to_string(),
                    reason: d.reason.clone(),
                });
            }
            ctx.emit(Event::SnapshotSalvaged {
                source: path.display().to_string(),
                dropped: report.dropped.len(),
                total: report.metrics_total,
            });
        }
    }
    let fingerprint = ModelSnapshot::from_model(&model)
        .map_err(|e| ServeError::Protocol(format!("cannot fingerprint model {name}: {e}")))?
        .fingerprint();
    // Raw model JSON (no snapshot container) simply has no machine tag.
    let machine = ModelSnapshot::from_json(&text)
        .ok()
        .and_then(|s| s.machine().cloned());
    Ok((
        ModelEntry {
            model,
            fingerprint,
            machine,
        },
        salvaged,
    ))
}

impl ModelRegistry {
    /// Loads every `(name, snapshot path)` spec; fails fast if any model
    /// is unreadable or (in strict mode) damaged.
    ///
    /// With `wal` settings, each model's durable update state is opened
    /// too: its journal is replayed (torn tails truncated with a typed
    /// event), and when committed updates are recovered the replayed
    /// model — not the snapshot from disk — becomes the served entry,
    /// so a crash-restart cycle is invisible to clients beyond the
    /// events it emits.
    pub fn open(
        specs: &[(String, PathBuf)],
        cache_capacity: usize,
        wal: Option<&WalSettings>,
        ctx: &RunContext,
    ) -> Result<Self, ServeError> {
        let mut slots = BTreeMap::new();
        for (name, path) in specs {
            if slots.contains_key(name) {
                return Err(ServeError::Protocol(format!("duplicate model name {name}")));
            }
            let (mut entry, _) = load_entry(name, path, ctx)?;
            let update = match wal {
                None => None,
                Some(settings) => {
                    let (state, recovered) = UpdateState::open(
                        name,
                        entry.model.config(),
                        ctx.config.strictness,
                        settings,
                        entry.machine.as_ref(),
                        ctx,
                    )?;
                    if let Some((model, fingerprint)) = recovered {
                        entry = ModelEntry {
                            model,
                            fingerprint,
                            machine: entry.machine,
                        };
                    }
                    Some(state)
                }
            };
            slots.insert(
                name.clone(),
                ModelSlot {
                    path: Mutex::new(path.clone()),
                    current: RwLock::new(Arc::new(entry)),
                    counters: ModelCounters::default(),
                    cache: Mutex::new(LruCache::new(cache_capacity)),
                    last_report: Mutex::new(None),
                    drift: Mutex::new(None),
                    update: Mutex::new(update),
                },
            );
        }
        Ok(ModelRegistry { slots })
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&ModelSlot> {
        self.slots.get(name)
    }

    /// Iterates `(name, slot)` in name order (the `stats` endpoint).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ModelSlot)> {
        self.slots.iter()
    }

    /// Hot-reloads `name` from `path_override` (or its registered path):
    /// builds the new entry off-lock, then swaps the `Arc`. A failed load
    /// leaves the served model untouched.
    pub fn reload(
        &self,
        name: &str,
        path_override: Option<&Path>,
        ctx: &RunContext,
    ) -> Result<ReloadInfo, ServeError> {
        let slot = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_owned()))?;
        let path = match path_override {
            Some(p) => p.to_path_buf(),
            None => slot.path(),
        };
        let (entry, salvaged) = load_entry(name, &path, ctx)?;
        let new_fingerprint = entry.fingerprint.clone();
        let old_fingerprint = {
            let mut current = slot.current.write().unwrap_or_else(|p| p.into_inner());
            let old = current.fingerprint.clone();
            *current = Arc::new(entry);
            old
        };
        if path_override.is_some() {
            *slot.path.lock().unwrap_or_else(|p| p.into_inner()) = path;
        }
        ModelCounters::bump(&slot.counters.reloads);
        ctx.emit(Event::ModelReloaded {
            model: name.to_owned(),
            old_fingerprint: old_fingerprint.clone(),
            new_fingerprint: new_fingerprint.clone(),
        });
        Ok(ReloadInfo {
            old_fingerprint,
            new_fingerprint,
            salvaged,
        })
    }
}
