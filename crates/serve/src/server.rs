//! The connection supervisor: accept loop, per-connection handlers,
//! request dispatch, and the worker pool's lifecycle.
//!
//! Threading model: one nonblocking accept loop (polled so shutdown can
//! interrupt it), one thread per connection reading frames with a short
//! receive timeout (so handlers notice shutdown without a wakeup
//! channel), and a fixed worker pool draining the bounded job queue.
//! `estimate`/`analyze` requests go through the queue (where they
//! coalesce per model); `ping`/`stats`/`reload`/`shutdown` are answered
//! inline on the connection thread — reload is an atomic `Arc` swap, so
//! answering it inline cannot stall the workers.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use spire_core::catalog::MetricCatalog;
use spire_core::pipeline::{DiagnosticsBus, Event, EventSink, PipelineConfig, RunContext};

use crate::cache::request_key;
use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{ModelStats, Request, Response, ServerStats};
use crate::queue::{Job, JobQueue};
use crate::registry::{ModelCounters, ModelRegistry};
use crate::wal::WalSettings;
use crate::worker::{self, effective_top};
use crate::ServeError;

/// Seeded fault-injection seams, all off by default. Tests plant a
/// marked metric name in a request's samples to detonate a panic at a
/// chosen layer; production configs leave both markers `None`.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Panic *inside* request containment (`parallel::run_catching`)
    /// when a batch carries a metric containing this marker — drives
    /// the `request_isolated` path.
    pub panic_marker: Option<String>,
    /// Panic in the worker loop *outside* containment — drives worker
    /// supervision, `worker_restarted`, and the restart budget.
    pub worker_panic_marker: Option<String>,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue capacity; overflow sheds with a typed event.
    pub queue_capacity: usize,
    /// Per-model LRU capacity for recent batch results (0 disables).
    pub cache_capacity: usize,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame: usize,
    /// Maximum requests coalesced into one worker batch.
    pub max_batch: usize,
    /// Pipeline configuration (snapshot mode, estimate threads, …).
    pub pipeline: PipelineConfig,
    /// Write-ahead-journal settings; `None` disables `update` requests
    /// (never applied volatile — durability is the point of the path).
    pub wal: Option<WalSettings>,
    /// How many panicked-worker respawns are tolerated before the
    /// daemon degrades to read-only instead of crash-looping.
    pub worker_restart_budget: u64,
    /// Fault-injection seams (tests only).
    pub chaos: ChaosConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 32,
            max_frame: 8 << 20,
            max_batch: 32,
            pipeline: PipelineConfig::default(),
            wal: None,
            worker_restart_budget: 4,
            chaos: ChaosConfig::default(),
        }
    }
}

/// Forwards per-context events onto the server's shared bus, so stage
/// events emitted inside an ad-hoc `RunContext` still reach the daemon's
/// sinks and degraded flag.
struct BusForward(Arc<DiagnosticsBus>);

impl EventSink for BusForward {
    fn emit(&self, event: &Event) {
        self.0.emit(event.clone());
    }
}

/// State shared by the accept loop, connection handlers, and workers.
pub struct ServerShared {
    /// Daemon configuration.
    pub config: ServerConfig,
    /// The served models.
    pub registry: ModelRegistry,
    /// The bounded request queue.
    pub queue: JobQueue,
    /// The diagnostics bus every serving decision is emitted on.
    pub bus: Arc<DiagnosticsBus>,
    /// Catalog used to annotate analyze rankings.
    pub catalog: MetricCatalog,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    /// Panicked-worker respawns so far, charged against the budget.
    worker_restarts: AtomicU64,
    /// Workers currently alive (the last one out drains the queue).
    live_workers: AtomicU64,
    /// Set once the restart budget is exhausted: updates are refused,
    /// reads keep flowing.
    read_only: AtomicBool,
}

impl ServerShared {
    /// A fresh `RunContext` whose events forward to the shared bus.
    pub fn ctx(&self) -> RunContext {
        RunContext::new(self.config.pipeline.clone())
            .with_sink(Arc::new(BusForward(self.bus.clone())))
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Whether the daemon has degraded to read-only (restart budget
    /// exhausted). Updates are refused in this state; estimates,
    /// analyzes, and stats keep working.
    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    /// Degrades the daemon to read-only, emitting `daemon_read_only`
    /// exactly once no matter how many workers hit the budget.
    pub fn enter_read_only(&self, reason: String) {
        if !self.read_only.swap(true, Ordering::Relaxed) {
            self.bus.emit(Event::DaemonReadOnly { reason });
        }
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Binds the listener and loads every `(name, snapshot path)` model.
    /// Load failures (unreadable file, strict-mode damage) fail the bind;
    /// lenient salvages come up serving with salvage events on `sinks`.
    pub fn bind(
        config: ServerConfig,
        models: Vec<(String, PathBuf)>,
        sinks: Vec<Arc<dyn EventSink>>,
    ) -> Result<Server, ServeError> {
        let mut bus = DiagnosticsBus::new();
        for sink in sinks {
            bus.add_sink(sink);
        }
        let bus = Arc::new(bus);
        let boot_ctx =
            RunContext::new(config.pipeline.clone()).with_sink(Arc::new(BusForward(bus.clone())));
        let registry = ModelRegistry::open(
            &models,
            config.cache_capacity,
            config.wal.as_ref(),
            &boot_ctx,
        )?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let queue = JobQueue::new(config.queue_capacity);
        Ok(Server {
            listener,
            shared: Arc::new(ServerShared {
                config,
                registry,
                queue,
                bus,
                catalog: MetricCatalog::table_iii(),
                shutdown: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                worker_restarts: AtomicU64::new(0),
                live_workers: AtomicU64::new(0),
                read_only: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state (tests inspect counters and the bus).
    pub fn shared(&self) -> Arc<ServerShared> {
        self.shared.clone()
    }

    /// Serves until a `shutdown` request arrives, then drains the queue,
    /// joins workers and connections, and returns whether the run
    /// degraded (sheds, isolations, salvages — exit-code-2 semantics).
    pub fn run(self) -> Result<bool, ServeError> {
        let shared = self.shared;
        let worker_count = shared.config.workers.max(1);
        shared
            .live_workers
            .store(worker_count as u64, Ordering::Relaxed);
        let mut workers = Vec::new();
        for i in 0..worker_count {
            let s = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spire-serve-worker-{i}"))
                    .spawn(move || supervised_worker(&s, i))?,
            );
        }
        let mut connections = Vec::new();
        loop {
            if shared.shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    let s = shared.clone();
                    connections.push(std::thread::spawn(move || handle_connection(&s, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.queue.close();
                    return Err(ServeError::Io(e));
                }
            }
        }
        // Drain: accepted requests still get answers, then workers see
        // the closed+empty queue and exit.
        shared.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        // Every committed update is already fsynced; this final pass
        // re-syncs each journal so even metadata-only tail state is
        // durable before the process exits.
        for (_, slot) in shared.registry.iter() {
            let mut guard = slot.update.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(state) = guard.as_mut() {
                let _ = state.sync();
            }
        }
        for connection in connections {
            let _ = connection.join();
        }
        Ok(shared.bus.degraded())
    }
}

/// Turns a `catch_unwind` payload into the human-readable panic message.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// The supervision wrapper around [`worker::worker_loop`]: a panicked
/// worker is respawned in place (same thread, fresh loop) with a
/// `worker_restarted` event, until the pool-wide restart budget is
/// exhausted — then the daemon degrades to read-only instead of
/// crash-looping. The last worker out closes and drains the queue so no
/// accepted request waits forever on a pool that no longer exists.
fn supervised_worker(shared: &ServerShared, index: usize) {
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker::worker_loop(shared)))
        {
            Ok(()) => break, // queue closed and drained: clean exit
            Err(payload) => {
                let detail = panic_detail(payload);
                let restarts = shared.worker_restarts.fetch_add(1, Ordering::Relaxed) + 1;
                let budget = shared.config.worker_restart_budget;
                if restarts <= budget {
                    shared.bus.emit(Event::WorkerRestarted {
                        worker: index,
                        restarts,
                        budget,
                        detail,
                    });
                    continue;
                }
                shared.enter_read_only(format!(
                    "worker restart budget exhausted ({restarts} panics, budget {budget})"
                ));
                break;
            }
        }
    }
    if shared.live_workers.fetch_sub(1, Ordering::AcqRel) == 1 && !shared.shutting_down() {
        // Budget exhaustion killed the last worker while the daemon is
        // still accepting: close the queue (new pushes shed) and refuse
        // what is already queued with a typed error.
        shared.queue.close();
        for job in shared.queue.drain() {
            let _ = job.reply.send(Response::error(
                "no live workers remain (restart budget exhausted); request refused",
            ));
        }
    }
}

fn send(writer: &mut impl Write, response: &Response) -> bool {
    match serde_json::to_string(response) {
        Ok(json) => write_frame(writer, json.as_bytes()).is_ok(),
        Err(_) => false,
    }
}

fn handle_connection(shared: &ServerShared, stream: TcpStream) {
    // The short receive timeout is the shutdown poll: an idle connection
    // wakes every 200 ms to check the flag instead of blocking forever.
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader, shared.config.max_frame) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let parsed: Result<Request, String> = std::str::from_utf8(&payload)
                    .map_err(|e| format!("payload is not UTF-8: {e}"))
                    .and_then(|text| {
                        serde_json::from_str(text).map_err(|e| format!("invalid request: {e}"))
                    });
                match parsed {
                    Err(detail) => {
                        // Malformed JSON inside a well-formed frame: the
                        // stream is still in sync, so answer and go on.
                        if !send(&mut writer, &Response::error(detail)) {
                            break;
                        }
                    }
                    Ok(request) if request.kind == "shutdown" => {
                        shared.shutdown.store(true, Ordering::Relaxed);
                        shared.queue.close();
                        let _ = send(&mut writer, &Response::ok("shutdown"));
                        break;
                    }
                    Ok(request) => {
                        let response = dispatch(shared, request);
                        if !send(&mut writer, &response) {
                            break;
                        }
                    }
                }
            }
            Err(FrameError::Oversize { declared, max }) => {
                // The refused payload is still on the wire, so the stream
                // is desynced: answer, then close.
                let _ = send(
                    &mut writer,
                    &Response::error(format!(
                        "frame of {declared} bytes exceeds the {max}-byte cap"
                    )),
                );
                break;
            }
            Err(FrameError::Truncated) => break,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    break;
                }
            }
            Err(FrameError::Io(_)) => break,
        }
    }
}

fn dispatch(shared: &ServerShared, request: Request) -> Response {
    match request.kind.as_str() {
        "ping" => Response::ok("pong"),
        "stats" => stats_response(shared),
        "reload" => reload_response(shared, &request),
        "estimate" | "analyze" => batchable_response(shared, request),
        "update" => update_response(shared, request),
        other => Response::error(format!(
            "unknown request kind {other:?} \
             (expected ping, estimate, analyze, update, reload, stats, or shutdown)"
        )),
    }
}

fn reload_response(shared: &ServerShared, request: &Request) -> Response {
    let Some(name) = request.model.as_deref() else {
        return Response::error("reload requires a model name");
    };
    let ctx = shared.ctx();
    match shared
        .registry
        .reload(name, request.path.as_deref().map(Path::new), &ctx)
    {
        Ok(info) => {
            let mut r = Response::ok("reload");
            r.model = Some(name.to_owned());
            r.fingerprint = Some(info.new_fingerprint.clone());
            r.machine = shared
                .registry
                .get(name)
                .and_then(|slot| slot.current().machine.clone());
            r.reloaded = Some(info);
            r
        }
        Err(e) => {
            let mut r = Response::error(e.to_string());
            r.model = Some(name.to_owned());
            r
        }
    }
}

fn stats_response(shared: &ServerShared) -> Response {
    let models = shared
        .registry
        .iter()
        .map(|(name, slot)| {
            let entry = slot.current();
            let c = &slot.counters;
            let drift = *slot.drift.lock().unwrap_or_else(|p| p.into_inner());
            let last_seq = slot
                .update
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_ref()
                .map(|state| state.seq());
            ModelStats {
                name: name.clone(),
                fingerprint: entry.fingerprint.clone(),
                metrics: entry.model.metric_count(),
                estimates: c.estimates.load(Ordering::Relaxed),
                analyzes: c.analyzes.load(Ordering::Relaxed),
                shed: c.shed.load(Ordering::Relaxed),
                isolated: c.isolated.load(Ordering::Relaxed),
                cache_hits: c.cache_hits.load(Ordering::Relaxed),
                cache_misses: c.cache_misses.load(Ordering::Relaxed),
                coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
                max_batch: c.max_batch.load(Ordering::Relaxed),
                reloads: c.reloads.load(Ordering::Relaxed),
                updates: c.updates.load(Ordering::Relaxed),
                deduplicated: c.deduplicated.load(Ordering::Relaxed),
                last_seq,
                drift_overlap: drift.map(|(overlap, _)| overlap),
                drift_tau: drift.map(|(_, tau)| tau),
                machine: entry.machine.clone(),
            }
        })
        .collect();
    let mut r = Response::ok("stats");
    r.stats = Some(ServerStats {
        connections: shared.connections.load(Ordering::Relaxed),
        requests: shared.requests.load(Ordering::Relaxed),
        models,
    });
    r
}

fn batchable_response(shared: &ServerShared, request: Request) -> Response {
    let Some(name) = request.model.clone() else {
        return Response::error(format!("{} requires a model name", request.kind));
    };
    let Some(slot) = shared.registry.get(&name) else {
        return Response::error(format!("unknown model {name}"));
    };
    let Some(samples) = request.samples.as_ref() else {
        return Response::error(format!("{} requires samples", request.kind));
    };
    let samples_json = match serde_json::to_string(samples) {
        Ok(json) => json,
        Err(e) => return Response::error(format!("cannot serialize samples: {e}")),
    };
    // Cache lookup against the currently-served fingerprint; a reload
    // between here and the worker only wastes the lookup, never serves a
    // stale model's result as the new model's.
    let fingerprint = slot.current().fingerprint.clone();
    let key = request_key(
        &request.kind,
        effective_top(&request.kind, request.top),
        &fingerprint,
        &samples_json,
    );
    // The estimates/analyzes counters count *accepted* requests — bumped
    // on a cache hit or after a successful enqueue, never on a shed —
    // so `estimates + analyzes` always equals requests that received (or
    // will receive) a real answer, exactly once each.
    if let Some(mut hit) = slot
        .cache
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(key)
    {
        ModelCounters::bump(&slot.counters.cache_hits);
        match request.kind.as_str() {
            "estimate" => ModelCounters::bump(&slot.counters.estimates),
            _ => ModelCounters::bump(&slot.counters.analyzes),
        }
        hit.cached = Some(true);
        return hit;
    }
    ModelCounters::bump(&slot.counters.cache_misses);

    let kind = request.kind.clone();
    let (reply, receiver) = mpsc::channel();
    let job = Job {
        model: name.clone(),
        request,
        samples_json,
        reply,
    };
    match shared.queue.push(job) {
        Ok(()) => {
            match kind.as_str() {
                "estimate" => ModelCounters::bump(&slot.counters.estimates),
                _ => ModelCounters::bump(&slot.counters.analyzes),
            }
            receiver
                .recv()
                .unwrap_or_else(|_| Response::error("worker dropped the request"))
        }
        Err((job, depth)) => {
            let capacity = shared.queue.capacity();
            ModelCounters::bump(&slot.counters.shed);
            shared.bus.emit(Event::RequestShed {
                model: name.clone(),
                depth,
                capacity,
            });
            let mut r = Response::error(format!(
                "request shed: queue full ({depth}/{capacity}); retry later"
            ));
            r.shed = Some(true);
            r.model = Some(job.model);
            r
        }
    }
}

/// Routes an `update` through the queue. Updates never touch the result
/// cache; fast-fail checks (unknown model, updates disabled, read-only)
/// answer inline so a doomed write never occupies queue capacity. The
/// worker re-checks both conditions — they can flip while queued.
fn update_response(shared: &ServerShared, request: Request) -> Response {
    let Some(name) = request.model.clone() else {
        return Response::error("update requires a model name");
    };
    let Some(slot) = shared.registry.get(&name) else {
        return Response::error(format!("unknown model {name}"));
    };
    let Some(samples) = request.samples.as_ref() else {
        return Response::error("update requires samples");
    };
    if shared.read_only() {
        return Response::error(
            "daemon is read-only (worker restart budget exhausted); update refused",
        );
    }
    if slot
        .update
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .is_none()
    {
        return Response::error(
            "updates are disabled: start the daemon with --wal-dir to enable \
             durable model maintenance",
        );
    }
    let samples_json = match serde_json::to_string(samples) {
        Ok(json) => json,
        Err(e) => return Response::error(format!("cannot serialize samples: {e}")),
    };
    let (reply, receiver) = mpsc::channel();
    let job = Job {
        model: name.clone(),
        request,
        samples_json,
        reply,
    };
    match shared.queue.push(job) {
        Ok(()) => receiver
            .recv()
            .unwrap_or_else(|_| Response::error("worker dropped the request")),
        Err((job, depth)) => {
            let capacity = shared.queue.capacity();
            ModelCounters::bump(&slot.counters.shed);
            shared.bus.emit(Event::RequestShed {
                model: name.clone(),
                depth,
                capacity,
            });
            let mut r = Response::error(format!(
                "request shed: queue full ({depth}/{capacity}); retry later"
            ));
            r.shed = Some(true);
            r.model = Some(job.model);
            r
        }
    }
}
