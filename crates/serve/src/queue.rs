//! The bounded request queue between connection handlers and workers,
//! with same-model coalescing on the pop side.
//!
//! Backpressure is explicit: a push against a full queue is refused and
//! the caller sheds the request with a typed `request_shed` event — the
//! daemon never blocks a connection thread on queue space and never
//! drops silently. Workers pop *batches*: the oldest job plus every
//! other queued job for the same model (FIFO order preserved), which is
//! what feeds the coalesced SoA estimate path.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

use crate::proto::{Request, Response};

/// One queued estimate/analyze/update request.
pub struct Job {
    /// Target model name (validated against the registry at enqueue).
    pub model: String,
    /// The parsed request (kind is `estimate`, `analyze`, or `update`).
    pub request: Request,
    /// The request's samples serialized once at enqueue, reused for the
    /// cache key (reads) and the batch fingerprint (updates) so workers
    /// never re-serialize.
    pub samples_json: String,
    /// Where the worker sends the response.
    pub reply: mpsc::Sender<Response>,
}

impl Job {
    /// Whether this job mutates model state. Writes and reads never
    /// coalesce into one batch: a read batch serves from one immutable
    /// entry, while an update batch commits through the journal.
    pub fn is_update(&self) -> bool {
        self.request.kind == "update"
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded multi-producer queue with coalescing consumers.
pub struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue refusing pushes beyond `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `job`, or refuses it when the queue is full or closed.
    /// The refusal returns the job (so the caller can answer its reply
    /// channel) together with the depth observed.
    // The Err variant deliberately hands the whole Job back by value;
    // boxing it would put an allocation on the shed path.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<(), (Job, usize)> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.closed || state.jobs.len() >= self.capacity {
            let depth = state.jobs.len();
            return Err((job, depth));
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next batch: the oldest job plus up to
    /// `max_batch - 1` other queued jobs for the same model *and the
    /// same read/write class* (updates never coalesce with estimates or
    /// analyzes), in FIFO order. Returns `None` once the queue is closed
    /// *and* drained, so no accepted request is ever abandoned at
    /// shutdown.
    pub fn pop_coalesced(&self, max_batch: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(first) = state.jobs.pop_front() {
                let model = first.model.clone();
                let class = first.is_update();
                let mut batch = vec![first];
                let mut i = 0;
                while i < state.jobs.len() && batch.len() < max_batch.max(1) {
                    if state.jobs[i].model == model && state.jobs[i].is_update() == class {
                        batch.push(state.jobs.remove(i).expect("index checked"));
                    } else {
                        i += 1;
                    }
                }
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Empties the queue, returning every pending job — the last-resort
    /// drain when no worker is left alive to answer them.
    pub fn drain(&self) -> Vec<Job> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.jobs.drain(..).collect()
    }

    /// Closes the queue: pushes start failing, and poppers drain what is
    /// left then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Pending job count (diagnostics only; racy by nature).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .jobs
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(model: &str) -> Job {
        kind_job(model, "estimate")
    }

    fn kind_job(model: &str, kind: &str) -> Job {
        let (tx, _rx) = mpsc::channel();
        Job {
            model: model.to_owned(),
            request: Request::bare(kind),
            samples_json: String::new(),
            reply: tx,
        }
    }

    #[test]
    fn pop_coalesces_same_model_jobs_in_fifo_order() {
        let q = JobQueue::new(16);
        for m in ["a", "b", "a", "a", "b"] {
            q.push(job(m)).map_err(|_| ()).unwrap();
        }
        let batch = q.pop_coalesced(8).unwrap();
        assert_eq!(
            batch.iter().map(|j| j.model.as_str()).collect::<Vec<_>>(),
            ["a", "a", "a"]
        );
        let batch = q.pop_coalesced(8).unwrap();
        assert_eq!(
            batch.iter().map(|j| j.model.as_str()).collect::<Vec<_>>(),
            ["b", "b"]
        );
    }

    #[test]
    fn updates_never_coalesce_with_reads() {
        let q = JobQueue::new(16);
        q.push(kind_job("a", "estimate")).map_err(|_| ()).unwrap();
        q.push(kind_job("a", "update")).map_err(|_| ()).unwrap();
        q.push(kind_job("a", "estimate")).map_err(|_| ()).unwrap();
        q.push(kind_job("a", "update")).map_err(|_| ()).unwrap();
        let batch = q.pop_coalesced(8).unwrap();
        assert_eq!(
            batch
                .iter()
                .map(|j| j.request.kind.as_str())
                .collect::<Vec<_>>(),
            ["estimate", "estimate"]
        );
        let batch = q.pop_coalesced(8).unwrap();
        assert_eq!(
            batch
                .iter()
                .map(|j| j.request.kind.as_str())
                .collect::<Vec<_>>(),
            ["update", "update"],
            "same-model updates may batch together, but never with reads"
        );
    }

    #[test]
    fn drain_empties_pending_jobs() {
        let q = JobQueue::new(8);
        for _ in 0..3 {
            q.push(job("a")).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.drain().len(), 3);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let q = JobQueue::new(16);
        for _ in 0..5 {
            q.push(job("a")).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.pop_coalesced(2).unwrap().len(), 2);
        assert_eq!(q.pop_coalesced(2).unwrap().len(), 2);
        assert_eq!(q.pop_coalesced(2).unwrap().len(), 1);
    }

    #[test]
    fn full_queue_refuses_with_depth() {
        let q = JobQueue::new(2);
        q.push(job("a")).map_err(|_| ()).unwrap();
        q.push(job("a")).map_err(|_| ()).unwrap();
        let (_returned, depth) = q.push(job("a")).expect_err("third push sheds");
        assert_eq!(depth, 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.push(job("a")).map_err(|_| ()).unwrap();
        q.close();
        assert!(q.push(job("a")).is_err(), "closed queue refuses pushes");
        assert_eq!(q.pop_coalesced(8).unwrap().len(), 1);
        assert!(q.pop_coalesced(8).is_none());
    }
}
