//! End-to-end tests for the spire-serve daemon: a real listener on an
//! ephemeral port, real client connections, concurrent load, malformed
//! and oversize frames, mid-flight hot reload, and shed-under-load.
//!
//! The invariants under test:
//! - serve-path estimates are bit-identical to direct
//!   `SpireModel::estimate` on the same samples;
//! - every response is attributable to exactly one snapshot fingerprint,
//!   even while `reload` races in-flight requests (no torn models);
//! - a full queue sheds with a typed refusal and a `request_shed` event,
//!   never a silent drop or a hang;
//! - protocol garbage is rejected without killing the daemon.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use spire_core::pipeline::{CollectingSink, EventSink};
use spire_core::{
    write_atomic, ModelSnapshot, Sample, SampleSet, SpireModel, TrainConfig, TrainStrictness,
};
use spire_serve::frame::{read_frame, write_frame};
use spire_serve::{Client, Request, Server, ServerConfig};

/// A deterministic multi-metric training set; `scale` perturbs the
/// ceilings so different scales train to different fingerprints.
fn training_set(scale: f64) -> SampleSet {
    let mut set = SampleSet::new();
    for (m, metric) in ["m_alpha", "m_beta", "m_gamma"].iter().enumerate() {
        for i in 1..20 {
            let x = (i * (m + 2)) as f64;
            let y = (60.0 * scale - i as f64).max(1.0);
            set.push(Sample::new(*metric, 10.0, x, y).unwrap());
        }
    }
    set
}

/// A request workload: same metrics, spread varied by `salt` so distinct
/// workloads produce distinct estimates (and distinct cache keys).
fn workload(salt: usize) -> SampleSet {
    let mut set = SampleSet::new();
    for (m, metric) in ["m_alpha", "m_beta", "m_gamma"].iter().enumerate() {
        for i in 1..10 {
            let x = (i * (m + 2) + salt) as f64;
            let y = (30.0 - i as f64 - salt as f64 * 0.25).max(1.0);
            set.push(Sample::new(*metric, 5.0 + salt as f64, x, y).unwrap());
        }
    }
    set
}

fn train(scale: f64) -> SpireModel {
    SpireModel::train_with_report(
        &training_set(scale),
        TrainConfig::default(),
        TrainStrictness::Strict,
    )
    .unwrap()
    .model
}

fn snapshot_to(path: &std::path::Path, model: &SpireModel) -> String {
    let snapshot = ModelSnapshot::from_model(model).unwrap();
    write_atomic(path, &snapshot.to_json()).unwrap();
    snapshot.fingerprint()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spire-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Binds a daemon on an ephemeral port and runs it on a background
/// thread. Returns the address, the shared state, the collecting sink,
/// and the join handle yielding `run()`'s degraded flag.
#[allow(clippy::type_complexity)]
fn start(
    config: ServerConfig,
    models: Vec<(String, PathBuf)>,
) -> (
    String,
    Arc<spire_serve::server::ServerShared>,
    Arc<CollectingSink>,
    thread::JoinHandle<Result<bool, spire_serve::ServeError>>,
) {
    let sink = Arc::new(CollectingSink::new());
    let sinks: Vec<Arc<dyn EventSink>> = vec![sink.clone()];
    let server = Server::bind(config, models, sinks).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let shared = server.shared();
    let handle = thread::spawn(move || server.run());
    (addr, shared, sink, handle)
}

#[test]
fn concurrent_clients_match_direct_estimates_bit_for_bit() {
    let dir = temp_dir("concurrent");
    let model = train(1.0);
    let path = dir.join("model.json");
    let fingerprint = snapshot_to(&path, &model);

    let (addr, _shared, sink, handle) =
        start(ServerConfig::default(), vec![("m".to_owned(), path)]);

    // Expected throughputs straight from the library.
    let expected: Vec<u64> = (0..4)
        .map(|salt| {
            model
                .estimate(&workload(salt))
                .unwrap()
                .throughput()
                .to_bits()
        })
        .collect();

    let mut clients = Vec::new();
    for t in 0..8 {
        let addr = addr.clone();
        let expected = expected.clone();
        clients.push(thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            for round in 0..6 {
                let salt = (t + round) % 4;
                let response = client.estimate("m", &workload(salt)).unwrap();
                assert!(response.ok, "estimate failed: {:?}", response.error);
                assert_eq!(
                    response.throughput.unwrap().to_bits(),
                    expected[salt],
                    "serve-path estimate diverged from the direct API"
                );
                let per_metric = response.per_metric.as_ref().unwrap();
                assert_eq!(per_metric.len(), 3);
                let analyze = client.analyze("m", &workload(salt), Some(2)).unwrap();
                assert!(analyze.ok);
                assert_eq!(analyze.ranked.as_ref().unwrap().len(), 2);
            }
        }));
    }
    for client in clients {
        client.join().unwrap();
    }

    let mut control = Client::connect(&addr).unwrap();
    let stats = control.stats().unwrap().stats.unwrap();
    let m = &stats.models[0];
    assert_eq!(m.fingerprint, fingerprint);
    assert_eq!(m.estimates + m.analyzes, 96, "all requests accounted for");
    assert_eq!(m.isolated, 0, "no server panics");
    assert!(
        m.cache_hits > 0,
        "repeated identical requests should hit the cache"
    );
    // Two analyzes happened, so drift (overlap@5, kendall tau) between
    // the last two rankings is populated and finite — this is the
    // hardened rank-statistics path under real traffic.
    let overlap = m.drift_overlap.expect("drift overlap recorded");
    let tau = m.drift_tau.expect("drift tau recorded");
    assert!((0.0..=1.0).contains(&overlap));
    assert!((-1.0..=1.0).contains(&tau));
    control.shutdown().unwrap();

    let degraded = handle.join().unwrap().unwrap();
    assert!(!degraded, "a clean run must not be degraded");
    assert!(
        !sink.events().iter().any(|e| e.kind() == "request_isolated"),
        "no requests should have been isolated"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_oversize_frames_are_rejected_without_killing_the_daemon() {
    let dir = temp_dir("frames");
    let path = dir.join("model.json");
    snapshot_to(&path, &train(1.0));
    let config = ServerConfig {
        max_frame: 4096,
        ..ServerConfig::default()
    };
    let (addr, _shared, _sink, handle) = start(config, vec![("m".to_owned(), path)]);

    // Garbage JSON in a well-formed frame: typed error, stream stays in
    // sync, the same connection keeps working.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, b"this is not json").unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    let text = std::str::from_utf8(&payload).unwrap();
    assert!(text.contains("invalid request"), "got: {text}");
    write_frame(&mut stream, b"{\"kind\":\"ping\"}").unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert!(std::str::from_utf8(&payload).unwrap().contains("pong"));

    // Non-UTF-8 payload: typed error.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, &[0xff, 0xfe, 0x80]).unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert!(std::str::from_utf8(&payload).unwrap().contains("not UTF-8"));

    // Oversize declared length: refused before allocation, answered,
    // then the (desynced) connection is closed.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&(8192u32).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert!(std::str::from_utf8(&payload)
        .unwrap()
        .contains("exceeds the 4096-byte cap"));
    assert!(
        read_frame(&mut stream, 1 << 20).unwrap().is_none(),
        "oversize connection must be closed"
    );

    // A truncated frame (prefix promises more than arrives) only drops
    // that connection.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&(100u32).to_be_bytes()).unwrap();
    stream.write_all(b"short").unwrap();
    drop(stream);

    // Unknown request kinds and unknown models get typed errors.
    let mut client = Client::connect(&addr).unwrap();
    let response = client.request(&Request::bare("frobnicate")).unwrap();
    assert!(!response.ok);
    assert!(response.error.unwrap().contains("unknown request kind"));
    let response = client.estimate("nope", &workload(0)).unwrap();
    assert!(!response.ok);
    assert!(response.error.unwrap().contains("unknown model"));
    let response = client.request(&Request::bare("estimate")).unwrap();
    assert!(!response.ok, "estimate without a model must fail");

    // The daemon survived all of it.
    assert!(client.ping().unwrap().ok);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_flight_reload_never_tears_a_model() {
    let dir = temp_dir("reload");
    let path = dir.join("model.json");
    let model_a = train(1.0);
    let model_b = train(1.7);
    let fp_a = snapshot_to(&path, &model_a);
    let fp_b = ModelSnapshot::from_model(&model_b).unwrap().fingerprint();
    assert_ne!(fp_a, fp_b, "the two snapshots must be distinguishable");

    // Cache off: every response must come from a real estimate pass.
    let config = ServerConfig {
        cache_capacity: 0,
        workers: 3,
        ..ServerConfig::default()
    };
    let (addr, _shared, sink, handle) = start(config, vec![("m".to_owned(), path.clone())]);

    // Every (workload, fingerprint) pair has exactly one right answer.
    let expected: Vec<[u64; 2]> = (0..4)
        .map(|salt| {
            [
                model_a
                    .estimate(&workload(salt))
                    .unwrap()
                    .throughput()
                    .to_bits(),
                model_b
                    .estimate(&workload(salt))
                    .unwrap()
                    .throughput()
                    .to_bits(),
            ]
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for t in 0..4usize {
        let addr = addr.clone();
        let expected = expected.clone();
        let fp_a = fp_a.clone();
        let fp_b = fp_b.clone();
        let stop = stop.clone();
        hammers.push(thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let mut checked = 0usize;
            let mut round = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let salt = (t + round) % 4;
                round += 1;
                let response = client.estimate("m", &workload(salt)).unwrap();
                assert!(response.ok, "estimate failed: {:?}", response.error);
                let fp = response.fingerprint.as_deref().unwrap();
                let want = if fp == fp_a {
                    expected[salt][0]
                } else if fp == fp_b {
                    expected[salt][1]
                } else {
                    panic!("response carries unknown fingerprint {fp}");
                };
                assert_eq!(
                    response.throughput.unwrap().to_bits(),
                    want,
                    "throughput does not match the fingerprint's model: torn reload"
                );
                checked += 1;
            }
            checked
        }));
    }

    // Flip the snapshot on disk and hot-reload, repeatedly, while the
    // hammers are mid-flight.
    let mut control = Client::connect(&addr).unwrap();
    let mut current_is_a = true;
    for _ in 0..8 {
        thread::sleep(Duration::from_millis(30));
        let next = if current_is_a { &model_b } else { &model_a };
        snapshot_to(&path, next);
        let response = control.reload("m", None).unwrap();
        assert!(response.ok, "reload failed: {:?}", response.error);
        let info = response.reloaded.unwrap();
        assert_eq!(
            info.new_fingerprint,
            if current_is_a {
                fp_b.clone()
            } else {
                fp_a.clone()
            }
        );
        current_is_a = !current_is_a;
    }
    stop.store(true, Ordering::Relaxed);
    let checked: usize = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        checked > 32,
        "hammers should have exercised the swap window"
    );

    let reload_events = sink
        .events()
        .iter()
        .filter(|e| e.kind() == "model_reloaded")
        .count();
    assert_eq!(reload_events, 8);
    control.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_typed_refusals_and_events() {
    let dir = temp_dir("shed");
    let path = dir.join("model.json");
    snapshot_to(&path, &train(1.0));
    // One worker, a one-slot queue: concurrent pushers must overflow.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (addr, shared, sink, handle) = start(config, vec![("m".to_owned(), path)]);

    let mut total_ok = 0usize;
    let mut total_shed = 0usize;
    // Rounds of 16 simultaneous estimates against the one-slot queue;
    // retry until sheds appear (they essentially always do in round 1).
    for _round in 0..10 {
        let mut senders = Vec::new();
        for t in 0..16usize {
            let addr = addr.clone();
            senders.push(thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let response = client.estimate("m", &workload(t % 4)).unwrap();
                (response.ok, response.shed == Some(true), response.error)
            }));
        }
        for sender in senders {
            let (ok, shed, error) = sender.join().unwrap();
            if shed {
                assert!(!ok, "a shed response must not claim success");
                assert!(
                    error.unwrap().contains("queue full"),
                    "shed refusals must say why"
                );
                total_shed += 1;
            } else {
                assert!(ok, "non-shed responses must succeed: {error:?}");
                total_ok += 1;
            }
        }
        if total_shed > 0 {
            break;
        }
    }
    assert!(total_shed > 0, "overload never shed");
    assert!(total_ok > 0, "someone must still have been served");

    let shed_events = sink
        .events()
        .iter()
        .filter(|e| e.kind() == "request_shed")
        .count();
    assert_eq!(
        shed_events, total_shed,
        "every shed refusal must also be a bus event"
    );
    assert!(shared.bus.degraded(), "sheds flip the degraded flag");

    let mut control = Client::connect(&addr).unwrap();
    let stats = control.stats().unwrap().stats.unwrap();
    assert_eq!(stats.models[0].shed, total_shed as u64);
    assert_eq!(stats.models[0].isolated, 0);
    control.shutdown().unwrap();
    let degraded = handle.join().unwrap().unwrap();
    assert!(degraded, "a shedding run reports degraded at exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn machine_tags_flow_through_responses_and_gate_updates() {
    use spire_core::{MachinePeaks, MachineSpec, SnapshotProvenance};

    fn spec(name: &str, fp: &str) -> MachineSpec {
        MachineSpec {
            name: name.to_owned(),
            fingerprint: fp.to_owned(),
            peaks: MachinePeaks {
                throughput: 4.0,
                bandwidth: std::collections::BTreeMap::new(),
            },
            normalized: false,
        }
    }

    let dir = temp_dir("machine");
    let model = train(1.0);
    let path = dir.join("model.json");
    let machine = spec("skylake-server", "aaaaaaaaaaaaaaaa");
    let snapshot = ModelSnapshot::from_model(&model)
        .unwrap()
        .with_provenance(SnapshotProvenance {
            machine: Some(machine.clone()),
            ..SnapshotProvenance::default()
        });
    write_atomic(&path, &snapshot.to_json()).unwrap();

    let config = ServerConfig {
        wal: Some(spire_serve::WalSettings::new(dir.join("wal"))),
        ..ServerConfig::default()
    };
    let (addr, shared, sink, handle) = start(config, vec![("m".to_owned(), path)]);
    let mut client = Client::connect(&addr).unwrap();

    // Estimate responses and stats carry the served model's machine tag.
    let response = client.estimate("m", &workload(0)).unwrap();
    assert!(response.ok);
    let served = response.machine.expect("estimate response carries machine");
    assert_eq!(served.name, "skylake-server");
    assert_eq!(served.fingerprint, "aaaaaaaaaaaaaaaa");
    let stats = client.stats().unwrap().stats.unwrap();
    assert_eq!(
        stats.models[0].machine.as_ref().unwrap().name,
        "skylake-server"
    );

    // An update tagged with a different machine is refused with a typed
    // error and exactly one machine_mismatch bus event.
    let foreign = spec("little", "bbbbbbbbbbbbbbbb");
    let refused = client
        .update_tagged("m", &workload(1), Some("k-mismatch"), Some(&foreign))
        .unwrap();
    assert!(!refused.ok, "cross-machine update must be refused");
    let detail = refused.error.unwrap();
    assert!(detail.contains("machine mismatch"), "{detail}");
    assert!(
        detail.contains("skylake-server") && detail.contains("little"),
        "{detail}"
    );
    let mismatches: Vec<_> = sink
        .events()
        .iter()
        .filter(|e| e.kind() == "machine_mismatch")
        .cloned()
        .collect();
    assert_eq!(mismatches.len(), 1, "exactly one machine_mismatch event");
    assert!(
        shared.bus.degraded(),
        "a refused cross-machine update degrades the run"
    );

    // The same batch tagged with the *matching* machine commits, and so
    // does an untagged (legacy) batch.
    let accepted = client
        .update_tagged("m", &workload(1), Some("k-match"), Some(&machine))
        .unwrap();
    assert!(
        accepted.ok,
        "same-machine update must commit: {:?}",
        accepted.error
    );
    assert_eq!(accepted.machine.as_ref().unwrap().name, "skylake-server");
    let legacy = client.update("m", &workload(2), Some("k-legacy")).unwrap();
    assert!(legacy.ok, "untagged update must commit: {:?}", legacy.error);

    // The installed post-update entry keeps the machine tag.
    let stats = client.stats().unwrap().stats.unwrap();
    assert_eq!(
        stats.models[0].machine.as_ref().unwrap().name,
        "skylake-server"
    );
    assert_eq!(stats.models[0].updates, 2);

    client.shutdown().unwrap();
    let _ = handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
