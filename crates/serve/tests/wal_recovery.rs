//! Crash-safety and supervision tests for the durable update path.
//!
//! The invariants under test:
//! - killing the daemon at *every* byte offset of the journal recovers a
//!   model bit-identical to a clean batch retrain over exactly the
//!   batches whose records are fully on disk (the durability contract:
//!   acknowledged means replayable, torn means dropped);
//! - a retried idempotent update is applied exactly once, even across a
//!   crash-restart cycle (the dedup window is rebuilt from the journal);
//! - a panicking worker is respawned under supervision until the restart
//!   budget runs out, after which the daemon degrades to read-only
//!   instead of crash-looping;
//! - isolated requests are counted exactly once in the stats counters
//!   (the counter-drift regression: sheds are never counted as serves).

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use spire_core::pipeline::{CollectingSink, EventSink, PipelineConfig, RunContext};
use spire_core::{
    write_atomic, ModelSnapshot, Sample, SampleSet, SpireModel, TrainConfig, TrainStrictness,
};
use spire_serve::wal::{UpdateState, WalSettings};
use spire_serve::{ChaosConfig, Client, Server, ServerConfig};

fn ctx() -> RunContext {
    RunContext::new(PipelineConfig::default())
}

/// A small single-metric batch (keeps journal records short so the
/// every-byte-offset sweep stays fast).
fn tiny_batch(salt: u64) -> SampleSet {
    let mut set = SampleSet::new();
    for i in 0..2u64 {
        let x = (salt * 17 + i * 3 + 1) as f64;
        set.push(Sample::new("kill.metric", 10.0, x, 1.0 + (x * 5.0) % 9.0).unwrap());
    }
    set
}

/// A multi-metric batch for the server-level tests.
fn batch(salt: usize) -> SampleSet {
    let mut set = SampleSet::new();
    for (m, metric) in ["m_alpha", "m_beta", "m_gamma"].iter().enumerate() {
        for i in 1..10 {
            let x = (i * (m + 2) + salt) as f64;
            let y = (30.0 - i as f64 - salt as f64 * 0.25).max(1.0);
            set.push(Sample::new(*metric, 5.0 + salt as f64, x, y).unwrap());
        }
    }
    set
}

/// A workload carrying one chaos-marked metric name, to detonate the
/// configured panic seam.
fn marked_workload(marker: &str) -> SampleSet {
    let mut set = batch(0);
    set.push(Sample::new(format!("{marker}_x").as_str(), 5.0, 7.0, 3.0).unwrap());
    set
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spire-wal-recovery-{tag}-{}-{:?}",
        std::process::id(),
        thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn train_snapshot(dir: &std::path::Path) -> (PathBuf, String) {
    let mut set = SampleSet::new();
    for (m, metric) in ["m_alpha", "m_beta", "m_gamma"].iter().enumerate() {
        for i in 1..20 {
            let x = (i * (m + 2)) as f64;
            let y = (60.0 - i as f64).max(1.0);
            set.push(Sample::new(*metric, 10.0, x, y).unwrap());
        }
    }
    let model =
        SpireModel::train_with_report(&set, TrainConfig::default(), TrainStrictness::Strict)
            .unwrap()
            .model;
    let snapshot = ModelSnapshot::from_model(&model).unwrap();
    let path = dir.join("model.json");
    write_atomic(&path, &snapshot.to_json()).unwrap();
    (path, snapshot.fingerprint())
}

/// Waits for `kind` to appear `count` times on the bus: a panicking
/// worker's reply channels drop mid-unwind, so the client can observe
/// the failure before the supervisor has emitted its event.
fn await_events(sink: &CollectingSink, kind: &str, count: usize) {
    for _ in 0..200 {
        if sink.events().iter().filter(|e| e.kind() == kind).count() >= count {
            return;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!(
        "event {kind} did not reach count {count}; bus holds {:?}",
        sink.events().iter().map(|e| e.kind()).collect::<Vec<_>>()
    );
}

#[allow(clippy::type_complexity)]
fn start(
    config: ServerConfig,
    models: Vec<(String, PathBuf)>,
) -> (
    String,
    Arc<CollectingSink>,
    thread::JoinHandle<Result<bool, spire_serve::ServeError>>,
) {
    let sink = Arc::new(CollectingSink::new());
    let sinks: Vec<Arc<dyn EventSink>> = vec![sink.clone()];
    let server = Server::bind(config, models, sinks).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || server.run());
    (addr, sink, handle)
}

/// The tentpole pin: simulate a kill at every byte offset of the journal
/// and require recovery to be bit-identical to a clean batch retrain
/// over exactly the fully-journaled batches.
#[test]
fn kill_at_every_byte_offset_recovers_prefix_bit_identically() {
    let dir_a = temp_dir("kill-src");
    let dir_b = temp_dir("kill-replay");
    let settings_a = WalSettings::new(&dir_a);
    let settings_b = WalSettings::new(&dir_b);
    let config = TrainConfig::default();
    let ctx = ctx();

    // Write the reference journal, recording the on-disk length and the
    // expected fingerprint after each acknowledged commit.
    let wal_path_a = settings_a.wal_path("m");
    let mut lens = Vec::new();
    let mut expected_fp = Vec::new();
    {
        let (mut state, recovered) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings_a,
            None,
            &ctx,
        )
        .unwrap();
        assert!(recovered.is_none());
        lens.push(std::fs::metadata(&wal_path_a).unwrap().len());
        expected_fp.push(state.fingerprint());
        for salt in 0..3u64 {
            let b = tiny_batch(salt);
            let json = serde_json::to_string(&b).unwrap();
            let ack = state.apply_update(&b, &json, None, &ctx).unwrap();
            assert!(ack.applied);
            lens.push(std::fs::metadata(&wal_path_a).unwrap().len());
            // The acknowledged fingerprint must already equal a clean
            // batch retrain over every acknowledged batch.
            let mut merged = SampleSet::new();
            for s in 0..=salt {
                merged.merge(tiny_batch(s));
            }
            let retrained = SpireModel::train(&merged, config.clone()).unwrap();
            assert_eq!(
                ack.fingerprint,
                ModelSnapshot::from_model(&retrained).unwrap().fingerprint(),
                "ack after batch {salt} diverges from clean retrain"
            );
            expected_fp.push(ack.fingerprint);
        }
    }
    let journal = std::fs::read(&wal_path_a).unwrap();
    assert_eq!(*lens.last().unwrap() as usize, journal.len());

    // Anchor is part of the durable state; the "crashed machine" has it.
    std::fs::copy(settings_a.base_path("m"), settings_b.base_path("m")).unwrap();
    let wal_path_b = settings_b.wal_path("m");

    for cut in 0..=journal.len() {
        std::fs::write(&wal_path_b, &journal[..cut]).unwrap();
        let (state, recovered) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings_b,
            None,
            &ctx,
        )
        .unwrap_or_else(|e| panic!("recovery at offset {cut} refused: {e}"));
        // The highest commit whose record is fully inside the prefix.
        let k = lens.iter().rposition(|&l| l as usize <= cut).unwrap_or(0);
        assert_eq!(state.seq(), k as u64, "wrong replay depth at offset {cut}");
        assert_eq!(
            state.fingerprint(),
            expected_fp[k],
            "recovered fingerprint diverges at offset {cut}"
        );
        if k > 0 {
            let (model, fp) = recovered.unwrap_or_else(|| panic!("no model at offset {cut}"));
            assert_eq!(fp, expected_fp[k]);
            let mut merged = SampleSet::new();
            for s in 0..k as u64 {
                merged.merge(tiny_batch(s));
            }
            assert_eq!(
                model,
                SpireModel::train(&merged, config.clone()).unwrap(),
                "recovered model is not the clean batch retrain at offset {cut}"
            );
        } else {
            assert!(recovered.is_none(), "phantom recovery at offset {cut}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The dedup window survives a crash-restart cycle: a retried idempotent
/// update after reopen is recognized, not re-applied.
#[test]
fn retried_idempotent_update_is_applied_exactly_once_across_reopen() {
    let dir = temp_dir("dedup-reopen");
    let settings = WalSettings::new(&dir);
    let config = TrainConfig::default();
    let ctx = ctx();
    let b = tiny_batch(0);
    let json = serde_json::to_string(&b).unwrap();
    let first = {
        let (mut state, _) = UpdateState::open(
            "m",
            &config,
            TrainStrictness::Lenient,
            &settings,
            None,
            &ctx,
        )
        .unwrap();
        state
            .apply_update(&b, &json, Some("retry-key"), &ctx)
            .unwrap()
    };
    assert!(first.applied);
    // "Crash" (drop without any shutdown niceties), reopen, retry.
    let (mut state, recovered) = UpdateState::open(
        "m",
        &config,
        TrainStrictness::Lenient,
        &settings,
        None,
        &ctx,
    )
    .unwrap();
    assert!(recovered.is_some());
    let retry = state
        .apply_update(&b, &json, Some("retry-key"), &ctx)
        .unwrap();
    assert!(
        !retry.applied,
        "replayed dedup window must absorb the retry"
    );
    assert_eq!(retry.seq, first.seq);
    assert_eq!(retry.fingerprint, first.fingerprint);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Worker supervision: panics outside containment respawn the worker
/// (with a typed event) until the budget runs out, then the daemon goes
/// read-only — reads and stats keep answering, updates are refused.
#[test]
fn chaos_worker_panic_respawns_then_degrades_to_read_only() {
    let dir = temp_dir("supervise");
    let (path, _fp) = train_snapshot(&dir);
    let config = ServerConfig {
        workers: 1,
        cache_capacity: 0,
        wal: Some(WalSettings::new(dir.join("wal"))),
        worker_restart_budget: 1,
        chaos: ChaosConfig {
            panic_marker: None,
            worker_panic_marker: Some("chaos_boom".to_owned()),
        },
        ..ServerConfig::default()
    };
    let (addr, sink, handle) = start(config, vec![("m".to_owned(), path)]);
    let mut client = Client::connect(&addr).unwrap();

    // Panic 1: within budget, the worker respawns and keeps serving.
    let r = client
        .estimate("m", &marked_workload("chaos_boom"))
        .unwrap();
    assert!(!r.ok, "a request dropped by a dying worker cannot succeed");
    await_events(&sink, "worker_restarted", 1);
    let r = client.estimate("m", &batch(1)).unwrap();
    assert!(r.ok, "respawned worker must serve again: {:?}", r.error);

    // Panic 2: budget (1) exhausted — read-only, typed event, no serving
    // workers left.
    let r = client
        .estimate("m", &marked_workload("chaos_boom"))
        .unwrap();
    assert!(!r.ok);
    await_events(&sink, "daemon_read_only", 1);

    // Updates are refused with the read-only reason; ping and stats
    // still answer inline.
    let r = client.update("m", &batch(2), Some("k")).unwrap();
    assert!(!r.ok);
    assert!(
        r.error.as_deref().unwrap_or("").contains("read-only"),
        "got: {:?}",
        r.error
    );
    assert!(client.ping().unwrap().ok);
    assert!(client.stats().unwrap().ok);

    // Reads are now refused (shed by the closed queue, or drained with a
    // typed refusal if they raced the close) rather than hanging.
    let r = client.estimate("m", &batch(3)).unwrap();
    assert!(!r.ok);
    assert!(
        r.shed == Some(true) || r.error.as_deref().unwrap_or("").contains("no live workers"),
        "got: {:?}",
        r.error
    );

    client.shutdown().unwrap();
    let degraded = handle.join().unwrap().unwrap();
    assert!(
        degraded,
        "restarts and read-only degradation are exit-2 events"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The counter-drift regression: every served request is counted exactly
/// once (cache hits and worker-served requests), isolated requests are
/// still counted as served, and sheds are never counted as serves.
#[test]
fn isolated_requests_are_counted_exactly_once() {
    let dir = temp_dir("counters");
    let (path, _fp) = train_snapshot(&dir);
    let config = ServerConfig {
        workers: 1,
        cache_capacity: 8,
        chaos: ChaosConfig {
            panic_marker: Some("iso_boom".to_owned()),
            worker_panic_marker: None,
        },
        ..ServerConfig::default()
    };
    let (addr, sink, handle) = start(config, vec![("m".to_owned(), path)]);
    let mut client = Client::connect(&addr).unwrap();

    for salt in 1..=3 {
        assert!(client.estimate("m", &batch(salt)).unwrap().ok);
    }
    // The marked request panics inside containment: isolated, counted
    // once as an estimate, worker survives.
    let r = client.estimate("m", &marked_workload("iso_boom")).unwrap();
    assert!(!r.ok);
    assert!(r.error.as_deref().unwrap_or("").contains("isolated"));
    // An identical repeat of a served request: a cache hit, also counted.
    assert!(client.estimate("m", &batch(1)).unwrap().cached == Some(true));

    let stats = client.stats().unwrap().stats.unwrap();
    let m = &stats.models[0];
    assert_eq!(m.estimates, 5, "3 served + 1 isolated + 1 cache hit");
    assert_eq!(m.isolated, 1);
    assert_eq!(m.cache_hits, 1);
    assert_eq!(m.shed, 0);
    assert_eq!(
        sink.events()
            .iter()
            .filter(|e| e.kind() == "request_isolated")
            .count(),
        1
    );
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Server-level crash-recovery round trip: journaled updates survive a
/// restart, the recovered model is served (and bit-identical to a clean
/// retrain), the idempotency window persists, and the sequence resumes.
#[test]
fn updates_survive_daemon_restart_with_persistent_dedup() {
    let dir = temp_dir("restart");
    let (path, _fp) = train_snapshot(&dir);
    let wal = WalSettings::new(dir.join("wal"));
    let config = ServerConfig {
        wal: Some(wal.clone()),
        ..ServerConfig::default()
    };

    let fp2;
    {
        let (addr, _sink, handle) = start(config.clone(), vec![("m".to_owned(), path.clone())]);
        let mut client = Client::connect(&addr).unwrap();
        let r = client.update("m", &batch(1), Some("a")).unwrap();
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.seq, Some(1));
        assert_eq!(r.applied, Some(true));
        let r = client.update("m", &batch(2), Some("b")).unwrap();
        assert_eq!(r.seq, Some(2));
        fp2 = r.fingerprint.clone().unwrap();
        // The served entry swapped to the maintained model: estimates now
        // come from it, bit-identical to a clean retrain.
        let mut merged = SampleSet::new();
        merged.merge(batch(1));
        merged.merge(batch(2));
        let retrained = SpireModel::train(&merged, TrainConfig::default()).unwrap();
        assert_eq!(
            ModelSnapshot::from_model(&retrained).unwrap().fingerprint(),
            fp2
        );
        let est = client.estimate("m", &batch(0)).unwrap();
        assert_eq!(est.fingerprint.as_deref(), Some(fp2.as_str()));
        assert_eq!(
            est.throughput.unwrap().to_bits(),
            retrained
                .estimate(&batch(0))
                .unwrap()
                .throughput()
                .to_bits(),
            "served updated model diverges from the clean retrain"
        );
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    // Restart against the same journal: recovery is transparent.
    let (addr, _sink, handle) = start(config, vec![("m".to_owned(), path)]);
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap().stats.unwrap();
    assert_eq!(stats.models[0].last_seq, Some(2));
    assert_eq!(
        stats.models[0].fingerprint, fp2,
        "the replayed model must be the served entry after restart"
    );
    // Retrying an already-acknowledged batch is absorbed, not re-applied.
    let r = client.update("m", &batch(2), Some("b")).unwrap();
    assert!(r.ok);
    assert_eq!(r.applied, Some(false));
    assert_eq!(r.seq, Some(2));
    // New work resumes the sequence.
    let r = client.update("m", &batch(3), Some("c")).unwrap();
    assert_eq!(r.applied, Some(true));
    assert_eq!(r.seq, Some(3));
    let stats = client.stats().unwrap().stats.unwrap();
    assert_eq!(stats.models[0].updates, 1);
    assert_eq!(stats.models[0].deduplicated, 1);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
