//! # spire-bench
//!
//! The experiment harness for the SPIRE reproduction: shared machinery
//! for collecting the evaluation corpus, training models, and scoring
//! agreement between SPIRE and TMA. The `src/bin/` binaries regenerate
//! every table and figure of the paper (see DESIGN.md for the index), and
//! the `benches/` directory holds Criterion micro-benchmarks of the
//! algorithms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;

pub use engine::Engine;

use spire_cli::args::{ArgCursor, ArgItem};
use spire_core::catalog::UarchArea;
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::{collect, Dataset, SessionConfig, SessionReport};
use spire_sim::{Core, CoreConfig, Event, Machine, MachineCatalog};
use spire_tma::{analyze, TmaBreakdown};
use spire_workloads::WorkloadProfile;

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Core configuration for all runs.
    pub core: CoreConfig,
    /// Workload stream seed.
    pub seed: u64,
    /// Sampling-session configuration.
    pub session: SessionConfig,
    /// Events to sample (defaults to the full catalog).
    pub events: Vec<Event>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            // The catalog's default preset, not a hand-rolled config: every
            // experiment binary states its machine through the catalog.
            core: MachineCatalog::builtin().default_machine().config,
            seed: 20250331,
            session: SessionConfig {
                interval_cycles: 150_000,
                slice_cycles: 9_000,
                pmu_slots: 4,
                // 150 cycles of PMU reprogramming per 9k-cycle slice
                // reproduces the paper's ~1.6% average sampling overhead.
                switch_overhead_cycles: 150,
                max_cycles: 3_000_000,
            },
            events: Event::ALL.to_vec(),
        }
    }
}

impl ExperimentConfig {
    /// A much smaller configuration for tests and quick runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            session: SessionConfig {
                interval_cycles: 40_000,
                slice_cycles: 2_500,
                pmu_slots: 4,
                switch_overhead_cycles: 40,
                max_cycles: 400_000,
            },
            ..ExperimentConfig::default()
        }
    }

    /// The same experiment parameters on a different catalog machine.
    pub fn on_machine(mut self, machine: &Machine) -> Self {
        self.core = machine.config;
        self
    }
}

/// Resolves a `--machine` selector the way the `spire` CLI does: a
/// catalog preset name first, else a path to a custom machine JSON file.
///
/// # Errors
///
/// A human-readable message naming the catalog presets when the selector
/// is neither, or the typed [`spire_sim::MachineLoadError`] text when a
/// custom file fails validation.
pub fn resolve_machine(selector: &str) -> Result<Machine, String> {
    let catalog = MachineCatalog::builtin();
    if let Some(machine) = catalog.get(selector) {
        return Ok(machine.clone());
    }
    let path = std::path::Path::new(selector);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read machine file {selector}: {e}"))?;
        return Machine::from_json(&text).map_err(|e| format!("{selector}: {e}"));
    }
    Err(format!(
        "unknown machine `{selector}` (catalog: {}; or pass a machine JSON path)",
        catalog.names().join(", ")
    ))
}

/// The outcome of running one workload: its samples, sampling report,
/// and the TMA ground truth measured on an *unsampled* run of the same
/// stream (so the TMA numbers are not perturbed by multiplexing).
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The workload that ran.
    pub profile: WorkloadProfile,
    /// Dataset label (`"name (config)"`).
    pub label: String,
    /// The sampling-session report (samples + overhead stats).
    pub session: SessionReport,
    /// TMA breakdown of the dedicated measurement run.
    pub tma: TmaBreakdown,
    /// IPC of the dedicated measurement run.
    pub ipc: f64,
}

/// Label used for a profile in datasets and reports.
pub fn workload_label(p: &WorkloadProfile) -> String {
    format!("{} ({})", p.name, p.config)
}

/// Runs one workload: a full sampling session plus a dedicated TMA run.
pub fn run_workload(profile: &WorkloadProfile, cfg: &ExperimentConfig) -> WorkloadRun {
    // Sampling session.
    let mut core = Core::new(cfg.core);
    let mut stream = profile.stream(cfg.seed);
    let session = collect(&mut core, &mut stream, &cfg.events, &cfg.session);

    // Dedicated TMA measurement (same stream parameters, fresh core).
    let mut core = Core::new(cfg.core);
    let mut stream = profile.stream(cfg.seed);
    let summary = core.run(&mut stream, cfg.session.max_cycles);
    let tma = analyze(core.counters(), &cfg.core);

    WorkloadRun {
        label: workload_label(profile),
        profile: profile.clone(),
        session,
        tma,
        ipc: summary.ipc(),
    }
}

/// Runs many workloads in parallel (one OS thread per workload, batched
/// to the available parallelism) and returns the runs in input order.
pub fn run_suite(profiles: &[WorkloadProfile], cfg: &ExperimentConfig) -> Vec<WorkloadRun> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut results: Vec<Option<WorkloadRun>> = (0..profiles.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (chunk_profiles, chunk_results) in profiles
            .chunks(threads.max(1))
            .zip(results.chunks_mut(threads.max(1)))
        {
            let handles: Vec<_> = chunk_profiles
                .iter()
                .map(|p| scope.spawn(move |_| run_workload(p, cfg)))
                .collect();
            for (slot, handle) in chunk_results.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("workload thread panicked"));
            }
        }
    })
    .expect("crossbeam scope");
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Collects the runs' samples into a labeled dataset.
pub fn dataset_of(runs: &[WorkloadRun]) -> Dataset {
    runs.iter()
        .map(|r| (r.label.clone(), r.session.samples.clone()))
        .collect()
}

/// Trains a SPIRE model from a dataset with the given config, through a
/// quiet pipeline [`Engine`].
///
/// # Panics
///
/// Panics if training fails (experiment corpora are never empty).
pub fn train_model(dataset: &Dataset, config: TrainConfig) -> SpireModel {
    Engine::new(config).train(dataset)
}

/// Builds the annotated bottleneck report for one workload run under a
/// trained model, through a quiet pipeline [`Engine`].
///
/// # Panics
///
/// Panics if the workload shares no metrics with the model (impossible
/// when both came from the same event catalog).
pub fn report_for(model: &SpireModel, run: &WorkloadRun) -> BottleneckReport {
    Engine::new(model.config().clone()).report(model, &run.session.samples)
}

/// Agreement check used in EXPERIMENTS.md: does the TMA dominant
/// bottleneck area appear among the top `k` SPIRE metrics' areas?
pub fn spire_agrees_with_tma(report: &BottleneckReport, tma: &TmaBreakdown, k: usize) -> bool {
    report.area_in_top(tma.dominant_bottleneck(), k)
}

/// Agreement against the workload's *intended* bottleneck.
pub fn spire_finds_expected(report: &BottleneckReport, expected: UarchArea, k: usize) -> bool {
    report.area_in_top(expected, k)
}

/// Parses the shared experiment flags used by every `src/bin/` binary:
/// `--quick` selects [`ExperimentConfig::quick`], `--seed N` overrides the
/// stream seed, and `--machine NAME|PATH` swaps the simulated core for a
/// catalog preset or custom machine file (via [`resolve_machine`]; an
/// unresolvable selector is a hard error — exit 2 — not a silent default).
/// Returns the config plus the output directory from `--outdir DIR`
/// (default `target/experiments`).
///
/// Built on the CLI's shared [`ArgCursor`], so the bench bins classify
/// `--key value` vs `--switch` words exactly like the `spire` command.
pub fn config_from_args() -> (ExperimentConfig, std::path::PathBuf) {
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut machine: Option<String> = None;
    let mut outdir = std::path::PathBuf::from("target/experiments");
    let cursor = ArgCursor::new(std::env::args().skip(1), &["quick"]);
    for item in cursor.flatten() {
        match item {
            ArgItem::Switch(key) if key == "quick" => quick = true,
            ArgItem::Value(key, value) if key == "seed" => seed = value.parse().ok(),
            ArgItem::Value(key, value) if key == "machine" => machine = Some(value),
            ArgItem::Value(key, value) if key == "outdir" => outdir = value.into(),
            _ => {}
        }
    }
    let mut cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(selector) = machine {
        match resolve_machine(&selector) {
            Ok(m) => cfg = cfg.on_machine(&m),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&outdir).ok();
    (cfg, outdir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_workloads::suite;

    #[test]
    fn run_workload_produces_samples_and_tma() {
        let cfg = ExperimentConfig::quick();
        let p = suite::by_name("onnx", "T5 Encoder, Std.").unwrap();
        let run = run_workload(&p, &cfg);
        assert!(!run.session.samples.is_empty());
        assert!(run.ipc > 0.0);
        assert_eq!(run.tma.dominant_bottleneck(), UarchArea::Memory);
        assert_eq!(run.label, "onnx (T5 Encoder, Std.)");
    }

    #[test]
    fn run_suite_preserves_order_and_parallel_matches_serial() {
        let cfg = ExperimentConfig::quick();
        let profiles = suite::testing();
        let runs = run_suite(&profiles, &cfg);
        assert_eq!(runs.len(), 4);
        for (r, p) in runs.iter().zip(&profiles) {
            assert_eq!(r.label, workload_label(p));
        }
        // Determinism: the same workload run twice yields identical samples.
        let again = run_workload(&profiles[0], &cfg);
        assert_eq!(again.session.samples, runs[0].session.samples);
    }

    #[test]
    fn machine_selection_routes_through_the_catalog() {
        let catalog = MachineCatalog::builtin();
        assert_eq!(
            ExperimentConfig::default().core,
            catalog.default_machine().config
        );
        let little = resolve_machine("little").expect("catalog preset resolves");
        assert_eq!(little.config, catalog.get("little").unwrap().config);
        assert_eq!(
            ExperimentConfig::quick().on_machine(&little).core,
            little.config
        );
        let err = resolve_machine("no-such-machine").unwrap_err();
        assert!(
            err.contains("skylake-server"),
            "err names the catalog: {err}"
        );
    }

    #[test]
    fn train_and_report_end_to_end() {
        let cfg = ExperimentConfig::quick();
        let runs = run_suite(&suite::testing(), &cfg);
        let dataset = dataset_of(&runs);
        let model = train_model(&dataset, TrainConfig::default());
        assert!(model.metric_count() > 30);
        let report = report_for(&model, &runs[0]);
        assert!(!report.rows().is_empty());
    }
}
