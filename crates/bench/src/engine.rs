//! The experiment harness's handle on the `spire_core::pipeline` engine.
//!
//! Every `src/bin/` experiment trains and scores through an [`Engine`],
//! so the bench path exercises exactly the same staged core as the CLI:
//! Build → Train for model fitting, Estimate → Analyze for reports, with
//! stage timings, quarantine decisions, and free-form narration all
//! flowing through the diagnostics bus instead of ad-hoc `eprintln!`s.

use std::sync::Arc;

use spire_core::pipeline::{
    AnalyzeStage, BuildStage, CollectingSink, EstimateStage, Event, Pipeline, PipelineConfig,
    RunContext, Stage, StderrSink, TrainStage,
};
use spire_core::{BottleneckReport, SampleSet, SpireModel, TrainConfig};
use spire_counters::Dataset;

/// A pipeline-backed experiment session. One engine can train any number
/// of models and build any number of reports; all of them share a single
/// [`RunContext`] (and therefore one event stream).
pub struct Engine {
    ctx: RunContext,
    sink: Arc<CollectingSink>,
}

impl Engine {
    /// A quiet engine: events are collected but not printed.
    pub fn new(config: TrainConfig) -> Self {
        Self::build(config, false)
    }

    /// An engine that narrates every event (stage progress, notes,
    /// quarantines) to stderr — the experiment binaries' progress output.
    pub fn narrated(config: TrainConfig) -> Self {
        Self::build(config, true)
    }

    fn build(config: TrainConfig, narrate: bool) -> Self {
        let sink = Arc::new(CollectingSink::new());
        let mut ctx = RunContext::new(PipelineConfig {
            train: config,
            ..PipelineConfig::default()
        })
        .with_sink(sink.clone());
        if narrate {
            ctx.add_sink(Arc::new(StderrSink::verbose()));
        }
        Engine { ctx, sink }
    }

    /// Emits a free-form progress note on the bus.
    pub fn note(&self, text: impl Into<String>) {
        self.ctx.note("bench", text);
    }

    /// Trains a SPIRE model from `dataset` through Build → Train under
    /// the engine's configuration.
    ///
    /// # Panics
    ///
    /// Panics if training fails (experiment corpora are never empty).
    pub fn train(&mut self, dataset: &Dataset) -> SpireModel {
        let sets: Vec<(String, SampleSet)> = dataset
            .iter()
            .map(|(label, set)| (label.to_owned(), set.clone()))
            .collect();
        Pipeline::new(BuildStage)
            .then(TrainStage)
            .run(sets, &mut self.ctx)
            .expect("experiment corpus trains")
            .model
    }

    /// Like [`Engine::train`], but under a different [`TrainConfig`] —
    /// for ablation grids that sweep model configurations within one
    /// session.
    pub fn train_with(&mut self, dataset: &Dataset, config: TrainConfig) -> SpireModel {
        self.ctx.config.train = config;
        self.train(dataset)
    }

    /// Builds the annotated bottleneck report for one sample set under a
    /// trained model, through Estimate → Analyze.
    ///
    /// # Panics
    ///
    /// Panics if the samples share no metrics with the model (impossible
    /// when both came from the same event catalog).
    pub fn report(&mut self, model: &SpireModel, samples: &SampleSet) -> BottleneckReport {
        let estimate = EstimateStage { model }
            .execute(samples.clone(), &mut self.ctx)
            .expect("shared event catalog");
        AnalyzeStage::default()
            .execute(estimate, &mut self.ctx)
            .expect("analysis is infallible")
    }

    /// The events emitted so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.sink.events()
    }

    /// Whether any run in this session degraded (quarantined metrics).
    pub fn degraded(&self) -> bool {
        self.ctx.degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_core::Sample;

    fn tiny_dataset() -> Dataset {
        let mut set = SampleSet::new();
        for m in ["m_a", "m_b"] {
            for i in 1..6 {
                set.push(Sample::new(m, 10.0, (5 * i) as f64, (10 - i) as f64).unwrap());
            }
        }
        let mut ds = Dataset::new();
        ds.insert("wl", set);
        ds
    }

    #[test]
    fn engine_train_matches_direct_api() {
        let ds = tiny_dataset();
        let mut engine = Engine::new(TrainConfig::default());
        let via_engine = engine.train(&ds);
        let direct = SpireModel::train(&ds.merged(), TrainConfig::default()).unwrap();
        assert_eq!(via_engine, direct);
        // Build + Train both instrumented.
        let kinds: Vec<&str> = engine.events().iter().map(Event::kind).collect();
        assert!(kinds.contains(&"stage_started"));
        assert!(kinds.contains(&"stage_finished"));
        assert!(!engine.degraded());
    }

    #[test]
    fn engine_report_matches_direct_api() {
        let ds = tiny_dataset();
        let mut engine = Engine::new(TrainConfig::default());
        let model = engine.train(&ds);
        let samples = ds.get("wl").unwrap();
        let via_engine = engine.report(&model, samples);
        let estimate = model.estimate(samples).unwrap();
        let direct =
            BottleneckReport::new(&estimate, &spire_core::catalog::MetricCatalog::table_iii());
        assert_eq!(via_engine.rows(), direct.rows());
        assert_eq!(via_engine.throughput(), direct.throughput());
    }
}
