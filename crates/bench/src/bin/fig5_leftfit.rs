//! Reproduces **Fig. 5**: the left-region fitting algorithm walkthrough.
//! Starting at the origin, the walk repeatedly moves to the sample with
//! the highest slope from the current point until the highest-throughput
//! sample is reached; the chosen knots form an increasing, concave-down
//! chain.

use spire_core::geometry::{upper_hull_from_origin, Point};

fn main() {
    // A sample cloud shaped like the figure's: a steep early riser, a mid
    // cluster, and the apex on the right of the left region.
    let samples = [
        Point::new(0.6, 0.9),
        Point::new(1.0, 2.0),
        Point::new(1.4, 1.1),
        Point::new(2.0, 3.0),
        Point::new(2.4, 1.8),
        Point::new(3.0, 3.5),
        Point::new(2.7, 2.6),
    ];

    println!("Fig. 5 — left-region fitting (Jarvis-march walk)\n");
    println!("samples:");
    for s in &samples {
        println!("  ({:.2}, {:.2})", s.x, s.y);
    }

    // Narrate the walk: recompute the max-slope choice step by step.
    println!("\nwalk:");
    let hull = upper_hull_from_origin(&samples);
    for pair in hull.windows(2) {
        let slope = pair[0].slope_to(&pair[1]);
        println!(
            "  from ({:.2}, {:.2}) pick max-slope sample ({:.2}, {:.2})  [slope {:.3}]",
            pair[0].x, pair[0].y, pair[1].x, pair[1].y, slope
        );
    }

    println!("\nchosen knots (origin -> apex):");
    for k in &hull {
        println!("  ({:.2}, {:.2})", k.x, k.y);
    }

    // Verify the figure's invariants in-line.
    let slopes: Vec<f64> = hull.windows(2).map(|w| w[0].slope_to(&w[1])).collect();
    let concave_down = slopes.windows(2).all(|w| w[1] <= w[0] + 1e-12);
    println!("\nconcave-down (non-increasing slopes): {concave_down}");
    let covers = samples.iter().all(|s| {
        s.x > hull.last().unwrap().x
            || spire_core::geometry::piecewise_eval(&hull, s.x) >= s.y - 1e-9
    });
    println!("lies on or above all left-region samples: {covers}");
}
