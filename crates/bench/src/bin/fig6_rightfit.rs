//! Reproduces **Fig. 6**: the right-region fitting algorithm on the
//! paper's five Pareto samples A–E. The fit is found as the
//! minimum-error Start→End path over the segment graph; we print the
//! Pareto front, the chosen knot chain, and verify the fit's
//! invariants — including the paper's example edge weight (the BD line
//! overestimating C).

use spire_core::{FitOptions, PiecewiseRoofline, Sample};

/// The paper's A–E samples (decreasing intensity, increasing
/// throughput), with C placed below the B–D line so that the (B,D)→End
/// edge carries a visible squared error.
fn paper_samples() -> Vec<Sample> {
    // (I, P): A(10,1), B(8,2), C(6,2.5), D(4,4), E(2,5).
    // Work W = I * M with M chosen so T=1 gives P=W.
    let pts = [
        ("A", 10.0, 1.0),
        ("B", 8.0, 2.0),
        ("C", 6.0, 2.5),
        ("D", 4.0, 4.0),
        ("E", 2.0, 5.0),
    ];
    pts.iter()
        .map(|&(_, i, p)| Sample::new("fig6", 1.0, p, p / i).unwrap())
        .collect()
}

fn main() {
    let samples = paper_samples();
    println!("Fig. 6 — right-region fitting over Pareto samples A–E\n");
    for (name, s) in ["A", "B", "C", "D", "E"].iter().zip(&samples) {
        println!(
            "  {name}: I = {:>5.2}, P = {:.2}",
            s.intensity(),
            s.throughput()
        );
    }

    // The BD segment's error over C, the paper's worked example: line
    // from B(8,2) to D(4,4) evaluated at C's intensity 6 gives 3.0, so
    // the squared overestimation of C(6,2.5) is 0.25.
    let (bx, by) = (8.0_f64, 2.0_f64);
    let (dx, dy) = (4.0_f64, 4.0_f64);
    let cx = 6.0_f64;
    let line_at_c = by + (cx - bx) * (dy - by) / (dx - bx);
    let bd_error = (line_at_c - 2.5_f64).powi(2);
    println!("\nBD segment at C: {line_at_c:.2} -> squared error {bd_error:.2}");

    let roofline = PiecewiseRoofline::fit("fig6".into(), samples.iter(), &FitOptions::default())
        .expect("samples are valid");
    let region = roofline.right_region().expect("non-constant fit");

    println!("\nchosen right-region knots (ascending intensity):");
    for k in region.knots() {
        println!("  ({:.2}, {:.2})", k.x, k.y);
    }
    println!("plateau height (End horizontal): {:.2}", region.plateau());
    println!("tail height (Start): {:.2}", region.tail());
    println!(
        "total fit error (shortest-path cost): {:.4}",
        region.fit_error()
    );

    println!("\nfit evaluated at each sample:");
    let mut all_above = true;
    for (name, s) in ["A", "B", "C", "D", "E"].iter().zip(&samples) {
        let est = roofline.estimate(s.intensity());
        all_above &= est >= s.throughput() - 1e-9;
        println!(
            "  {name}: fit({:.1}) = {:.3} (sample {:.2})",
            s.intensity(),
            est,
            s.throughput()
        );
    }
    println!("\nfit lies on or above every sample: {all_above}");

    let slopes: Vec<f64> = region
        .knots()
        .windows(2)
        .map(|w| w[0].slope_to(&w[1]))
        .collect();
    let concave_up = slopes.windows(2).all(|w| w[1] >= w[0] - 1e-12);
    let decreasing = slopes.iter().all(|s| *s <= 1e-12);
    println!("segments decreasing: {decreasing}; concave-up: {concave_up}");
}
