//! Extension experiment: sampling representation (paper Section III-A).
//!
//! "While analyzing a workload with a trained model, the goal is to
//! collect samples that accurately characterize it. If parts of the
//! workload's execution are over- or under-represented, for example, its
//! analysis may be inaccurate."
//!
//! We build a two-phase workload (a long memory-bound kernel behind a
//! short branchy prologue) and analyze three sample views of it: the
//! full execution, only the prologue (under-representing the kernel),
//! and only the kernel. The full-run analysis must agree with the
//! kernel (which dominates execution time), while the prologue-only
//! view flips the verdict — exactly the failure mode the paper warns
//! about.

use spire_bench::{config_from_args, dataset_of, run_suite, train_model};
use spire_core::catalog::{MetricCatalog, UarchArea};
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::collect;
use spire_sim::{Core, Event};
use spire_workloads::{suite, Phase, PhasedWorkload, WorkloadProfile};

fn prologue() -> WorkloadProfile {
    suite::by_name("scikit-learn", "Sparsify").expect("suite workload")
}

fn kernel() -> WorkloadProfile {
    suite::by_name("onnx", "T5 Encoder, Std.").expect("suite workload")
}

fn analyze_samples(
    model: &SpireModel,
    samples: &spire_core::SampleSet,
    label: &str,
) -> BottleneckReport {
    let estimate = model.estimate(samples).expect("shared events");
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
    let dominant = report
        .dominant_area(10)
        .map_or("-".to_owned(), |a| a.to_string());
    println!(
        "{label:<28} est {:>6.3} | dominant area: {dominant:<16} | top: {}",
        report.throughput(),
        report
            .top(3)
            .iter()
            .map(|r| r.abbr.clone().unwrap_or_else(|| r.metric.to_string()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    report
}

fn main() {
    let (cfg, _outdir) = config_from_args();

    eprintln!("training SPIRE on the standard corpus...");
    let train_runs = run_suite(&suite::training(), &cfg);
    let model = train_model(&dataset_of(&train_runs), TrainConfig::default());

    // Prologue ~8% of instructions, kernel the rest.
    let total = 600_000u64;
    let phased = PhasedWorkload::new(vec![
        Phase {
            profile: prologue(),
            instructions: total / 12,
        },
        Phase {
            profile: kernel(),
            instructions: total - total / 12,
        },
    ])
    .expect("valid phases");

    println!("Phase-representation experiment (paper Sec. III-A caveat)\n");

    // Full execution, sampled end to end.
    let mut core = Core::new(cfg.core);
    let mut stream = phased.stream(cfg.seed);
    let full = collect(&mut core, &mut stream, Event::ALL, &cfg.session);
    let full_report = analyze_samples(&model, &full.samples, "full execution");

    // Prologue only (analyst stopped sampling too early).
    let mut core = Core::new(cfg.core);
    let mut stream = prologue().stream(cfg.seed).take((total / 12) as usize);
    let early = collect(&mut core, &mut stream, Event::ALL, &cfg.session);
    let early_report = analyze_samples(&model, &early.samples, "prologue only (biased)");

    // Kernel only (the behaviour that dominates wall time).
    let mut core = Core::new(cfg.core);
    let mut stream = kernel().stream(cfg.seed + 1);
    let kernel_samples = collect(&mut core, &mut stream, Event::ALL, &cfg.session);
    let kernel_report = analyze_samples(&model, &kernel_samples.samples, "kernel only");

    println!();
    // The memory-bound kernel dominates execution: the full-run and
    // kernel-only analyses must both surface Memory; the biased
    // prologue-only view must not have it as its primary suspicion.
    let full_sees_memory = full_report.area_in_top(UarchArea::Memory, 10)
        && kernel_report.area_in_top(UarchArea::Memory, 10);
    println!("full-run analysis surfaces the kernel's memory bottleneck: {full_sees_memory}");
    println!(
        "prologue-only analysis misleads (primary area differs): {}",
        early_report.dominant_area(10) != full_report.dominant_area(10)
    );
    let (overlap, tau) = full_report.compare(&early_report, 10);
    println!("full vs prologue-only ranking: overlap@10 {overlap:.2}, kendall tau {tau:.2}");
}
