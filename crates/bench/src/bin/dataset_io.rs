//! Dataset I/O benchmark: JSON parse vs binary column-file load vs
//! zero-copy mmap open, plus scalar vs vectorized roofline estimation,
//! at paper scale (424 metrics, ~1.3M samples).
//!
//! Builds one synthetic dataset, writes it in both formats, and times
//! the three load paths (median of three warm runs each). The decoded
//! datasets must be bit-identical to the source; the vectorized
//! `estimate_soa` pass must be bit-identical to the scalar per-sample
//! loop. Full runs write `BENCH_dataset.json` at the workspace root and
//! exit non-zero if the binary load is not at least 10x faster than the
//! JSON parse or the vectorized estimate is not at least 1.5x the
//! scalar loop; `--quick` (or `SPIRE_BENCH_SMOKE=1`) runs a tiny
//! instance that checks the identity invariants only — at toy sizes the
//! timings are noise, so the perf gates apply to the committed full-run
//! numbers (see the CI `format-smoke` job).

use std::time::Instant;

use spire_core::colfile;
use spire_core::{FitOptions, MetricColumn, MetricId, PiecewiseRoofline, SampleSet};
use spire_counters::Dataset;

#[derive(serde::Serialize)]
struct BenchSummary {
    dataset_io: IoCase,
}

#[derive(serde::Serialize)]
struct IoCase {
    metrics: usize,
    rows_per_metric: usize,
    total_samples: usize,
    json_bytes: usize,
    binary_bytes: usize,
    json_load_ms: f64,
    binary_load_ms: f64,
    mmap_open_ms: f64,
    mmap_verify_ms: f64,
    load_speedup: f64,
    mmap_speedup: f64,
    scalar_estimate_ms: f64,
    soa_estimate_ms: f64,
    estimate_speedup: f64,
    loads_bit_identical: bool,
    estimates_bit_identical: bool,
}

struct Scale {
    metrics: usize,
    rows: usize,
}

impl Scale {
    fn paper() -> Self {
        // 424 × 3072 ≈ 1.30M samples, the paper's corpus size.
        Scale {
            metrics: 424,
            rows: 3072,
        }
    }

    fn quick() -> Self {
        Scale {
            metrics: 8,
            rows: 128,
        }
    }
}

/// Deterministic xorshift; the bin avoids dev-only dependencies.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One synthetic workload: per metric, `rows` samples with intensities
/// spread over [0.1, ~100] and throughputs on a noisy roofline-ish
/// surface. Built through the raw-column constructors so generation is
/// not the bottleneck at 1.3M rows.
fn build_dataset(scale: &Scale, rng: &mut Lcg) -> Dataset {
    let mut columns = Vec::with_capacity(scale.metrics);
    for j in 0..scale.metrics {
        let metric = format!("metric_{j:03}");
        let mut time = Vec::with_capacity(scale.rows);
        let mut work = Vec::with_capacity(scale.rows);
        let mut delta = Vec::with_capacity(scale.rows);
        for _ in 0..scale.rows {
            let x = 0.1 + rng.unit() * 100.0;
            let p = (x * 10.0).min(500.0) * (0.5 + 0.5 * rng.unit());
            time.push(1.0);
            work.push(p);
            delta.push(p / x);
        }
        columns.push(
            MetricColumn::from_raw_columns(MetricId::new(&metric), time, work, delta)
                .expect("equal-length columns"),
        );
    }
    let set = SampleSet::from_columns(columns).expect("ascending metric order");
    [("bench".to_owned(), set)].into_iter().collect()
}

/// Median wall time of `runs` warm runs of `f` (milliseconds).
fn median_ms_n<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        last = Some(f());
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("at least one run"))
}

/// Median of three warm runs (milliseconds).
fn median_ms<T>(f: impl FnMut() -> T) -> (f64, T) {
    median_ms_n(3, f)
}

/// Bitwise equality of every column in two datasets.
fn bit_identical(a: &Dataset, b: &Dataset) -> bool {
    if a.iter().count() != b.iter().count() {
        return false;
    }
    for ((la, sa), (lb, sb)) in a.iter().zip(b.iter()) {
        if la != lb || sa.columns().len() != sb.columns().len() {
            return false;
        }
        for (ca, cb) in sa.columns().iter().zip(sb.columns()) {
            let same = |x: &[f64], y: &[f64]| {
                x.len() == y.len() && x.iter().zip(y).all(|(&p, &q)| p.to_bits() == q.to_bits())
            };
            if ca.metric() != cb.metric()
                || !same(ca.times(), cb.times())
                || !same(ca.works(), cb.works())
                || !same(ca.metric_deltas(), cb.metric_deltas())
            {
                return false;
            }
        }
    }
    true
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("SPIRE_BENCH_SMOKE").is_some_and(|v| v == "1");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let mut rng = Lcg(0xda7a_10ad_bead_5eed);

    let dataset = build_dataset(&scale, &mut rng);
    let total = dataset.total_samples();
    println!("built {} metrics / {total} samples", scale.metrics);

    let dir = std::env::temp_dir().join(format!("spire-dataset-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let json_path = dir.join("bench.json");
    let bin_path = dir.join("bench.spirecol");
    dataset.save(&json_path).expect("write JSON dataset");
    dataset
        .save_binary(&bin_path)
        .expect("write binary dataset");
    let json_bytes = std::fs::metadata(&json_path).expect("json size").len() as usize;
    let binary_bytes = std::fs::metadata(&bin_path).expect("binary size").len() as usize;
    println!("json {json_bytes} bytes, binary {binary_bytes} bytes");

    // The JSON parse at paper scale runs for minutes, so full mode times
    // it once; it is the slow side of a 10x-plus ratio, where run-to-run
    // noise cannot change the verdict.
    let json_runs = if quick { 3 } else { 1 };
    let (json_load_ms, from_json) =
        median_ms_n(json_runs, || Dataset::load(&json_path).expect("json load"));
    let (binary_load_ms, from_bin) = median_ms(|| Dataset::load(&bin_path).expect("binary load"));
    let (mmap_open_ms, mapped) =
        median_ms(|| colfile::mmap::MappedColFile::open(&bin_path).expect("mmap open"));
    let (mmap_verify_ms, verify) = median_ms(|| {
        colfile::mmap::MappedColFile::open(&bin_path)
            .expect("mmap open")
            .verify()
    });
    assert!(verify.is_clean(), "pristine file failed verification");
    drop(mapped);

    let loads_bit_identical =
        bit_identical(&dataset, &from_json) && bit_identical(&dataset, &from_bin);
    let load_speedup = json_load_ms / binary_load_ms;
    let mmap_speedup = json_load_ms / mmap_open_ms;
    println!(
        "load: json {json_load_ms:.1} ms, binary {binary_load_ms:.1} ms ({load_speedup:.1}x), \
         mmap open {mmap_open_ms:.3} ms ({mmap_speedup:.0}x), verify {mmap_verify_ms:.1} ms"
    );

    // Scalar vs vectorized estimation over every intensity in the
    // corpus, against one representative fitted roofline.
    let set = from_bin.get("bench").expect("bench section");
    let column = &set.columns()[0];
    let roofline = PiecewiseRoofline::fit_column(column, &FitOptions::default()).expect("fit");
    let xs: Vec<f64> = set
        .columns()
        .iter()
        .flat_map(|c| c.intensities().iter().copied())
        .collect();
    let (scalar_estimate_ms, scalar) = median_ms(|| {
        let mut out = Vec::with_capacity(xs.len());
        for &x in &xs {
            out.push(roofline.estimate(x));
        }
        out
    });
    let (soa_estimate_ms, soa) = median_ms(|| {
        let mut out = Vec::new();
        roofline.estimate_soa(&xs, &mut out);
        out
    });
    let estimates_bit_identical = scalar.len() == soa.len()
        && scalar
            .iter()
            .zip(&soa)
            .all(|(&a, &b)| a.to_bits() == b.to_bits());
    let estimate_speedup = scalar_estimate_ms / soa_estimate_ms;
    println!(
        "estimate over {} intensities: scalar {scalar_estimate_ms:.1} ms, \
         soa {soa_estimate_ms:.1} ms ({estimate_speedup:.2}x)",
        xs.len()
    );

    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if !loads_bit_identical {
        eprintln!("FAIL: a decoded dataset differs from the source");
        failed = true;
    }
    if !estimates_bit_identical {
        eprintln!("FAIL: vectorized estimates differ from the scalar loop");
        failed = true;
    }
    if !quick {
        if load_speedup < 10.0 {
            eprintln!("FAIL: binary load is only {load_speedup:.1}x the JSON parse (< 10x)");
            failed = true;
        }
        if estimate_speedup < 1.5 {
            eprintln!("FAIL: vectorized estimate is only {estimate_speedup:.2}x scalar (< 1.5x)");
            failed = true;
        }
        let summary = BenchSummary {
            dataset_io: IoCase {
                metrics: scale.metrics,
                rows_per_metric: scale.rows,
                total_samples: total,
                json_bytes,
                binary_bytes,
                json_load_ms,
                binary_load_ms,
                mmap_open_ms,
                mmap_verify_ms,
                load_speedup,
                mmap_speedup,
                scalar_estimate_ms,
                soa_estimate_ms,
                estimate_speedup,
                loads_bit_identical,
                estimates_bit_identical,
            },
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataset.json");
        spire_core::write_atomic(
            std::path::Path::new(path),
            &serde_json::to_string_pretty(&summary).unwrap(),
        )
        .unwrap();
        println!("wrote {path}");
    }
    if failed {
        std::process::exit(1);
    }
}
