//! Extension experiment: microbenchmark-driven training.
//!
//! The paper notes that ideal training data comes from "optimized
//! workloads specifically designed to exercise each metric (e.g.,
//! microbenchmarks)", while its evaluation uses a workload variety
//! instead. This experiment runs both options and compares them on the
//! four test workloads: the `spire_workloads::micro` sweeps (one knob
//! per family) versus the 23-workload suite.

use spire_bench::{config_from_args, dataset_of, run_suite, spire_finds_expected, Engine};
use spire_core::TrainConfig;
use spire_workloads::{micro, suite};

fn main() {
    let (cfg, _outdir) = config_from_args();
    let mut engine = Engine::narrated(TrainConfig::default());

    engine.note("collecting microbenchmark corpus (4 sweeps x 8 steps)...");
    let micro_profiles = micro::full_corpus(8);
    let micro_runs = run_suite(&micro_profiles, &cfg);
    let micro_dataset = dataset_of(&micro_runs);

    engine.note("collecting suite corpus (23 workloads)...");
    let suite_runs = run_suite(&suite::training(), &cfg);
    let suite_dataset = dataset_of(&suite_runs);

    engine.note("collecting test workloads...");
    let test_runs = run_suite(&suite::testing(), &cfg);

    println!("Microbenchmark vs suite training (4 test workloads)\n");
    println!(
        "{:<14} {:>9} {:>8} {:>6} {:>12}",
        "corpus", "profiles", "samples", "hits", "mean |err|"
    );
    for (name, dataset, n) in [
        ("micro sweeps", &micro_dataset, micro_profiles.len()),
        ("suite (23)", &suite_dataset, 23),
    ] {
        let model = engine.train(dataset);
        let mut hits = 0;
        let mut err = 0.0;
        for run in &test_runs {
            let report = engine.report(&model, &run.session.samples);
            if spire_finds_expected(&report, run.profile.expected_bottleneck, 10) {
                hits += 1;
            }
            err += ((report.throughput() - run.ipc) / run.ipc).abs();
        }
        println!(
            "{:<14} {:>9} {:>8} {:>4}/4 {:>12.3}",
            name,
            n,
            dataset.total_samples(),
            hits,
            err / test_runs.len() as f64
        );
    }
    println!(
        "\nBoth corpora should locate all four bottlenecks; the suite's broader\n\
         intensity coverage typically yields tighter throughput estimates, while\n\
         the sweeps achieve theirs with far fewer profiles."
    );
}
