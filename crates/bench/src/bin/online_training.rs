//! Online-training benchmark: sustained incremental update throughput vs
//! full retraining at paper scale (424 metrics, ~1.3M samples, k≈1024
//! Pareto fronts).
//!
//! Seeds an [`OnlineTrainer`] with a wide staircase front per metric,
//! then streams batches in which most samples are dominated (exact
//! no-ops) and a rotating 10% of metrics extend their fronts (patched
//! right-region refits) — the regime the maintenance layer is built for.
//! After the last batch the accumulated sample set is retrained from
//! scratch and the two models must be identical; the run exits non-zero
//! if they differ or if the per-batch update is not cheaper than the
//! retrain. Full runs write `BENCH_online.json` at the workspace root;
//! `--quick` (or `SPIRE_BENCH_SMOKE=1`) runs a tiny instance with the
//! same gates and no JSON.

use std::time::Instant;

use spire_core::{OnlineTrainer, Sample, SampleSet, SpireModel, TrainConfig, TrainStrictness};

#[derive(serde::Serialize)]
struct BenchSummary {
    online_training: OnlineCase,
}

#[derive(serde::Serialize)]
struct OnlineCase {
    metrics: usize,
    front_size: usize,
    seed_samples: usize,
    rounds: usize,
    batch_samples: usize,
    total_samples: usize,
    seed_ms: f64,
    mean_update_ms: f64,
    median_update_ms: f64,
    update_samples_per_sec: f64,
    retrain_ms: f64,
    speedup: f64,
    models_match: bool,
}

/// Deterministic xorshift; the bin avoids dev-only dependencies.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Scale {
    metrics: usize,
    /// Staircase points per metric in the seed (front size ≈ this + 1).
    front: usize,
    /// Dominated fill samples per metric in the seed.
    fill: usize,
    rounds: usize,
    /// Batch samples per metric per round.
    batch: usize,
}

impl Scale {
    fn paper() -> Self {
        // 424 × (1025 + 1500) + 424 × 30 × 20 ≈ 1.33M samples.
        Scale {
            metrics: 424,
            front: 1024,
            fill: 1500,
            rounds: 30,
            batch: 20,
        }
    }

    fn quick() -> Self {
        Scale {
            metrics: 6,
            front: 64,
            fill: 40,
            rounds: 3,
            batch: 10,
        }
    }

    fn seed_samples(&self) -> usize {
        self.metrics * (1 + self.front + self.fill)
    }

    fn batch_samples(&self) -> usize {
        self.metrics * self.batch
    }
}

fn metric_name(j: usize) -> String {
    format!("metric_{j:03}")
}

/// One sample at operational intensity `i` and throughput `p` (T = 1).
fn at(metric: &str, i: f64, p: f64) -> Sample {
    Sample::new(metric, 1.0, p, p / i).expect("positive synthetic sample")
}

/// The shared staircase front shape: strictly ascending intensity and
/// strictly descending throughput with quasi-random (golden-ratio) step
/// sizes, so every point is Pareto-undominated but no three points are
/// collinear. A perfectly collinear staircase would be the right-fit
/// DP's adversarial dense-graph case, and the benchmark would measure
/// that pathology instead of maintenance cost.
fn staircase(front: usize) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::with_capacity(front);
    let mut ys = Vec::with_capacity(front);
    let (mut x, mut y) = (1.0, 1000.0);
    for i in 0..front {
        x += 0.05 + (i as f64 * 0.618_033_988_749_894_8).fract();
        y -= 0.05 + (i as f64 * 0.381_966_011_250_105_2).fract() * 0.5;
        xs.push(x);
        ys.push(y);
    }
    (xs, ys)
}

/// A dominated interior sample: just right of front step `i`, strictly
/// below the front's minimum throughput, so step `i + 1` (higher
/// intensity, higher throughput) dominates it exactly.
fn dominated_at(rng: &mut Lcg, xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let i = rng.next() as usize % (xs.len() - 1);
    let min_y = ys[ys.len() - 1];
    (xs[i] + 0.01, min_y * (0.3 + 0.4 * rng.unit()))
}

/// The seed: per metric, an apex at (1, 1000), the full staircase front,
/// and `fill` dominated samples between the steps.
fn seed_set(scale: &Scale, xs: &[f64], ys: &[f64], rng: &mut Lcg) -> SampleSet {
    let mut set = SampleSet::new();
    for j in 0..scale.metrics {
        let m = metric_name(j);
        set.push(at(&m, 1.0, 1000.0));
        for (&x, &y) in xs.iter().zip(ys) {
            set.push(at(&m, x, y));
        }
        for _ in 0..scale.fill {
            let (x, y) = dominated_at(rng, xs, ys);
            set.push(at(&m, x, y));
        }
    }
    set
}

/// One streamed batch: per metric, `batch` samples below the front
/// (exact no-ops), except that a rotating tenth of the metrics spend
/// their last sample extending the front past its current maximum
/// intensity (a patched right-region refit).
fn round_batch(scale: &Scale, round: usize, xs: &[f64], ys: &[f64], rng: &mut Lcg) -> SampleSet {
    let mut set = SampleSet::new();
    for j in 0..scale.metrics {
        let m = metric_name(j);
        let extends = (j + round).is_multiple_of(10);
        let body = scale.batch - usize::from(extends);
        for _ in 0..body {
            let (x, y) = dominated_at(rng, xs, ys);
            set.push(at(&m, x, y));
        }
        if extends {
            // Strictly past the current maximum intensity, strictly below
            // the current minimum front throughput (including the points
            // earlier rounds appended).
            let x = xs[xs.len() - 1] + (round + 1) as f64 * 0.1;
            let y = ys[ys.len() - 1] - (round + 1) as f64 * 0.5;
            set.push(at(&m, x, y));
        }
    }
    set
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("SPIRE_BENCH_SMOKE").is_some_and(|v| v == "1");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let config = TrainConfig::default();
    let mut rng = Lcg(0x5eed_cafe_f00d_1234);

    let mut trainer =
        OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).expect("valid config");

    let (xs, ys) = staircase(scale.front);
    let seed = seed_set(&scale, &xs, &ys, &mut rng);
    let start = Instant::now();
    trainer.push_batch(&seed);
    trainer.commit().expect("seed commit");
    let seed_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "seeded {} metrics / {} samples in {seed_ms:.1} ms",
        scale.metrics,
        scale.seed_samples()
    );

    let mut update_ms: Vec<f64> = Vec::with_capacity(scale.rounds);
    for round in 0..scale.rounds {
        let batch = round_batch(&scale, round, &xs, &ys, &mut rng);
        let start = Instant::now();
        trainer.push_batch(&batch);
        let outcome = trainer.commit().expect("update commit");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        update_ms.push(ms);
        println!("round {round}: {} in {ms:.2} ms", outcome.update.summary());
    }
    let update_ms_total: f64 = update_ms.iter().sum();
    let mean_update_ms = update_ms_total / scale.rounds as f64;
    update_ms.sort_by(f64::total_cmp);
    let median_update_ms = update_ms[update_ms.len() / 2];
    let update_samples_per_sec =
        (scale.rounds * scale.batch_samples()) as f64 / (update_ms_total / 1e3);

    // Median of three retrains: a single half-second measurement on a
    // shared machine is too noisy to anchor the headline ratio.
    let total_samples = trainer.samples().len();
    let mut retrained = None;
    let mut retrain_runs: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            retrained = Some(
                SpireModel::train_with_report(
                    trainer.samples(),
                    config.clone(),
                    TrainStrictness::Lenient,
                )
                .expect("batch retrain"),
            );
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    retrain_runs.sort_by(f64::total_cmp);
    let retrain_ms = retrain_runs[retrain_runs.len() / 2];
    let retrained = retrained.expect("three retrain runs");
    let speedup = retrain_ms / median_update_ms;

    println!(
        "\n{} samples total: update {median_update_ms:.2} ms/batch median \
         ({mean_update_ms:.2} ms mean, {update_samples_per_sec:.0} samples/s sustained), \
         full retrain {retrain_ms:.1} ms, speedup {speedup:.1}x",
        total_samples
    );

    let models_match = trainer.model().expect("committed model") == &retrained.model;
    if !models_match {
        eprintln!("FAIL: incremental model differs from batch retrain");
    }
    if speedup <= 1.0 {
        eprintln!(
            "FAIL: per-batch update ({median_update_ms:.2} ms median) is not \
             cheaper than a full retrain ({retrain_ms:.1} ms)"
        );
    }

    if !quick {
        let summary = BenchSummary {
            online_training: OnlineCase {
                metrics: scale.metrics,
                front_size: scale.front + 1,
                seed_samples: scale.seed_samples(),
                rounds: scale.rounds,
                batch_samples: scale.batch_samples(),
                total_samples,
                seed_ms,
                mean_update_ms,
                median_update_ms,
                update_samples_per_sec,
                retrain_ms,
                speedup,
                models_match,
            },
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
        spire_core::write_atomic(
            std::path::Path::new(path),
            &serde_json::to_string_pretty(&summary).unwrap(),
        )
        .unwrap();
        println!("wrote {path}");
    }

    if !models_match || speedup <= 1.0 {
        std::process::exit(1);
    }
}
