//! Cross-microarchitecture transfer matrix (`BENCH_transfer.json`).
//!
//! The paper's generality claim is that SPIRE ports to any processor by
//! *retraining on its counters* — not that a trained model transfers
//! between machines. This experiment quantifies that on the full machine
//! catalog: for every (train, eval) pair of catalog presets, a model
//! trained on one machine's corpus scores the other machine's test
//! workloads, in raw counter units and in the hardware-agnostic
//! peak-normalized units of "Dissecting RISC-V Performance".
//!
//! Per cell the matrix records the bottleneck hit rate (expected area in
//! the top 10), the mean relative throughput error, and ranking drift
//! against the eval machine's native model (overlap@5 / Kendall tau).
//! Three gates hold in `--quick` and at paper scale:
//!
//! 1. every self-trained diagonal's hit rate ≥ each transferred
//!    off-diagonal evaluated on the same machine;
//! 2. peak-normalized transfer ≥ raw transfer on mean off-diagonal hit
//!    rate;
//! 3. normalization measurably narrows the structural transfer gap: on
//!    *up-transfers* (train peak below eval peak), where the raw model's
//!    learned ceilings cap every prediction at the small machine's
//!    limits, the normalized variant's mean relative error is strictly
//!    lower than the raw variant's.
//!
//! Down-transfers are reported but not gated: a raw model evaluated on a
//! narrower machine's counters already adapts through the samples'
//! intensities, so normalization has no structural error to remove there
//! — fraction-of-peak is not machine-invariant when utilization
//! efficiency differs, which is the paper's argument for retraining per
//! machine in the first place.

use std::path::Path;

use spire_bench::{config_from_args, dataset_of, run_suite, Engine, WorkloadRun};
use spire_core::{normalize_set, write_atomic, BottleneckReport, SpireModel, TrainConfig};
use spire_counters::Dataset;
use spire_sim::{Machine, MachineCatalog};
use spire_workloads::suite;

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transfer.json");

/// Ranking depth for the bottleneck hit check (the paper's top-10).
const TOP_K: usize = 10;

#[derive(serde::Serialize)]
struct MachineRow {
    name: String,
    fingerprint: String,
    peak_throughput: f64,
}

#[derive(serde::Serialize)]
struct Cell {
    train: String,
    eval: String,
    diagonal: bool,
    /// Train peak throughput below eval peak: the structurally hard
    /// direction for raw transfer (the model's ceilings cap too low).
    up_transfer: bool,
    raw_hit_rate: f64,
    raw_mean_rel_err: f64,
    raw_overlap_at_5: f64,
    raw_kendall_tau: f64,
    norm_hit_rate: f64,
    norm_mean_rel_err: f64,
}

#[derive(serde::Serialize)]
struct Gates {
    diagonal_hit_rate_dominates: bool,
    normalized_hit_rate_ge_raw: bool,
    normalized_narrows_uptransfer_err: bool,
}

#[derive(serde::Serialize)]
struct Summary {
    top_k: usize,
    test_workloads: usize,
    machines: Vec<MachineRow>,
    cells: Vec<Cell>,
    diag_raw_hit_rate: f64,
    offdiag_raw_hit_rate: f64,
    offdiag_norm_hit_rate: f64,
    diag_raw_rel_err: f64,
    offdiag_raw_rel_err: f64,
    offdiag_norm_rel_err: f64,
    uptransfer_raw_rel_err: f64,
    uptransfer_norm_rel_err: f64,
    gates: Gates,
}

/// One machine's trained artifacts: its test runs, a model in raw
/// counter units, a model in peak-normalized units, and the native
/// (self-trained) report per test workload — the drift baseline.
struct Trained {
    machine: Machine,
    tests: Vec<WorkloadRun>,
    raw: SpireModel,
    norm: SpireModel,
    native: Vec<BottleneckReport>,
}

/// The runs' samples with work rescaled to fraction-of-peak units.
fn normalized_dataset(runs: &[WorkloadRun], machine: &Machine) -> Dataset {
    let peaks = machine.peaks();
    runs.iter()
        .map(|r| (r.label.clone(), normalize_set(&r.session.samples, &peaks)))
        .collect()
}

fn main() {
    let (cfg, _outdir) = config_from_args();
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("SPIRE_BENCH_SMOKE").is_some_and(|v| v == "1");
    let mut engine = Engine::narrated(TrainConfig::default());

    let catalog = MachineCatalog::builtin();
    let mut data: Vec<Trained> = Vec::new();
    for machine in catalog.machines() {
        engine.note(format!("collecting corpus on {}...", machine.name));
        let mcfg = cfg.clone().on_machine(machine);
        let train = run_suite(&suite::training(), &mcfg);
        let tests = run_suite(&suite::testing(), &mcfg);
        let raw = engine.train(&dataset_of(&train));
        let norm = engine.train(&normalized_dataset(&train, machine));
        let native: Vec<BottleneckReport> = tests
            .iter()
            .map(|r| engine.report(&raw, &r.session.samples))
            .collect();
        data.push(Trained {
            machine: machine.clone(),
            tests,
            raw,
            norm,
            native,
        });
    }

    let mut cells: Vec<Cell> = Vec::new();
    for trained in &data {
        for evald in &data {
            let peaks = evald.machine.peaks();
            let n = evald.tests.len() as f64;
            let (mut raw_hits, mut norm_hits) = (0usize, 0usize);
            let (mut raw_err, mut norm_err) = (0.0f64, 0.0f64);
            let (mut overlap, mut tau) = (0.0f64, 0.0f64);
            for (w, run) in evald.tests.iter().enumerate() {
                let raw_report = engine.report(&trained.raw, &run.session.samples);
                if raw_report.area_in_top(run.profile.expected_bottleneck, TOP_K) {
                    raw_hits += 1;
                }
                raw_err += ((raw_report.throughput() - run.ipc) / run.ipc).abs();
                let (o, t) = raw_report.compare(&evald.native[w], 5);
                overlap += o;
                tau += t;

                let norm_samples = normalize_set(&run.session.samples, &peaks);
                let norm_report = engine.report(&trained.norm, &norm_samples);
                if norm_report.area_in_top(run.profile.expected_bottleneck, TOP_K) {
                    norm_hits += 1;
                }
                // Normalized truth: achieved fraction of the eval
                // machine's peak throughput.
                let truth = run.ipc / peaks.throughput;
                norm_err += ((norm_report.throughput() - truth) / truth).abs();
            }
            cells.push(Cell {
                train: trained.machine.name.clone(),
                eval: evald.machine.name.clone(),
                diagonal: trained.machine.name == evald.machine.name,
                up_transfer: trained.machine.peaks().throughput < peaks.throughput,
                raw_hit_rate: raw_hits as f64 / n,
                raw_mean_rel_err: raw_err / n,
                raw_overlap_at_5: overlap / n,
                raw_kendall_tau: tau / n,
                norm_hit_rate: norm_hits as f64 / n,
                norm_mean_rel_err: norm_err / n,
            });
        }
    }

    let mean = |xs: &[&Cell], f: fn(&Cell) -> f64| -> f64 {
        xs.iter().map(|c| f(c)).sum::<f64>() / xs.len() as f64
    };
    let diag: Vec<&Cell> = cells.iter().filter(|c| c.diagonal).collect();
    let off: Vec<&Cell> = cells.iter().filter(|c| !c.diagonal).collect();
    let up: Vec<&Cell> = cells.iter().filter(|c| c.up_transfer).collect();
    let diag_raw_hit_rate = mean(&diag, |c| c.raw_hit_rate);
    let offdiag_raw_hit_rate = mean(&off, |c| c.raw_hit_rate);
    let offdiag_norm_hit_rate = mean(&off, |c| c.norm_hit_rate);
    let diag_raw_rel_err = mean(&diag, |c| c.raw_mean_rel_err);
    let offdiag_raw_rel_err = mean(&off, |c| c.raw_mean_rel_err);
    let offdiag_norm_rel_err = mean(&off, |c| c.norm_mean_rel_err);
    let uptransfer_raw_rel_err = mean(&up, |c| c.raw_mean_rel_err);
    let uptransfer_norm_rel_err = mean(&up, |c| c.norm_mean_rel_err);

    // Gate 1, column-wise: each machine's self-trained model is at least
    // as good at locating its own bottlenecks as any transferred model
    // evaluated on the same test set.
    let diagonal_hit_rate_dominates = data.iter().all(|d| {
        let name = &d.machine.name;
        let self_hit = cells
            .iter()
            .find(|c| c.diagonal && &c.eval == name)
            .expect("diagonal cell exists")
            .raw_hit_rate;
        cells
            .iter()
            .filter(|c| !c.diagonal && &c.eval == name)
            .all(|c| self_hit >= c.raw_hit_rate)
    });
    let gates = Gates {
        diagonal_hit_rate_dominates,
        normalized_hit_rate_ge_raw: offdiag_norm_hit_rate >= offdiag_raw_hit_rate,
        normalized_narrows_uptransfer_err: uptransfer_norm_rel_err < uptransfer_raw_rel_err,
    };

    println!(
        "Cross-microarchitecture transfer: {0}x{0} catalog matrix, {1} test workloads per cell\n",
        data.len(),
        data[0].tests.len()
    );
    println!(
        "{:<16} {:<16} {:>8} {:>10} {:>10} {:>8} {:>10}",
        "train", "eval", "raw hit", "raw err", "norm hit", "norm err", "overlap@5"
    );
    for c in &cells {
        println!(
            "{:<16} {:<16} {:>8.2} {:>10.3} {:>10.2} {:>8.3} {:>10.2}{}",
            c.train,
            c.eval,
            c.raw_hit_rate,
            c.raw_mean_rel_err,
            c.norm_hit_rate,
            c.norm_mean_rel_err,
            c.raw_overlap_at_5,
            if c.diagonal { "  (native)" } else { "" }
        );
    }
    println!(
        "\nhit rate: diagonal {diag_raw_hit_rate:.2} vs transferred {offdiag_raw_hit_rate:.2} \
         raw, {offdiag_norm_hit_rate:.2} normalized"
    );
    println!(
        "mean |rel err|: diagonal {diag_raw_rel_err:.3} vs transferred \
         {offdiag_raw_rel_err:.3} raw, {offdiag_norm_rel_err:.3} normalized"
    );
    println!(
        "up-transfer mean |rel err| (structural gap): {uptransfer_raw_rel_err:.3} raw \
         -> {uptransfer_norm_rel_err:.3} normalized"
    );

    let mut summary = Summary {
        top_k: TOP_K,
        test_workloads: data[0].tests.len(),
        machines: data
            .iter()
            .map(|d| {
                let spec = d.machine.spec();
                MachineRow {
                    name: spec.name,
                    fingerprint: spec.fingerprint,
                    peak_throughput: spec.peaks.throughput,
                }
            })
            .collect(),
        cells,
        diag_raw_hit_rate,
        offdiag_raw_hit_rate,
        offdiag_norm_hit_rate,
        diag_raw_rel_err,
        offdiag_raw_rel_err,
        offdiag_norm_rel_err,
        uptransfer_raw_rel_err,
        uptransfer_norm_rel_err,
        gates,
    };
    if !quick {
        // The same top-level wrapper convention as BENCH_online.json and
        // BENCH_dataset.json, so CI's jq gates address one stable path.
        #[derive(serde::Serialize)]
        struct Wrapper {
            uarch_transfer: Summary,
        }
        let wrapped = Wrapper {
            uarch_transfer: summary,
        };
        let json = serde_json::to_string_pretty(&wrapped).expect("summary serializes");
        write_atomic(Path::new(OUT_PATH), &json).expect("write BENCH_transfer.json");
        println!("\nwrote {OUT_PATH}");
        summary = wrapped.uarch_transfer;
    }

    let mut failed = false;
    if !summary.gates.diagonal_hit_rate_dominates {
        eprintln!(
            "FAIL: a transferred model out-hits the self-trained diagonal on some eval machine"
        );
        failed = true;
    }
    if !summary.gates.normalized_hit_rate_ge_raw {
        eprintln!(
            "FAIL: peak-normalized transfer hit rate {offdiag_norm_hit_rate:.2} < raw \
             {offdiag_raw_hit_rate:.2}"
        );
        failed = true;
    }
    if !summary.gates.normalized_narrows_uptransfer_err {
        eprintln!(
            "FAIL: peak normalization does not narrow the up-transfer error \
             ({uptransfer_norm_rel_err:.3} vs raw {uptransfer_raw_rel_err:.3})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
