//! Extension experiment: cross-microarchitecture transfer.
//!
//! The paper's generality claim is that SPIRE ports to any processor by
//! *retraining on its counters* — not that a trained model transfers
//! between machines. This experiment quantifies both directions on two
//! simulated cores (the Skylake-class default and a narrow "little"
//! core): a model trained on the right core locates the bottlenecks,
//! while the transferred model mis-estimates throughput, since its
//! rooflines encode the other machine's limits.

use spire_bench::{config_from_args, dataset_of, run_suite, Engine, ExperimentConfig};
use spire_core::{SpireModel, TrainConfig};
use spire_sim::CoreConfig;
use spire_workloads::suite;

fn little_core() -> CoreConfig {
    let mut c = CoreConfig::skylake_server();
    c.backend.issue_width = 2;
    c.backend.retire_width = 2;
    c.backend.rob_size = 64;
    c.backend.rs_size = 32;
    c.frontend.dsb_width = 3;
    c.frontend.mite_width = 1;
    c.memory.dram_latency = 320;
    c.memory.mshrs = 4;
    c
}

fn evaluate(
    engine: &mut Engine,
    model: &SpireModel,
    runs: &[spire_bench::WorkloadRun],
    label: &str,
) {
    let mut hits = 0usize;
    let mut err = 0.0;
    for run in runs {
        let report = engine.report(model, &run.session.samples);
        if report.area_in_top(run.profile.expected_bottleneck, 10) {
            hits += 1;
        }
        err += ((report.throughput() - run.ipc) / run.ipc).abs();
    }
    println!(
        "{label:<42} {hits}/4 hits, mean |rel err| {:.3}",
        err / runs.len() as f64
    );
}

fn main() {
    let (big_cfg, _outdir) = config_from_args();
    let little_cfg = ExperimentConfig {
        core: little_core(),
        ..big_cfg.clone()
    };
    let mut engine = Engine::narrated(TrainConfig::default());

    engine.note("collecting corpora on both cores...");
    let big_train = run_suite(&suite::training(), &big_cfg);
    let little_train = run_suite(&suite::training(), &little_cfg);
    let big_tests = run_suite(&suite::testing(), &big_cfg);
    let little_tests = run_suite(&suite::testing(), &little_cfg);

    let big_model = engine.train(&dataset_of(&big_train));
    let little_model = engine.train(&dataset_of(&little_train));

    println!("Cross-microarchitecture transfer (4 test workloads each)\n");
    evaluate(
        &mut engine,
        &big_model,
        &big_tests,
        "big model -> big core (native)",
    );
    evaluate(
        &mut engine,
        &little_model,
        &little_tests,
        "little model -> little core (native)",
    );
    evaluate(
        &mut engine,
        &big_model,
        &little_tests,
        "big model -> little core (transferred)",
    );
    evaluate(
        &mut engine,
        &little_model,
        &big_tests,
        "little model -> big core (transferred)",
    );

    // The machine limit is visible in the models themselves: the little
    // core's rooflines top out near its 2-wide pipeline.
    let ceiling = |m: &SpireModel| {
        m.rooflines()
            .values()
            .filter_map(|r| r.apex().map(|a| a.y))
            .fold(0.0f64, f64::max)
    };
    println!(
        "\nmax learned IPC ceiling: big {:.2} vs little {:.2} (pipeline widths 4 vs 2)",
        ceiling(&big_model),
        ceiling(&little_model)
    );
}
