//! Quantifies **Fig. 1**'s accuracy axis: the paper positions SPIRE
//! between roofline models (low effort, low accuracy) and hand-built
//! counter analyses (high effort, high accuracy).
//!
//! We give each approach the same job — estimate the attainable IPC of
//! the four test workloads — and measure relative error:
//!
//! * **classic roofline**: one global `min(π, β·I)` model. Its `π` is the
//!   pipeline width and `β` is calibrated from a DRAM-streaming probe;
//!   its intensity axis is instructions per DRAM access — the closest
//!   faithful translation of FLOP/byte to our IPC setting. One dimension,
//!   so anything not memory-related is invisible to it.
//! * **SPIRE**: the trained ensemble (63 metric dimensions).
//! * **TMA**: reads the answer off its slot accounting
//!   (`retiring × width` is the IPC it believes the workload earns),
//!   which is as close to ground truth as counter analysis gets here.
//!
//! The effort axis needs no measurement: the roofline has 2 parameters,
//! SPIRE trains itself from samples, and TMA took Intel years of formula
//! engineering (our `spire-tma` inherits those published formulas).

use spire_baselines::ClassicRoofline;
use spire_bench::{config_from_args, dataset_of, report_for, run_suite, train_model};
use spire_core::{MetricId, TrainConfig};
use spire_sim::{Core, Event, Instr, MemLevel};
use spire_workloads::suite;

fn main() {
    let (cfg, _outdir) = config_from_args();

    // Calibrate the classic roofline's bandwidth leg with a DRAM probe.
    let mut core = Core::new(cfg.core);
    let mut probe = std::iter::repeat_n(Instr::load(MemLevel::Dram), 3_000);
    let summary = core.run(&mut probe, 10_000_000);
    // β: instructions per cycle per (instruction per DRAM access) — i.e.
    // DRAM accesses per cycle the machine can sustain.
    let dram_rate = core.counters().get(Event::LongestLatCacheMiss) as f64 / summary.cycles as f64;
    let peak_ipc = cfg.core.backend.issue_width as f64;
    let roofline = ClassicRoofline::new(peak_ipc, dram_rate).expect("valid parameters");

    eprintln!("training SPIRE (23 workloads)...");
    let train_runs = run_suite(&suite::training(), &cfg);
    let model = train_model(&dataset_of(&train_runs), TrainConfig::default());
    let test_runs = run_suite(&suite::testing(), &cfg);

    println!("Fig. 1 — accuracy of attainable-IPC estimates (relative error)\n");
    println!(
        "{:<28} {:>9} {:>10} {:>10} {:>10}",
        "workload", "measured", "roofline", "SPIRE", "TMA"
    );
    let l3 = MetricId::new(Event::LongestLatCacheMiss.name());
    let mut errs = [0.0f64; 3];
    for run in &test_runs {
        // Classic roofline: workload intensity = instructions per DRAM
        // access, aggregated over its samples.
        let samples = run.session.samples.samples_for(&l3);
        let (mut w, mut m) = (0.0, 0.0);
        for s in &samples {
            w += s.work();
            m += s.metric_delta();
        }
        let intensity = if m > 0.0 { w / m } else { f64::INFINITY };
        let roof_est = if intensity.is_finite() {
            roofline.attainable(intensity)
        } else {
            roofline.peak_throughput()
        };

        let spire_est = report_for(&model, run).throughput();
        let tma_est = run.tma.level1.retiring * cfg.core.backend.issue_width as f64;

        let rel = |est: f64| (est - run.ipc) / run.ipc;
        errs[0] += rel(roof_est).abs();
        errs[1] += rel(spire_est).abs();
        errs[2] += rel(tma_est).abs();
        println!(
            "{:<28} {:>9.2} {:>9.2} ({:>+4.0}%) {:>5.2} ({:>+4.0}%) {:>5.2} ({:>+4.0}%)",
            run.label,
            run.ipc,
            roof_est,
            rel(roof_est) * 100.0,
            spire_est,
            rel(spire_est) * 100.0,
            tma_est,
            rel(tma_est) * 100.0
        );
    }
    let n = test_runs.len() as f64;
    println!(
        "\nmean |relative error|: roofline {:.2} | SPIRE {:.2} | TMA {:.2}",
        errs[0] / n,
        errs[1] / n,
        errs[2] / n
    );
    println!(
        "\nThe paper's Fig. 1 ordering — SPIRE more accurate than a conventional\n\
         roofline, approaching the hand-engineered counter analysis — with the\n\
         effort ordering reversed: the roofline needed 2 parameters, SPIRE only\n\
         sampling, TMA a hierarchy of vendor-tuned formulas."
    );
}
