//! Reproduces **Fig. 7**: two learned rooflines from the trained SPIRE
//! ensemble, plotted with their training samples —
//!
//! * `BP.1` (`br_misp_retired.all_branches`): the left-fit showcase,
//!   where max IPC rises with instructions-per-misprediction (and the
//!   right fit may kick in inaccurately at high intensities, the defect
//!   the paper discusses);
//! * `DB.2` (`idq.dsb_uops`): the right-fit showcase, where the IPC
//!   upper bound falls as fewer µops come from the DSB.
//!
//! Emits three SVGs (log/log for both, plus the linear zoom of DB.2) and
//! prints the fitted knots.

use spire_bench::{config_from_args, dataset_of, run_suite, train_model};
use spire_core::{MetricId, TrainConfig};
use spire_plot::roofline_chart;
use spire_workloads::suite;

fn main() {
    let (cfg, outdir) = config_from_args();

    eprintln!("collecting training corpus (23 workloads)...");
    let runs = run_suite(&suite::training(), &cfg);
    let dataset = dataset_of(&runs);
    let model = train_model(&dataset, TrainConfig::default());
    let merged = dataset.merged();

    println!("Fig. 7 — learned roofline functions\n");
    for (panel, metric_name, log_axes, file) in [
        ("left", "br_misp_retired.all_branches", true, "fig7_bp1.svg"),
        ("middle", "idq.dsb_uops", true, "fig7_db2.svg"),
        (
            "right (linear zoom)",
            "idq.dsb_uops",
            false,
            "fig7_db2_linear.svg",
        ),
    ] {
        let metric = MetricId::new(metric_name);
        let roofline = model.roofline(&metric).expect("metric is in the catalog");
        let samples = merged.samples_for(&metric);
        let chart = roofline_chart(roofline, samples.iter(), log_axes);
        let path = outdir.join(file);
        spire_core::write_atomic(&path, &chart.to_svg(720, 480)).expect("write svg");

        println!(
            "[{panel}] {metric_name} ({} training samples)",
            samples.len()
        );
        println!("  left knots (origin -> apex):");
        for k in roofline.left_knots() {
            println!("    ({:.4}, {:.4})", k.x, k.y);
        }
        if let Some(region) = roofline.right_region() {
            println!("  right knots (apex plateau {:.4}):", region.plateau());
            for k in region.knots() {
                println!("    ({:.4}, {:.4})", k.x, k.y);
            }
            println!("  tail (I -> inf): {:.4}", region.tail());
        }
        println!("  wrote {}\n", path.display());
    }

    // The qualitative claims of the figure, checked numerically.
    let bp1 = model
        .roofline(&MetricId::new("br_misp_retired.all_branches"))
        .unwrap();
    if let Some(apex) = bp1.apex() {
        let low = bp1.estimate(apex.x * 0.01);
        let high = bp1.estimate(apex.x * 0.8);
        println!(
            "BP.1 estimation rises with instructions-per-misprediction: {:.3} -> {:.3} ({})",
            low,
            high,
            if high >= low { "yes" } else { "NO" }
        );
    }
    let db2 = model.roofline(&MetricId::new("idq.dsb_uops")).unwrap();
    if let Some(apex) = db2.apex() {
        let at_apex = db2.estimate(apex.x);
        let beyond = db2.estimate(apex.x * 8.0);
        println!(
            "DB.2 upper bound falls as DSB coverage thins (I beyond apex): {:.3} -> {:.3} ({})",
            at_apex,
            beyond,
            if beyond <= at_apex { "yes" } else { "NO" }
        );
    }
}
