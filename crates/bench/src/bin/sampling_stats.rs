//! Reproduces the **Section IV sample-collection statistics**: total
//! sample count, samples per metric, and the execution-time overhead of
//! multiplexed sampling (the paper reports 1.3M samples, ~3k per metric,
//! 1.6% average / 4.6% maximum overhead).
//!
//! Absolute counts scale with the simulated cycle budget; the per-metric
//! balance and the overhead magnitudes are the comparable shape.

use spire_bench::{config_from_args, run_suite};
use spire_workloads::suite;

fn main() {
    let (cfg, _outdir) = config_from_args();
    let profiles = suite::all();
    eprintln!("sampling all 27 workloads...");
    let runs = run_suite(&profiles, &cfg);

    let mut total_samples = 0usize;
    let mut overheads = Vec::new();
    let mut per_metric: std::collections::BTreeMap<String, usize> = Default::default();
    println!("Section IV — sample collection statistics\n");
    println!(
        "{:<40} {:>9} {:>10} {:>10}",
        "workload", "samples", "intervals", "overhead"
    );
    for run in &runs {
        total_samples += run.session.samples.len();
        overheads.push(run.session.overhead_fraction());
        for s in run.session.samples.iter() {
            *per_metric.entry(s.metric().to_string()).or_default() += 1;
        }
        println!(
            "{:<40} {:>9} {:>10} {:>9.2}%",
            run.label,
            run.session.samples.len(),
            run.session.intervals,
            run.session.overhead_fraction() * 100.0
        );
    }

    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    let max = overheads.iter().copied().fold(0.0f64, f64::max);
    let metrics = per_metric.len();
    let min_per = per_metric.values().min().copied().unwrap_or(0);
    let max_per = per_metric.values().max().copied().unwrap_or(0);

    println!("\ntotals:");
    println!("  samples collected: {total_samples}");
    println!("  distinct metrics: {metrics}");
    println!(
        "  samples per metric: {:.0} avg (min {min_per}, max {max_per})",
        total_samples as f64 / metrics.max(1) as f64
    );
    println!(
        "  sampling overhead: {:.2}% average, {:.2}% maximum (paper: 1.6% avg, 4.6% max)",
        avg * 100.0,
        max * 100.0
    );
}
