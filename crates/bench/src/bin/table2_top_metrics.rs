//! Reproduces **Table II**: the top-10 SPIRE performance metrics for each
//! of the four testing workloads, annotated with measured IPC, the mean
//! IPC estimation per metric, the metric abbreviation, and its closest
//! TMA area — next to the TMA baseline's classification (the paper's
//! color coding).
//!
//! Train on the 23 training workloads; evaluate on the 4 test workloads.
//! Run with `--quick` for a fast low-fidelity pass.
#![allow(clippy::print_literal)] // literal header cells keep the column widths visible

use spire_bench::{config_from_args, dataset_of, run_suite, spire_agrees_with_tma, Engine};
use spire_core::TrainConfig;
use spire_workloads::suite;

fn main() {
    let (cfg, _outdir) = config_from_args();
    let mut engine = Engine::narrated(TrainConfig::default());

    engine.note("collecting training corpus (23 workloads)...");
    let training_runs = run_suite(&suite::training(), &cfg);
    let dataset = dataset_of(&training_runs);
    engine.note(format!(
        "training SPIRE ensemble on {} samples...",
        dataset.total_samples()
    ));
    let model = engine.train(&dataset);
    engine.note(format!("trained {} metric rooflines", model.metric_count()));

    engine.note("collecting testing workloads (4)...");
    let test_runs = run_suite(&suite::testing(), &cfg);

    println!("Table II — top 10 performance metrics for each testing workload\n");
    for run in &test_runs {
        let report = engine.report(&model, &run.session.samples);
        println!(
            "=== {} — measured IPC {:.2} | TMA: {} (main: {}) ===",
            run.label,
            run.ipc,
            run.tma.summary(),
            run.tma.main_category(),
        );
        println!(
            "{:<6} {:>10} {:<10} {:<16} {}",
            "rank", "mean est.", "abbr", "closest TMA", "metric"
        );
        for (rank, row) in report.top(10).iter().enumerate() {
            println!(
                "{:<6} {:>10.3} {:<10} {:<16} {}",
                rank + 1,
                row.estimate,
                row.abbr.as_deref().unwrap_or("-"),
                row.area.map_or("-".to_owned(), |a| a.to_string()),
                row.metric
            );
        }
        let agrees = spire_agrees_with_tma(&report, &run.tma, 10);
        println!(
            "SPIRE top-10 contains TMA's dominant bottleneck ({}): {}\n",
            run.tma.dominant_bottleneck(),
            if agrees { "yes" } else { "NO" }
        );
    }
}
