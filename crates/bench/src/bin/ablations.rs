//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **merge** — Eq. (1)'s time-weighted average vs an unweighted mean;
//! 2. **aggregation** — min-ensemble vs mean-ensemble;
//! 3. **right fit** — the paper's graph fit vs a plateau vs the Auto
//!    trend-detecting extension (the Fig. 7 BP.1 defect);
//! 4. **training-set size** — model quality vs number of training
//!    workloads;
//! 5. **regression baseline** — SPIRE's ranking vs ridge-regression
//!    feature importance (the related-work comparison).
//!
//! Quality is scored two ways on the four test workloads: whether the
//! expected bottleneck area appears in the top-10 ranked metrics, and
//! the relative error of the ensemble throughput estimate against the
//! measured IPC.

use spire_baselines::RegressionBaseline;
use spire_bench::{
    config_from_args, dataset_of, run_suite, spire_finds_expected, workload_label, Engine,
    WorkloadRun,
};
use spire_core::catalog::MetricCatalog;
use spire_core::{
    EnsembleAggregation, FitOptions, MergeStrategy, RightFitMode, SpireModel, TrainConfig,
};
use spire_counters::Dataset;
use spire_workloads::suite;

/// Scores one trained model over the test runs: `(hits, mean |rel err|)`.
fn score(engine: &mut Engine, model: &SpireModel, tests: &[WorkloadRun]) -> (usize, f64) {
    let mut hits = 0usize;
    let mut err_sum = 0.0;
    for run in tests {
        let report = engine.report(model, &run.session.samples);
        if spire_finds_expected(&report, run.profile.expected_bottleneck, 10) {
            hits += 1;
        }
        err_sum += ((report.throughput() - run.ipc) / run.ipc).abs();
    }
    (hits, err_sum / tests.len() as f64)
}

fn config_with(
    merge: MergeStrategy,
    aggregation: EnsembleAggregation,
    right: RightFitMode,
) -> TrainConfig {
    TrainConfig {
        merge,
        aggregation,
        fit: FitOptions {
            right_fit: right,
            ..FitOptions::default()
        },
        ..TrainConfig::default()
    }
}

fn main() {
    let (cfg, _outdir) = config_from_args();
    let mut engine = Engine::narrated(TrainConfig::default());

    engine.note("collecting corpus (23 train + 4 test workloads)...");
    let train_runs = run_suite(&suite::training(), &cfg);
    let test_runs = run_suite(&suite::testing(), &cfg);
    let dataset = dataset_of(&train_runs);

    println!("Ablations (4 test workloads; hits = expected area in top-10)\n");

    // --- 1 & 2 & 3: model-configuration grid. ------------------------------
    println!(
        "{:<16} {:<12} {:<10} {:>6} {:>12}",
        "merge", "aggregation", "right-fit", "hits", "mean |err|"
    );
    let variants = [
        (
            "time-weighted",
            MergeStrategy::TimeWeighted,
            "min",
            EnsembleAggregation::Min,
            "graph",
            RightFitMode::Graph,
        ),
        (
            "unweighted",
            MergeStrategy::Unweighted,
            "min",
            EnsembleAggregation::Min,
            "graph",
            RightFitMode::Graph,
        ),
        (
            "time-weighted",
            MergeStrategy::TimeWeighted,
            "mean",
            EnsembleAggregation::Mean,
            "graph",
            RightFitMode::Graph,
        ),
        (
            "time-weighted",
            MergeStrategy::TimeWeighted,
            "min",
            EnsembleAggregation::Min,
            "plateau",
            RightFitMode::Plateau,
        ),
        (
            "time-weighted",
            MergeStrategy::TimeWeighted,
            "min",
            EnsembleAggregation::Min,
            "auto",
            RightFitMode::Auto,
        ),
    ];
    for (mname, merge, aname, agg, rname, right) in variants {
        let model = engine.train_with(&dataset, config_with(merge, agg, right));
        let (hits, err) = score(&mut engine, &model, &test_runs);
        println!(
            "{:<16} {:<12} {:<10} {:>4}/4 {:>12.3}",
            mname, aname, rname, hits, err
        );
    }

    // --- 4: training-set size. ----------------------------------------------
    println!("\ntraining-set size (paper setting: 23):");
    println!(
        "{:>10} {:>8} {:>6} {:>12}",
        "workloads", "samples", "hits", "mean |err|"
    );
    for k in [2usize, 5, 10, 16, 23] {
        let subset: Dataset = train_runs
            .iter()
            .take(k)
            .map(|r| (r.label.clone(), r.session.samples.clone()))
            .collect();
        let model = engine.train_with(&subset, TrainConfig::default());
        let (hits, err) = score(&mut engine, &model, &test_runs);
        println!(
            "{:>10} {:>8} {:>4}/4 {:>12.3}",
            k,
            subset.total_samples(),
            hits,
            err
        );
    }

    // --- 5: regression-importance baseline. ---------------------------------
    println!("\nregression baseline (ridge importance vs SPIRE ranking):");
    let catalog = MetricCatalog::table_iii();
    let spire_model = engine.train_with(&dataset, TrainConfig::default());
    let mut spire_hits = 0usize;
    let mut reg_hits = 0usize;
    for run in &test_runs {
        let report = engine.report(&spire_model, &run.session.samples);
        if spire_finds_expected(&report, run.profile.expected_bottleneck, 10) {
            spire_hits += 1;
        }
        // The regression baseline trains on the *workload's own* samples
        // (importance = which rates explain its throughput variation).
        match RegressionBaseline::train(&run.session.samples, 1.0) {
            Ok(reg) => {
                let top: Vec<_> = reg.importance_ranking().into_iter().take(10).collect();
                let hit = top
                    .iter()
                    .any(|(m, _)| catalog.area_of(m) == Some(run.profile.expected_bottleneck));
                reg_hits += usize::from(hit);
                println!(
                    "  {:<36} expected {:<16} regression top metric: {}",
                    workload_label(&run.profile),
                    run.profile.expected_bottleneck.to_string(),
                    top.first().map_or("-".into(), |(m, _)| m.to_string())
                );
            }
            Err(e) => println!("  {}: regression failed: {e}", run.label),
        }
    }
    println!("\n  SPIRE: {spire_hits}/4 | regression importance: {reg_hits}/4");
}
