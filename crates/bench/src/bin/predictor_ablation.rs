//! Extension experiment: branch-predictor microarchitecture vs SPIRE's
//! bad-speculation metrics.
//!
//! Instead of a fixed Bernoulli misprediction rate, this experiment
//! drives branch outcomes through real predictor models
//! (`spire_sim::predictor`) of varying sizes, runs the same workload on
//! the core, and reports how the measured misprediction rate, IPC, and
//! SPIRE's `BP.1` intensity respond. A shrinking predictor should walk
//! the workload down the learned `BP.1` roofline — demonstrating that
//! SPIRE's per-metric view tracks a microarchitectural knob it was never
//! told about.

use spire_bench::{config_from_args, dataset_of, run_suite, train_model};
use spire_core::{MetricId, TrainConfig};
use spire_counters::collect;
use spire_sim::predictor::GsharePredictor;
use spire_sim::{Core, Event};
use spire_tma::analyze;
use spire_workloads::{suite, BranchSiteModel, PredictedBranches};

fn main() {
    let (cfg, _outdir) = config_from_args();

    eprintln!("training SPIRE on the standard corpus...");
    let train_runs = run_suite(&suite::training(), &cfg);
    let model = train_model(&dataset_of(&train_runs), TrainConfig::default());
    let bp1 = MetricId::new("br_misp_retired.all_branches");

    // A branchy workload whose mispredictions now come from a predictor.
    let profile = suite::by_name("scikit-learn", "Sparsify").expect("suite workload");
    // 64 sites, 40% of them short-periodic: learnable by a large gshare
    // (each (site, phase) context is distinguishable through the global
    // history), hopeless for a tiny aliased table.
    let sites = BranchSiteModel {
        sites: 64,
        taken_bias: 0.92,
        periodic_fraction: 0.4,
        period: 4,
    };

    println!("Predictor-size ablation on scikit-learn (Sparsify)\n");
    println!(
        "{:<22} {:>10} {:>8} {:>12} {:>14}",
        "predictor", "misp rate", "ipc", "I_BP.1", "SPIRE est(BP.1)"
    );
    for log2 in [4u32, 6, 8, 10, 12, 14] {
        let predictor = GsharePredictor::new(log2, log2.min(12));
        let mut stream =
            PredictedBranches::new(profile.stream(cfg.seed), sites, predictor, cfg.seed + 1);

        // Measure TMA/IPC on a dedicated run.
        let mut core = Core::new(cfg.core);
        let summary = core.run(&mut stream, cfg.session.max_cycles);
        let tma = analyze(core.counters(), &cfg.core);
        let misp_rate = stream.mispredict_rate();

        // Sample and estimate through SPIRE.
        let mut stream = PredictedBranches::new(
            profile.stream(cfg.seed),
            sites,
            GsharePredictor::new(log2, log2.min(12)),
            cfg.seed + 1,
        );
        let mut core = Core::new(cfg.core);
        let report = collect(&mut core, &mut stream, Event::ALL, &cfg.session);
        let estimate = model.estimate(&report.samples).expect("common metrics");
        let bp1_est = estimate.per_metric()[&bp1].merged;

        // The workload's observed BP.1 intensity (instructions per
        // misprediction), time-weighted across its samples.
        let samples = report.samples.samples_for(&bp1);
        let (mut w, mut m) = (0.0, 0.0);
        for s in &samples {
            w += s.work();
            m += s.metric_delta();
        }
        let intensity = if m > 0.0 { w / m } else { f64::INFINITY };

        println!(
            "gshare 2^{log2:<2} entries   {:>9.3}% {:>8.2} {:>12.1} {:>14.3}",
            misp_rate * 100.0,
            summary.ipc(),
            intensity,
            bp1_est
        );
        let _ = tma;
    }
    println!(
        "\nShrinking the predictor raises the misprediction rate, lowers the\n\
         workload's instructions-per-misprediction intensity, and slides it\n\
         left down SPIRE's learned BP.1 roofline (falling estimates)."
    );
}
