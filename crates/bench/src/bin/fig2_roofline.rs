//! Reproduces **Fig. 2**: a conventional roofline model plot with two
//! measured applications and extra ceilings for scalar execution and
//! DRAM bandwidth. App A sits in the memory-bound region; App B is
//! compute-bound.
//!
//! Emits an SVG to the output directory and prints the plotted series as
//! CSV rows.

use spire_baselines::{CeilingKind, ClassicRoofline};
use spire_bench::config_from_args;
use spire_plot::{Chart, Scale, SeriesKind};

fn main() {
    let (_cfg, outdir) = config_from_args();

    // Peak: 128 ops/time at 16 bytes/time bandwidth; scalar and DRAM
    // ceilings below, mirroring the paper's example structure.
    let model = ClassicRoofline::new(128.0, 16.0)
        .expect("valid parameters")
        .with_ceiling("scalar execution", CeilingKind::Compute(16.0))
        .with_ceiling("DRAM bandwidth", CeilingKind::Bandwidth(4.0));

    // Two measured applications, as in the figure: A memory-bound, B
    // compute-bound, both below their roofs.
    let app_a = (1.0, 10.0);
    let app_b = (32.0, 90.0);

    let xs: Vec<f64> = (0..200)
        .map(|i| 0.125 * (1024.0f64 / 0.125).powf(i as f64 / 199.0))
        .collect();
    let roof: Vec<(f64, f64)> = xs.iter().map(|&x| (x, model.attainable(x))).collect();
    let scalar: Vec<(f64, f64)> = xs
        .iter()
        .map(|&x| (x, model.attainable_under(&model.ceilings()[0], x)))
        .collect();
    let dram: Vec<(f64, f64)> = xs
        .iter()
        .map(|&x| (x, model.attainable_under(&model.ceilings()[1], x)))
        .collect();

    let chart = Chart::new(
        "Fig. 2 — roofline model with additional ceilings",
        "operational intensity I (work/byte)",
        "performance P (work/time)",
    )
    .with_x_scale(Scale::Log10)
    .with_y_scale(Scale::Log10)
    .with_series("roofline min(π, βI)", SeriesKind::Lines, roof.clone())
    .with_series("scalar ceiling", SeriesKind::Lines, scalar.clone())
    .with_series("DRAM ceiling", SeriesKind::Lines, dram.clone())
    .with_series("App A (memory-bound)", SeriesKind::Points, vec![app_a])
    .with_series("App B (compute-bound)", SeriesKind::Points, vec![app_b]);

    let svg_path = outdir.join("fig2_roofline.svg");
    spire_core::write_atomic(&svg_path, &chart.to_svg(720, 480)).expect("write svg");

    println!("Fig. 2 — classic roofline (series as CSV)\n");
    println!("intensity,roof,scalar_ceiling,dram_ceiling");
    for i in (0..xs.len()).step_by(20) {
        println!(
            "{:.4},{:.4},{:.4},{:.4}",
            xs[i], roof[i].1, scalar[i].1, dram[i].1
        );
    }
    println!("\nridge point: {:.3}", model.ridge_point());
    println!(
        "App A at I={}: attainable {:.1}, classified {}",
        app_a.0,
        model.attainable(app_a.0),
        model.classify(app_a.0)
    );
    println!(
        "App B at I={}: attainable {:.1}, classified {}",
        app_b.0,
        model.attainable(app_b.0),
        model.classify(app_b.0)
    );
    println!("\nwrote {}", svg_path.display());
}
