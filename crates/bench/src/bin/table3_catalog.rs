//! Reproduces **Table III**: performance-metric abbreviations and names,
//! organized by microarchitecture area.

use spire_core::catalog::{MetricCatalog, UarchArea};

fn main() {
    let catalog = MetricCatalog::table_iii();
    println!("Table III — performance metric abbreviations and names\n");
    for area in UarchArea::ALL {
        println!("[{area}]");
        for info in catalog.in_area(area) {
            println!("  {:<6} {}", info.abbr, info.event);
        }
        println!();
    }
    println!("{} metrics total", catalog.len());
}
