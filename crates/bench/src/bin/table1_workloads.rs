//! Reproduces **Table I**: the 27 evaluation workloads with their main
//! high-level TMA bottleneck (the paper encodes the bottleneck as row
//! colors; we print it as a column and check it against the intended
//! one).
//!
//! Run with `--quick` for a fast low-fidelity pass.
#![allow(clippy::print_literal)] // literal header cells keep the column widths visible

use spire_bench::{config_from_args, run_suite};
use spire_workloads::suite;

fn main() {
    let (cfg, _outdir) = config_from_args();
    println!("Table I — workloads used to evaluate SPIRE");
    println!("(simulated reproduction; bottleneck = dominant TMA category)\n");
    println!(
        "{:<6} {:<18} {:<22} {:>6}  {:<16} {:<16} {}",
        "set", "name", "configuration", "ipc", "tma bottleneck", "intended", "match"
    );

    let mut matches = 0usize;
    let mut total = 0usize;
    for (set_name, profiles) in [("train", suite::training()), ("test", suite::testing())] {
        let runs = run_suite(&profiles, &cfg);
        for run in &runs {
            let got = run.tma.dominant_bottleneck();
            let want = run.profile.expected_bottleneck;
            let ok = got == want;
            matches += usize::from(ok);
            total += 1;
            println!(
                "{:<6} {:<18} {:<22} {:>6.2}  {:<16} {:<16} {}",
                set_name,
                run.profile.name,
                run.profile.config,
                run.ipc,
                got.to_string(),
                want.to_string(),
                if ok { "yes" } else { "NO" }
            );
        }
    }
    println!("\n{matches}/{total} workloads exhibit their intended Table I bottleneck");
}
