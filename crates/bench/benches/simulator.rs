//! Criterion benchmarks for the CPU-simulator substrate: core throughput
//! (simulated cycles per wall second) on contrasting workloads, and the
//! multiplexed sampling session.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spire_counters::{collect, SessionConfig};
use spire_sim::{Core, CoreConfig, Event};
use spire_workloads::suite;

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let cases = [
        ("tnn", "SqueezeNet v1.1"),
        ("onnx", "T5 Encoder, Std."),
        ("parboil", "CUTCP"),
    ];
    for (name, config) in cases {
        let profile = suite::by_name(name, config).expect("suite workload");
        group.bench_with_input(
            BenchmarkId::new("run_100k_cycles", name),
            &profile,
            |b, p| {
                b.iter(|| {
                    let mut core = Core::new(CoreConfig::skylake_server());
                    let mut stream = p.stream(1);
                    core.run(&mut stream, 100_000)
                });
            },
        );
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let profile = suite::by_name("onnx", "T5 Encoder, Std.").expect("suite workload");
    let mut group = c.benchmark_group("sampling_session");
    group.sample_size(10);
    group.bench_function("full_catalog_200k_cycles", |b| {
        b.iter(|| {
            let mut core = Core::new(CoreConfig::skylake_server());
            let mut stream = profile.stream(1);
            let cfg = SessionConfig {
                interval_cycles: 50_000,
                slice_cycles: 3_000,
                pmu_slots: 4,
                switch_overhead_cycles: 60,
                max_cycles: 200_000,
            };
            collect(&mut core, &mut stream, Event::ALL, &cfg)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_core, bench_sampling);
criterion_main!(benches);
