//! Criterion benchmarks for the fault-tolerant perf ingest: clean
//! multiplexed captures, captures salted with quarantine-worthy rows, and
//! the scaling-disabled path.
//!
//! Run `cargo bench --bench ingest` for full measurements, or with
//! `-- --test` for the smoke mode CI uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_counters::{ingest_perf_csv, IngestConfig};

/// Synthesizes a multiplexed `perf stat -I -x,` capture: `intervals`
/// intervals of `events` events each, with running fractions drawn from
/// `(0.1, 1.0]` and a `garbage_every`-th line replaced by junk (0 = none).
fn synth_capture(intervals: usize, events: usize, garbage_every: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::with_capacity(intervals * events * 48);
    let mut line = 0usize;
    for i in 0..intervals {
        let t = (i + 1) as f64;
        out.push_str(&format!(
            "{t:.6},{},,inst_retired.any,1000000,100.00,,\n",
            rng.gen_range(500_000u64..2_000_000)
        ));
        out.push_str(&format!(
            "{t:.6},{},,cpu_clk_unhalted.thread,1000000,100.00,,\n",
            rng.gen_range(500_000u64..1_000_000)
        ));
        for e in 0..events {
            line += 1;
            if garbage_every > 0 && line.is_multiple_of(garbage_every) {
                out.push_str("…truncated garbage row…\n");
                continue;
            }
            let pct: f64 = rng.gen_range(10.0..100.0);
            out.push_str(&format!(
                "{t:.6},{},,synth.event_{e:03},{},{pct:.2},,\n",
                rng.gen_range(0u64..5_000_000),
                (pct * 10_000.0) as u64
            ));
        }
    }
    out
}

fn bench_ingest(c: &mut Criterion) {
    let clean = synth_capture(200, 64, 0, 11);
    let dirty = synth_capture(200, 64, 9, 13);
    let config = IngestConfig::default();
    let raw = IngestConfig {
        scale_multiplexed: false,
        ..IngestConfig::default()
    };

    let mut group = c.benchmark_group("ingest");
    group.bench_with_input(BenchmarkId::new("scaled", "clean"), &clean, |b, text| {
        b.iter(|| ingest_perf_csv(std::hint::black_box(text), &config));
    });
    group.bench_with_input(BenchmarkId::new("scaled", "dirty"), &dirty, |b, text| {
        b.iter(|| ingest_perf_csv(std::hint::black_box(text), &config));
    });
    group.bench_with_input(BenchmarkId::new("raw", "clean"), &clean, |b, text| {
        b.iter(|| ingest_perf_csv(std::hint::black_box(text), &raw));
    });
    group.finish();

    // Sanity outside the timed loop: the dirty capture really exercises
    // the quarantine path without tripping the budget.
    let out = ingest_perf_csv(&dirty, &config);
    assert!(out.report.rows_quarantined > 0);
    assert!(!out.report.budget_exceeded());
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
