//! Criterion benchmarks for model snapshots and fault containment:
//! snapshot save/load against a raw serde round-trip, and the overhead of
//! per-item panic containment (`map_catching`) over the plain fan-out
//! (`map`) at training scale.
//!
//! Run `cargo bench --bench snapshot` for full measurements, or with
//! `-- --test` for the smoke mode CI uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spire_core::snapshot::load_model;
use spire_core::{
    parallel, ModelSnapshot, Sample, SampleSet, SnapshotMode, SpireModel, TrainConfig,
    TrainStrictness,
};

/// Trains a model over `metrics` metrics with 48 samples each — enough
/// knots per roofline for serialization cost to be realistic.
fn trained_model(metrics: usize) -> SpireModel {
    let mut set = SampleSet::new();
    for m in 0..metrics {
        for i in 1..49 {
            let t = 10.0 + (i % 5) as f64;
            let w = (3 * i + m) as f64;
            let delta = 1.0 + ((i * 7 + m) % 23) as f64;
            set.push(Sample::new(format!("metric_{m:03}").as_str(), t, w, delta).unwrap());
        }
    }
    SpireModel::train(&set, TrainConfig::default()).unwrap()
}

fn bench_snapshot(c: &mut Criterion) {
    let model = trained_model(64);
    let snapshot_json = ModelSnapshot::from_model(&model).unwrap().to_json();
    let raw_json = serde_json::to_string(&model).unwrap();

    let mut group = c.benchmark_group("snapshot");
    group.bench_function("save/checksummed", |b| {
        b.iter(|| {
            ModelSnapshot::from_model(std::hint::black_box(&model))
                .unwrap()
                .to_json()
        });
    });
    group.bench_function("save/raw_serde", |b| {
        b.iter(|| serde_json::to_string(std::hint::black_box(&model)).unwrap());
    });
    group.bench_with_input(
        BenchmarkId::new("load", "checksummed"),
        &snapshot_json,
        |b, text| {
            b.iter(|| load_model(std::hint::black_box(text), SnapshotMode::Strict).unwrap());
        },
    );
    group.bench_with_input(
        BenchmarkId::new("load", "raw_serde"),
        &raw_json,
        |b, text| {
            b.iter(|| load_model(std::hint::black_box(text), SnapshotMode::Strict).unwrap());
        },
    );
    group.finish();

    // Sanity outside the timed loop: both paths yield the same ensemble.
    let (a, _) = load_model(&snapshot_json, SnapshotMode::Strict).unwrap();
    let (b, _) = load_model(&raw_json, SnapshotMode::Strict).unwrap();
    assert_eq!(a, b);
}

fn bench_containment(c: &mut Criterion) {
    // The cost of catch_unwind per fit job, measured against the plain
    // fan-out on identical work, serial and parallel.
    let jobs: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..512)
                .map(|j| ((i * 512 + j) % 997) as f64 * 1e-3)
                .collect()
        })
        .collect();
    let reduce = |v: &Vec<f64>| v.iter().sum::<f64>();

    let mut group = c.benchmark_group("containment");
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("map", threads), &threads, |b, &t| {
            b.iter(|| parallel::map(std::hint::black_box(&jobs), t, reduce));
        });
        group.bench_with_input(
            BenchmarkId::new("map_catching", threads),
            &threads,
            |b, &t| {
                b.iter(|| parallel::map_catching(std::hint::black_box(&jobs), t, reduce));
            },
        );
    }
    group.finish();
}

fn bench_fault_isolated_training(c: &mut Criterion) {
    // End-to-end: strict (fail-fast) vs lenient (report-building) training
    // on a clean corpus — the containment machinery's real-world overhead.
    let mut set = SampleSet::new();
    for m in 0..32 {
        for i in 1..33 {
            let w = (3 * i + m) as f64;
            let delta = 1.0 + ((i * 5 + m) % 17) as f64;
            set.push(Sample::new(format!("metric_{m:02}").as_str(), 10.0, w, delta).unwrap());
        }
    }
    let config = TrainConfig {
        threads: 1,
        ..TrainConfig::default()
    };

    let mut group = c.benchmark_group("train_isolated");
    group.bench_function("plain", |b| {
        b.iter(|| SpireModel::train(std::hint::black_box(&set), config.clone()).unwrap());
    });
    group.bench_function("with_report", |b| {
        b.iter(|| {
            SpireModel::train_with_report(
                std::hint::black_box(&set),
                config.clone(),
                TrainStrictness::Lenient,
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot,
    bench_containment,
    bench_fault_isolated_training
);
criterion_main!(benches);
