//! Criterion benchmarks for the roofline fitting algorithms: the
//! Jarvis-march left fit, the Pareto front, and the shortest-path right
//! fit, as a function of training-sample count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_core::geometry::{pareto_front, upper_hull_from_origin, Point};
use spire_core::{FitOptions, PiecewiseRoofline, RightFitMode, Sample};

/// Synthetic roofline-shaped samples: throughput rises then falls with
/// intensity, plus noise — the shape a real metric produces.
fn synthetic_samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let intensity: f64 = rng.gen_range(0.01..100.0);
            let roof = if intensity < 10.0 {
                intensity * 0.4
            } else {
                4.0 * (10.0 / intensity).powf(0.3)
            };
            let p = roof * rng.gen_range(0.3..1.0);
            let t = rng.gen_range(0.5..2.0);
            Sample::new("bench", t, p * t, p * t / intensity).unwrap()
        })
        .collect()
}

fn points_of(samples: &[Sample]) -> Vec<Point> {
    samples
        .iter()
        .map(|s| Point::new(s.intensity(), s.throughput()))
        .collect()
}

fn bench_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometry");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let pts = points_of(&synthetic_samples(n, 7));
        group.bench_with_input(BenchmarkId::new("upper_hull", n), &pts, |b, pts| {
            b.iter(|| upper_hull_from_origin(std::hint::black_box(pts)));
        });
        group.bench_with_input(BenchmarkId::new("pareto_front", n), &pts, |b, pts| {
            b.iter(|| pareto_front(std::hint::black_box(pts)));
        });
    }
    group.finish();
}

fn bench_roofline_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline_fit");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let samples = synthetic_samples(n, 11);
        group.bench_with_input(BenchmarkId::new("graph", n), &samples, |b, s| {
            b.iter(|| {
                PiecewiseRoofline::fit("bench".into(), s.iter(), &FitOptions::default()).unwrap()
            });
        });
        let plateau = FitOptions {
            right_fit: RightFitMode::Plateau,
            ..FitOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("plateau", n), &samples, |b, s| {
            b.iter(|| PiecewiseRoofline::fit("bench".into(), s.iter(), &plateau).unwrap());
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let samples = synthetic_samples(5_000, 13);
    let roofline =
        PiecewiseRoofline::fit("bench".into(), samples.iter(), &FitOptions::default()).unwrap();
    c.bench_function("roofline_estimate", |b| {
        let mut x = 0.01;
        b.iter(|| {
            x = if x > 90.0 { 0.01 } else { x * 1.07 };
            std::hint::black_box(roofline.estimate(x))
        });
    });
}

criterion_group!(benches, bench_geometry, bench_roofline_fit, bench_estimate);
criterion_main!(benches);
