//! Benchmarks for the roofline fitting algorithms: the Jarvis-march left
//! fit, the Pareto front, the right-region fit (fast topological-DP path
//! vs. the retained graph/Dijkstra reference), and the batch SoA estimate
//! kernel.
//!
//! Besides the criterion-style groups, `main` runs a timed head-to-head of
//! `fit_right_front` against `roofline::reference::fit_right` on synthetic
//! Pareto fronts of k = 256 / 1024 / 4096 samples and writes the results to
//! `BENCH_fitting.json` at the workspace root. The comparison asserts the
//! two fits agree (equal plateau/tail, fit cost within 1e-9 relative) and
//! panics on a mismatch, so CI smoke runs validate correctness even though
//! they skip the timing.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_core::geometry::{pareto_front, upper_hull_from_origin, Point};
use spire_core::roofline::{fit_right_front, reference};
use spire_core::{FitOptions, MetricId, PiecewiseRoofline, RightFitMode, Sample, SampleSet};

/// Synthetic roofline-shaped samples: throughput rises then falls with
/// intensity, plus noise — the shape a real metric produces.
fn synthetic_samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let intensity: f64 = rng.gen_range(0.01..100.0);
            let roof = if intensity < 10.0 {
                intensity * 0.4
            } else {
                4.0 * (10.0 / intensity).powf(0.3)
            };
            let p = roof * rng.gen_range(0.3..1.0);
            let t = rng.gen_range(0.5..2.0);
            Sample::new("bench", t, p * t, p * t / intensity).unwrap()
        })
        .collect()
}

fn points_of(samples: &[Sample]) -> Vec<Point> {
    samples
        .iter()
        .map(|s| Point::new(s.intensity(), s.throughput()))
        .collect()
}

/// A jittered k-sample Pareto front (descending intensity, ascending
/// throughput), the shape the right fit sees from noisy real data.
fn jittered_front(k: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut x = 100.0 + k as f64;
    let mut y = 0.5;
    (0..k)
        .map(|_| {
            x -= rng.gen_range(0.05..1.0);
            y += rng.gen_range(0.02..0.5);
            Point::new(x, y)
        })
        .collect()
}

/// An adversarial front for the reference algorithm: blocks of `block`
/// samples in convex position separated by throughput jumps far larger
/// than any within-block variation. Cross-block chords sag below the
/// convex interior, so the reference's per-pair feasibility scan walks
/// deep into each block before rejecting, while within-block pairs are
/// all feasible — a dense segment graph with long scans, without the
/// memory blow-up of a fully convex front.
fn block_convex_front(k: usize, block: usize) -> Vec<Point> {
    let jump = 10.0 * (block * block) as f64;
    (0..k)
        .map(|i| {
            let t = (i % block) as f64;
            let y = (i / block) as f64 * jump + t * t + 1.0;
            Point::new((k - i) as f64, y)
        })
        .collect()
}

fn bench_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometry");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let pts = points_of(&synthetic_samples(n, 7));
        group.bench_with_input(BenchmarkId::new("upper_hull", n), &pts, |b, pts| {
            b.iter(|| upper_hull_from_origin(std::hint::black_box(pts)));
        });
        group.bench_with_input(BenchmarkId::new("pareto_front", n), &pts, |b, pts| {
            b.iter(|| pareto_front(std::hint::black_box(pts)));
        });
    }
    group.finish();
}

fn bench_roofline_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline_fit");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let samples = synthetic_samples(n, 11);
        group.bench_with_input(BenchmarkId::new("graph", n), &samples, |b, s| {
            b.iter(|| {
                PiecewiseRoofline::fit("bench".into(), s.iter(), &FitOptions::default()).unwrap()
            });
        });
        let plateau = FitOptions {
            right_fit: RightFitMode::Plateau,
            ..FitOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("plateau", n), &samples, |b, s| {
            b.iter(|| PiecewiseRoofline::fit("bench".into(), s.iter(), &plateau).unwrap());
        });
    }
    group.finish();
}

fn bench_right_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("right_fit");
    group.sample_size(10);
    for k in [256usize, 1_024, 4_096] {
        let front = jittered_front(k, 17);
        group.bench_with_input(BenchmarkId::new("front_dp", k), &front, |b, f| {
            b.iter(|| fit_right_front(std::hint::black_box(f), None));
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let samples = synthetic_samples(5_000, 13);
    let roofline =
        PiecewiseRoofline::fit("bench".into(), samples.iter(), &FitOptions::default()).unwrap();
    c.bench_function("roofline_estimate", |b| {
        let mut x = 0.01;
        b.iter(|| {
            x = if x > 90.0 { 0.01 } else { x * 1.07 };
            std::hint::black_box(roofline.estimate(x))
        });
    });
}

fn bench_batch_estimate(c: &mut Criterion) {
    let train = synthetic_samples(5_000, 13);
    let roofline =
        PiecewiseRoofline::fit("bench".into(), train.iter(), &FitOptions::default()).unwrap();
    let probes: SampleSet = synthetic_samples(10_000, 19).into_iter().collect();
    let column = probes.column(&MetricId::new("bench")).unwrap();
    let mut group = c.benchmark_group("batch_estimate");
    group.sample_size(20);
    group.bench_function("per_sample", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in column.intensities() {
                acc += roofline.estimate(std::hint::black_box(x));
            }
            acc
        });
    });
    group.bench_function("estimate_column", |b| {
        b.iter(|| roofline.estimate_column(std::hint::black_box(column)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_geometry,
    bench_roofline_fit,
    bench_right_fit,
    bench_estimate,
    bench_batch_estimate
);

// --- fast-vs-reference comparison, emitted as BENCH_fitting.json -----------

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn time_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Asserts the fast fit matches the reference on `front`: equal plateau
/// and tail, fit cost within 1e-9 relative. Panics on violation (this is
/// the invariant CI smoke mode checks).
fn assert_fits_agree(shape: &str, k: usize, front: &[Point]) {
    let fast = fit_right_front(front, None);
    let slow = reference::fit_right(front, None);
    assert_eq!(
        fast.plateau(),
        slow.plateau(),
        "{shape}/{k}: plateau mismatch"
    );
    assert_eq!(fast.tail(), slow.tail(), "{shape}/{k}: tail mismatch");
    let (a, b) = (fast.fit_error(), slow.fit_error());
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
        "{shape}/{k}: fit cost diverged: fast {a} vs reference {b}"
    );
}

#[derive(serde::Serialize)]
struct BenchSummary {
    right_fit: Vec<FitCase>,
}

#[derive(serde::Serialize)]
struct FitCase {
    shape: &'static str,
    k: usize,
    fast_ms: f64,
    reference_ms: Option<f64>,
    speedup: Option<f64>,
}

fn fit_comparison() -> Vec<FitCase> {
    let mut cases = Vec::new();
    for &(shape, make) in &[
        ("jittered", jittered_front as fn(usize, u64) -> Vec<Point>),
        ("block_convex", |k, _| block_convex_front(k, 64)),
    ] {
        for &k in &[256usize, 1_024, 4_096] {
            let front = make(k, 17);
            // The reference is O(k^3)-ish; skip it at the largest size.
            let run_reference = k <= 1_024;
            if run_reference {
                assert_fits_agree(shape, k, &front);
            }
            let fast_ms = time_ms(5, || fit_right_front(&front, None));
            let reference_ms =
                run_reference.then(|| time_ms(3, || reference::fit_right(&front, None)));
            let speedup = reference_ms.map(|r| r / fast_ms);
            println!(
                "right_fit {shape}/{k}: fast {fast_ms:.3} ms, reference {}, speedup {}",
                reference_ms.map_or("skipped".into(), |r| format!("{r:.3} ms")),
                speedup.map_or("-".into(), |s| format!("{s:.1}x")),
            );
            cases.push(FitCase {
                shape,
                k,
                fast_ms,
                reference_ms,
                speedup,
            });
        }
    }
    cases
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
        || std::env::var_os("SPIRE_BENCH_SMOKE").is_some_and(|v| v == "1")
}

fn main() {
    if smoke_mode() {
        // Validate the fast-vs-reference invariants on small fronts; no
        // timing, no BENCH_fitting.json (smoke numbers would be noise).
        for k in [64usize, 256] {
            assert_fits_agree("jittered", k, &jittered_front(k, 17));
            assert_fits_agree("block_convex", k, &block_convex_front(k, 16));
        }
        println!("bench right_fit invariants ... ok (smoke)");
    } else {
        let summary = BenchSummary {
            right_fit: fit_comparison(),
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fitting.json");
        spire_core::write_atomic(
            std::path::Path::new(path),
            &serde_json::to_string_pretty(&summary).unwrap(),
        )
        .unwrap();
        println!("wrote {path}");
    }
    benches();
}
