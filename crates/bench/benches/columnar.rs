//! Criterion benchmarks for the columnar sample store: row-API iteration
//! vs contiguous column access, row-API fitting vs column fitting, and
//! serial vs parallel training/estimation.
//!
//! Run `cargo bench --bench columnar` for full measurements, or with
//! `-- --test` for the smoke mode CI uses. Parallel speedups only show
//! on multi-core runners; on a single core the parallel variants verify
//! overhead stays negligible (results are identical either way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_core::{
    FitOptions, MetricId, PiecewiseRoofline, Sample, SampleSet, SpireModel, TrainConfig,
};

fn corpus(metrics: usize, samples_per_metric: usize, seed: u64) -> SampleSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut set = SampleSet::new();
    for m in 0..metrics {
        let name = format!("metric_{m:03}");
        for _ in 0..samples_per_metric {
            let intensity: f64 = rng.gen_range(0.01..50.0);
            let p = (intensity * 0.5).min(3.0) * rng.gen_range(0.3..1.0);
            let t = rng.gen_range(0.5..2.0);
            set.push(Sample::new(name.as_str(), t, p * t, p * t / intensity).unwrap());
        }
    }
    set
}

/// Row-style reduction: materialise every sample, call its accessors.
fn bench_reduce(c: &mut Criterion) {
    let set = corpus(64, 1_000, 3);
    let mut group = c.benchmark_group("columnar_reduce");
    group.bench_function("row_iter", |b| {
        b.iter(|| {
            let set = std::hint::black_box(&set);
            set.iter().map(|s| s.throughput() * s.time()).sum::<f64>()
        });
    });
    group.bench_function("column_slices", |b| {
        b.iter(|| {
            let set = std::hint::black_box(&set);
            set.columns()
                .iter()
                .map(|c| {
                    c.throughputs()
                        .iter()
                        .zip(c.times())
                        .map(|(p, t)| p * t)
                        .sum::<f64>()
                })
                .sum::<f64>()
        });
    });
    group.finish();
}

/// Roofline fitting: generic row API vs the column fast path.
fn bench_fit(c: &mut Criterion) {
    let set = corpus(1, 5_000, 7);
    let metric = MetricId::new("metric_000");
    let column = set.column(&metric).unwrap().clone();
    let rows = set.samples_for(&metric);
    let mut group = c.benchmark_group("columnar_fit");
    group.bench_function("fit_rows", |b| {
        b.iter(|| {
            PiecewiseRoofline::fit(
                metric.clone(),
                std::hint::black_box(rows.iter()),
                &FitOptions::default(),
            )
        });
    });
    group.bench_function("fit_column", |b| {
        b.iter(|| {
            PiecewiseRoofline::fit_column(std::hint::black_box(&column), &FitOptions::default())
        });
    });
    group.finish();
}

/// Serial vs parallel ensemble training and estimation (identical
/// results; the parallel fan-out is a pure throughput knob).
fn bench_parallel(c: &mut Criterion) {
    let train = corpus(64, 500, 5);
    let workload = corpus(64, 40, 9);
    let mut group = c.benchmark_group("columnar_parallel");
    group.sample_size(10);
    for threads in [1usize, 0] {
        let tag = if threads == 1 { "serial" } else { "auto" };
        group.bench_with_input(BenchmarkId::new("train", tag), &threads, |b, &threads| {
            let config = TrainConfig {
                threads,
                ..TrainConfig::default()
            };
            b.iter(|| SpireModel::train(std::hint::black_box(&train), config.clone()).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("estimate", tag),
            &threads,
            |b, &threads| {
                let config = TrainConfig {
                    threads,
                    ..TrainConfig::default()
                };
                let model = SpireModel::train(&train, config).unwrap();
                b.iter(|| model.estimate(std::hint::black_box(&workload)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduce, bench_fit, bench_parallel);
criterion_main!(benches);
