//! Criterion benchmarks for the baselines and the predictor substrate:
//! ridge regression, SGBRT training, and branch-predictor throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_baselines::{Gbrt, GbrtConfig, RegressionBaseline};
use spire_core::{Sample, SampleSet};
use spire_sim::predictor::{BimodalPredictor, BranchPredictor, GsharePredictor};

fn sample_corpus(metrics: usize, rows: usize) -> SampleSet {
    let mut rng = SmallRng::seed_from_u64(17);
    let mut set = SampleSet::new();
    for m in 0..metrics {
        let name = format!("metric_{m}");
        for _ in 0..rows {
            let rate: f64 = rng.gen_range(0.001..10.0);
            let t = 1000.0;
            let w = rng.gen_range(500.0..4000.0);
            set.push(Sample::new(name.as_str(), t, w, rate * t).unwrap());
        }
    }
    set
}

fn bench_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("regression_baseline");
    group.sample_size(10);
    for metrics in [16usize, 64] {
        let set = sample_corpus(metrics, 200);
        group.bench_with_input(BenchmarkId::from_parameter(metrics), &set, |b, set| {
            b.iter(|| RegressionBaseline::train(std::hint::black_box(set), 1.0).unwrap());
        });
    }
    group.finish();
}

fn bench_gbrt(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(23);
    let x: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..16).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - r[3] + r[7]).collect();
    let mut group = c.benchmark_group("gbrt_fit");
    group.sample_size(10);
    for rounds in [20usize, 100] {
        let cfg = GbrtConfig {
            rounds,
            ..GbrtConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &cfg, |b, cfg| {
            b.iter(|| Gbrt::fit(std::hint::black_box(&x), &y, cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(29);
    let trace: Vec<(u64, bool)> = (0..10_000)
        .map(|_| (0x1000 + rng.gen_range(0..256u64) * 4, rng.gen_bool(0.7)))
        .collect();
    let mut group = c.benchmark_group("branch_predictors");
    group.bench_function("bimodal_12", |b| {
        b.iter(|| {
            let mut p = BimodalPredictor::new(12);
            trace
                .iter()
                .filter(|&&(pc, t)| p.mispredicts(pc, t))
                .count()
        });
    });
    group.bench_function("gshare_12_8", |b| {
        b.iter(|| {
            let mut p = GsharePredictor::new(12, 8);
            trace
                .iter()
                .filter(|&&(pc, t)| p.mispredicts(pc, t))
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_regression, bench_gbrt, bench_predictors);
criterion_main!(benches);
