//! Criterion benchmarks for ensemble-level training and estimation:
//! scaling with the number of metrics and samples per metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spire_core::{Sample, SampleSet, SpireModel, TrainConfig};

fn corpus(metrics: usize, samples_per_metric: usize, seed: u64) -> SampleSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut set = SampleSet::new();
    for m in 0..metrics {
        let name = format!("metric_{m}");
        for _ in 0..samples_per_metric {
            let intensity: f64 = rng.gen_range(0.01..50.0);
            let p = (intensity * 0.5).min(3.0) * rng.gen_range(0.3..1.0);
            let t = rng.gen_range(0.5..2.0);
            set.push(Sample::new(name.as_str(), t, p * t, p * t / intensity).unwrap());
        }
    }
    set
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_train");
    group.sample_size(10);
    for (metrics, per) in [(16usize, 200usize), (64, 200), (64, 1_000)] {
        let set = corpus(metrics, per, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{metrics}m_x_{per}s")),
            &set,
            |b, set| {
                b.iter(|| SpireModel::train(std::hint::black_box(set), TrainConfig::default()));
            },
        );
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let train = corpus(64, 500, 5);
    let model = SpireModel::train(&train, TrainConfig::default()).unwrap();
    let workload = corpus(64, 20, 9);
    c.bench_function("ensemble_estimate_64m_20s", |b| {
        b.iter(|| model.estimate(std::hint::black_box(&workload)).unwrap());
    });
}

criterion_group!(benches, bench_train, bench_estimate);
criterion_main!(benches);
