//! Property tests over the simulator's counter semantics: for random
//! instruction streams, the PMU counts must satisfy the identities a
//! real PMU guarantees. TMA and SPIRE both lean on these identities, so
//! they are the simulator's contract.

use proptest::prelude::*;
use spire_sim::{Core, CoreConfig, DecodeSource, Event, Instr, InstrClass, MemLevel, VecWidth};

/// Strategy: one random instruction.
fn instr() -> impl Strategy<Value = Instr> {
    let class = prop_oneof![
        4 => Just(InstrClass::IntAlu),
        1 => Just(InstrClass::IntMul),
        1 => Just(InstrClass::IntDiv),
        1 => Just(InstrClass::FpAdd),
        1 => Just(InstrClass::FpMul),
        1 => Just(InstrClass::FpDiv),
        1 => Just(InstrClass::Vec(VecWidth::W256)),
        1 => Just(InstrClass::Vec(VecWidth::W512)),
        2 => (prop_oneof![
                Just(MemLevel::L1), Just(MemLevel::L2),
                Just(MemLevel::L3), Just(MemLevel::Dram)
            ], any::<bool>())
            .prop_map(|(level, locked)| InstrClass::Load { level, locked }),
        1 => Just(InstrClass::Store),
        2 => any::<bool>().prop_map(|m| InstrClass::Branch { mispredicted: m }),
    ];
    (
        class,
        prop_oneof![
            Just(DecodeSource::Dsb),
            Just(DecodeSource::Mite),
            Just(DecodeSource::Ms)
        ],
        0u32..8,
        prop::bool::weighted(0.01),
    )
        .prop_map(|(class, decode, dep, icache_miss)| Instr {
            class,
            uops: if decode == DecodeSource::Ms { 4 } else { 1 },
            decode,
            dep_distance: dep,
            icache_miss,
        })
}

fn run(instrs: Vec<Instr>) -> (Core, u64) {
    let mut core = Core::new(CoreConfig::skylake_server());
    let n = instrs.len() as u64;
    let mut stream = instrs.into_iter();
    core.run(&mut stream, 10_000_000);
    (core, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supplied instruction retires exactly once, and the core
    /// drains.
    #[test]
    fn all_instructions_retire(instrs in prop::collection::vec(instr(), 1..400)) {
        let (core, n) = run(instrs);
        prop_assert!(core.is_drained());
        prop_assert_eq!(core.counters().get(Event::InstRetiredAny), n);
    }

    /// µop conservation: delivered = issued (minus wrong-path waste) =
    /// executed = retired.
    #[test]
    fn uop_conservation(instrs in prop::collection::vec(instr(), 1..400)) {
        let (core, _) = run(instrs.clone());
        let c = core.counters();
        let delivered = c.get(Event::IdqDsbUops)
            + c.get(Event::IdqMiteUops)
            + c.get(Event::IdqMsUops);
        let retired = c.get(Event::UopsRetiredRetireSlots);
        let executed = c.get(Event::UopsExecutedThread);
        prop_assert_eq!(delivered, retired, "delivered µops must all retire");
        prop_assert_eq!(executed, retired, "executed µops must all retire");
        // Issued includes modeled wrong-path waste, so it can only exceed.
        prop_assert!(c.get(Event::UopsIssuedAny) >= retired);
    }

    /// Per-instruction-class retirement counters add up.
    #[test]
    fn class_counters_add_up(instrs in prop::collection::vec(instr(), 1..400)) {
        let loads = instrs.iter().filter(|i| i.is_load()).count() as u64;
        let stores = instrs
            .iter()
            .filter(|i| matches!(i.class, InstrClass::Store))
            .count() as u64;
        let branches = instrs.iter().filter(|i| i.is_branch()).count() as u64;
        let mispredicts = instrs
            .iter()
            .filter(|i| matches!(i.class, InstrClass::Branch { mispredicted: true }))
            .count() as u64;
        let locks = instrs
            .iter()
            .filter(|i| matches!(i.class, InstrClass::Load { locked: true, .. }))
            .count() as u64;
        let dram = instrs
            .iter()
            .filter(|i| matches!(i.class, InstrClass::Load { level: MemLevel::Dram, .. }))
            .count() as u64;
        let (core, _) = run(instrs);
        let c = core.counters();
        prop_assert_eq!(c.get(Event::MemInstRetiredAllLoads), loads);
        prop_assert_eq!(c.get(Event::MemInstRetiredAllStores), stores);
        prop_assert_eq!(c.get(Event::BrInstRetiredAllBranches), branches);
        prop_assert_eq!(c.get(Event::BrMispRetiredAllBranches), mispredicts);
        prop_assert_eq!(c.get(Event::MemInstRetiredLockLoads), locks);
        prop_assert_eq!(c.get(Event::LongestLatCacheMiss), dram);
        let hits = c.get(Event::MemLoadRetiredL1Hit)
            + c.get(Event::MemLoadRetiredL2Hit)
            + c.get(Event::MemLoadRetiredL3Hit)
            + c.get(Event::MemLoadRetiredDramHit);
        prop_assert_eq!(hits, loads);
    }

    /// Cycle-gated counters never exceed the cycle count.
    #[test]
    fn cycle_counters_bounded_by_cycles(instrs in prop::collection::vec(instr(), 1..400)) {
        let (core, _) = run(instrs);
        let c = core.counters();
        let cycles = c.get(Event::CpuClkUnhaltedThread);
        prop_assert_eq!(cycles, core.cycle());
        for e in [
            Event::IdqDsbCycles,
            Event::IdqMiteCycles,
            Event::IdqMsDsbCycles,
            Event::IdqAllDsbCyclesAnyUops,
            Event::CycleActivityStallsTotal,
            Event::CycleActivityStallsMemAny,
            Event::CycleActivityCyclesMemAny,
            Event::CycleActivityCyclesL1dMiss,
            Event::CycleActivityStallsL1dMiss,
            Event::UopsRetiredStallCycles,
            Event::UopsIssuedStallCycles,
            Event::UopsExecutedStallCycles,
            Event::UopsExecutedCoreCyclesGe1,
            Event::UopsExecutedCyclesGe1UopExec,
            Event::ExeActivityExeBound0Ports,
            Event::ExeActivity1PortsUtil,
            Event::ExeActivity2PortsUtil,
            Event::ResourceStallsAny,
            Event::IdqUopsNotDeliveredCyclesFeWasOk,
            Event::IdqUopsNotDeliveredCyclesLe1,
            Event::IdqUopsNotDeliveredCyclesLe2,
            Event::IdqUopsNotDeliveredCyclesLe3,
            Event::ArithDividerActive,
            Event::IntMiscRecoveryCycles,
        ] {
            prop_assert!(
                c.get(e) <= cycles,
                "{} = {} exceeds cycles {}",
                e.name(),
                c.get(e),
                cycles
            );
        }
    }

    /// Stall-cycle hierarchies: full execution stalls split exactly into
    /// memory-outstanding and no-memory (0-port) stalls; the `le_k`
    /// delivery counters are monotone in `k`.
    #[test]
    fn stall_hierarchies_hold(instrs in prop::collection::vec(instr(), 1..400)) {
        let (core, _) = run(instrs);
        let c = core.counters();
        prop_assert_eq!(
            c.get(Event::CycleActivityStallsTotal),
            c.get(Event::CycleActivityStallsMemAny) + c.get(Event::ExeActivityExeBound0Ports)
        );
        prop_assert!(
            c.get(Event::IdqUopsNotDeliveredCyclesLe1)
                <= c.get(Event::IdqUopsNotDeliveredCyclesLe2)
        );
        prop_assert!(
            c.get(Event::IdqUopsNotDeliveredCyclesLe2)
                <= c.get(Event::IdqUopsNotDeliveredCyclesLe3)
        );
        // FE bubble tiers are monotone too.
        prop_assert!(
            c.get(Event::FrontendRetiredLatencyGe2BubblesGe3)
                <= c.get(Event::FrontendRetiredLatencyGe2BubblesGe2)
        );
        prop_assert!(
            c.get(Event::FrontendRetiredLatencyGe2BubblesGe2)
                <= c.get(Event::FrontendRetiredLatencyGe2BubblesGe1)
        );
        // Recovery cycles are identical across the `any` variant in a
        // single-thread model.
        prop_assert_eq!(
            c.get(Event::IntMiscRecoveryCycles),
            c.get(Event::IntMiscRecoveryCyclesAny)
        );
    }

    /// Determinism: the same stream and config produce bit-identical
    /// counter files.
    #[test]
    fn simulation_is_deterministic(instrs in prop::collection::vec(instr(), 1..200)) {
        let (a, _) = run(instrs.clone());
        let (b, _) = run(instrs);
        prop_assert_eq!(a.counters(), b.counters());
        prop_assert_eq!(a.cycle(), b.cycle());
    }

    /// Slicing a run into pieces changes nothing: counters depend on the
    /// stream, not on how `run` was chunked.
    #[test]
    fn run_slicing_is_transparent(
        instrs in prop::collection::vec(instr(), 1..200),
        slice in 1u64..500,
    ) {
        let (whole, _) = run(instrs.clone());
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = instrs.into_iter();
        while !core.is_drained() {
            core.run(&mut stream, slice);
        }
        prop_assert_eq!(whole.counters(), core.counters());
        prop_assert_eq!(whole.cycle(), core.cycle());
    }
}
