//! The machine catalog: named, validated [`CoreConfig`] presets plus
//! loading of custom machines from JSON.
//!
//! SPIRE's portability story is "retrain per machine", which needs more
//! than one machine to retrain on. The catalog ships four presets spanning
//! the design space the transfer study exercises:
//!
//! * **skylake-server** — the default Skylake-server-class core the rest
//!   of the workspace assumes (the paper's Xeon Gold 6126 stand-in);
//! * **little** — a narrow 2-wide core with small windows and slow DRAM,
//!   the efficiency-core end of a big.LITTLE pair;
//! * **edge** — a mid-width core starved of memory-level parallelism
//!   (2 MSHRs, shallow DRAM queue, 400-cycle DRAM), like an embedded SoC
//!   behind a low-power memory controller;
//! * **hpc** — an 8-wide, deep-window, high-bandwidth core in the spirit
//!   of server parts tuned for vectorized throughput.
//!
//! Every machine derives a [`spire_core::MachineSpec`]: its name, an
//! FNV-1a fingerprint of the canonical config JSON, and peak descriptors
//! ([`spire_core::MachinePeaks`]) — peak issue throughput and per-level
//! bandwidth ceilings estimated Little's-law style (outstanding misses
//! divided by latency). Those peaks are what the hardware-agnostic
//! normalization divides by.

use serde::{Deserialize, Serialize};
use std::fmt;

use spire_core::{config_fingerprint, MachinePeaks, MachineSpec};

use crate::config::{BackendConfig, CoreConfig, FrontendConfig, InvalidConfigError, MemoryConfig};

/// The catalog name of the default machine.
pub const DEFAULT_MACHINE: &str = "skylake-server";

/// Why a custom machine file was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineLoadError {
    /// The text did not parse as a machine file
    /// (`{"name", "description", "config"}`).
    Parse {
        /// The parser's explanation.
        reason: String,
    },
    /// The file parsed but its core configuration fails
    /// [`CoreConfig::validate`].
    Invalid(InvalidConfigError),
    /// The machine's name is empty or whitespace.
    UnnamedMachine,
}

impl fmt::Display for MachineLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineLoadError::Parse { reason } => {
                write!(f, "machine file does not parse: {reason}")
            }
            MachineLoadError::Invalid(e) => write!(f, "machine file rejected: {e}"),
            MachineLoadError::UnnamedMachine => {
                write!(f, "machine file rejected: name must be non-empty")
            }
        }
    }
}

impl std::error::Error for MachineLoadError {}

/// A named machine: a validated [`CoreConfig`] plus the human-facing
/// description shown by `spire machines`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Catalog name (or custom file stem), e.g. `"skylake-server"`.
    pub name: String,
    /// One-line description of what the machine models.
    pub description: String,
    /// The simulated core's full configuration.
    pub config: CoreConfig,
}

impl Machine {
    /// Parses a machine from its JSON form and validates the embedded
    /// core configuration.
    ///
    /// # Errors
    ///
    /// [`MachineLoadError::Parse`] for malformed JSON,
    /// [`MachineLoadError::UnnamedMachine`] for a blank name, and
    /// [`MachineLoadError::Invalid`] when the configuration violates a
    /// structural constraint — a typed error in every case, never a panic.
    pub fn from_json(text: &str) -> Result<Machine, MachineLoadError> {
        let machine: Machine = serde_json::from_str(text).map_err(|e| MachineLoadError::Parse {
            reason: e.to_string(),
        })?;
        if machine.name.trim().is_empty() {
            return Err(MachineLoadError::UnnamedMachine);
        }
        machine
            .config
            .validate()
            .map_err(MachineLoadError::Invalid)?;
        Ok(machine)
    }

    /// Serializes the machine to the JSON form [`Machine::from_json`]
    /// reads — `spire machines export` writes exactly this.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("machines always serialize")
    }

    /// The canonical configuration JSON the fingerprint covers: compact
    /// `serde_json` output of the [`CoreConfig`] (field order is fixed by
    /// the struct, so equal configs always produce equal bytes).
    pub fn canonical_config_json(&self) -> String {
        serde_json::to_string(&self.config).expect("configs always serialize")
    }

    /// Derived peak descriptors.
    ///
    /// Peak throughput is the allocation width (µops per cycle — the IPC
    /// ceiling). Per-level bandwidth ceilings are Little's-law estimates
    /// of misses serviceable per cycle: outstanding-miss capacity divided
    /// by the level's latency, with DRAM additionally capped by the DRAM
    /// queue depth.
    pub fn peaks(&self) -> MachinePeaks {
        let m = &self.config.memory;
        let mshrs = self.config.memory.mshrs as f64;
        let bandwidth = [
            ("l1".to_owned(), mshrs / m.l1_latency as f64),
            ("l2".to_owned(), mshrs / m.l2_latency as f64),
            ("l3".to_owned(), mshrs / m.l3_latency as f64),
            (
                "dram".to_owned(),
                mshrs.min(m.dram_queue as f64) / m.dram_latency as f64,
            ),
        ]
        .into_iter()
        .collect();
        MachinePeaks {
            throughput: self.config.backend.issue_width as f64,
            bandwidth,
        }
    }

    /// The machine's identity spec: name, config fingerprint, and peaks.
    /// This is what datasets, snapshots, and serve responses carry.
    pub fn spec(&self) -> MachineSpec {
        MachineSpec {
            name: self.name.clone(),
            fingerprint: config_fingerprint(&self.canonical_config_json()),
            peaks: self.peaks(),
            normalized: false,
        }
    }
}

/// The built-in machine catalog, ordered with the default machine first.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCatalog {
    machines: Vec<Machine>,
}

impl MachineCatalog {
    /// The four built-in presets; see the module docs for the rationale.
    pub fn builtin() -> Self {
        MachineCatalog {
            machines: vec![
                Machine {
                    name: DEFAULT_MACHINE.to_owned(),
                    description: "Skylake-server-class default (Xeon Gold 6126 stand-in): \
                                  4-wide, 224-entry ROB, DSB front-end, 10 MSHRs"
                        .to_owned(),
                    config: CoreConfig::skylake_server(),
                },
                Machine {
                    name: "little".to_owned(),
                    description: "narrow efficiency core: 2-wide, 64-entry ROB, \
                                  MITE-starved front-end, slow DRAM"
                        .to_owned(),
                    config: little(),
                },
                Machine {
                    name: "edge".to_owned(),
                    description: "edge SoC: 3-wide but memory-starved — 2 MSHRs, shallow \
                                  DRAM queue, 400-cycle DRAM"
                        .to_owned(),
                    config: edge(),
                },
                Machine {
                    name: "hpc".to_owned(),
                    description: "wide HPC core: 8-wide, 384-entry ROB, 20 MSHRs, \
                                  fast high-bandwidth memory"
                        .to_owned(),
                    config: hpc(),
                },
            ],
        }
    }

    /// All machines, default first.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Looks a machine up by its catalog name.
    pub fn get(&self, name: &str) -> Option<&Machine> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// The default machine ([`DEFAULT_MACHINE`]).
    pub fn default_machine(&self) -> &Machine {
        &self.machines[0]
    }

    /// The catalog's machine names, in catalog order.
    pub fn names(&self) -> Vec<&str> {
        self.machines.iter().map(|m| m.name.as_str()).collect()
    }
}

/// The `little` preset: the 2-wide efficiency core the transfer study's
/// original hand-rolled variant modelled, now owned by the catalog.
fn little() -> CoreConfig {
    CoreConfig {
        frontend: FrontendConfig {
            dsb_width: 3,
            mite_width: 1,
            ..FrontendConfig::default()
        },
        backend: BackendConfig {
            issue_width: 2,
            retire_width: 2,
            rob_size: 64,
            rs_size: 32,
            ..BackendConfig::default()
        },
        memory: MemoryConfig {
            dram_latency: 320,
            mshrs: 4,
            ..MemoryConfig::default()
        },
    }
}

/// The `edge` preset: mid-width compute, starved memory system.
fn edge() -> CoreConfig {
    CoreConfig {
        frontend: FrontendConfig {
            dsb_width: 4,
            mite_width: 2,
            ..FrontendConfig::default()
        },
        backend: BackendConfig {
            issue_width: 3,
            retire_width: 3,
            rob_size: 128,
            rs_size: 64,
            ..BackendConfig::default()
        },
        memory: MemoryConfig {
            l2_latency: 18,
            l3_latency: 60,
            dram_latency: 400,
            mshrs: 2,
            dram_queue: 4,
            store_buffer: 24,
            ..MemoryConfig::default()
        },
    }
}

/// The `hpc` preset: wide issue, deep windows, high-bandwidth memory.
fn hpc() -> CoreConfig {
    CoreConfig {
        frontend: FrontendConfig {
            dsb_width: 8,
            mite_width: 4,
            idq_capacity: 144,
            ..FrontendConfig::default()
        },
        backend: BackendConfig {
            issue_width: 8,
            retire_width: 8,
            rob_size: 384,
            rs_size: 160,
            ports: 12,
            ..BackendConfig::default()
        },
        memory: MemoryConfig {
            l3_latency: 40,
            dram_latency: 160,
            mshrs: 20,
            dram_queue: 32,
            store_buffer: 72,
            ..MemoryConfig::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates() {
        for machine in MachineCatalog::builtin().machines() {
            machine
                .config
                .validate()
                .unwrap_or_else(|e| panic!("preset `{}` invalid: {e}", machine.name));
        }
    }

    #[test]
    fn catalog_has_at_least_four_machines_default_first() {
        let catalog = MachineCatalog::builtin();
        assert!(catalog.machines().len() >= 4);
        assert_eq!(catalog.default_machine().name, DEFAULT_MACHINE);
        assert_eq!(
            catalog.default_machine().config,
            CoreConfig::skylake_server()
        );
        assert!(catalog.get("little").is_some());
        assert!(catalog.get("edge").is_some());
        assert!(catalog.get("hpc").is_some());
        assert!(catalog.get("no-such-machine").is_none());
    }

    #[test]
    fn preset_serde_round_trip_is_bit_identical() {
        for machine in MachineCatalog::builtin().machines() {
            let json = machine.to_json();
            let back = Machine::from_json(&json)
                .unwrap_or_else(|e| panic!("preset `{}` reload: {e}", machine.name));
            assert_eq!(&back, machine, "preset `{}` round trip", machine.name);
            // And re-serializing reproduces the exact bytes.
            assert_eq!(back.to_json(), json, "preset `{}` bytes", machine.name);
        }
    }

    #[test]
    fn fingerprints_distinguish_presets_and_are_stable() {
        let catalog = MachineCatalog::builtin();
        let mut fingerprints: Vec<String> = catalog
            .machines()
            .iter()
            .map(|m| m.spec().fingerprint)
            .collect();
        assert!(fingerprints.iter().all(|f| f.len() == 16));
        fingerprints.sort();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), catalog.machines().len());
        // Fingerprint is a pure function of the config.
        assert_eq!(
            catalog.default_machine().spec().fingerprint,
            catalog.default_machine().spec().fingerprint
        );
    }

    #[test]
    fn peaks_follow_the_configs() {
        let catalog = MachineCatalog::builtin();
        let default = catalog.default_machine().peaks();
        assert_eq!(default.throughput, 4.0);
        assert_eq!(default.bandwidth["l1"], 10.0 / 4.0);
        assert_eq!(default.bandwidth["dram"], 10.0 / 200.0);
        let hpc = catalog.get("hpc").unwrap().peaks();
        let edge = catalog.get("edge").unwrap().peaks();
        assert!(hpc.throughput > default.throughput);
        assert!(edge.bandwidth["dram"] < default.bandwidth["dram"]);
        // DRAM bandwidth is queue-capped when the queue is the narrower
        // resource.
        assert_eq!(edge.bandwidth["dram"], 2.0f64.min(4.0) / 400.0);
    }

    #[test]
    fn invalid_custom_machine_is_a_typed_error_not_a_panic() {
        // Malformed JSON.
        let err = Machine::from_json("{not json").unwrap_err();
        assert!(matches!(err, MachineLoadError::Parse { .. }));
        assert!(err.to_string().contains("parse"));

        // Parses but violates a config invariant (zero issue width).
        let mut machine = MachineCatalog::builtin().default_machine().clone();
        machine.config.backend.issue_width = 0;
        let json = machine.to_json();
        let err = Machine::from_json(&json).unwrap_err();
        match &err {
            MachineLoadError::Invalid(e) => assert_eq!(e.field, "backend.issue_width"),
            other => panic!("expected Invalid, got {other:?}"),
        }

        // Blank name.
        let mut machine = MachineCatalog::builtin().default_machine().clone();
        machine.name = "  ".to_owned();
        assert_eq!(
            Machine::from_json(&machine.to_json()).unwrap_err(),
            MachineLoadError::UnnamedMachine
        );
    }

    #[test]
    fn spec_is_raw_units_and_tags_render() {
        let spec = MachineCatalog::builtin().get("little").unwrap().spec();
        assert!(!spec.normalized);
        assert_eq!(spec.name, "little");
        let tag = spec.tag();
        assert!(tag.starts_with("little ["));
        assert!(tag.ends_with(']'));
    }
}
