//! The simulated PMU's event catalog.
//!
//! Events are named after their Intel Skylake-server counterparts so that
//! the rest of the workspace (catalog, TMA formulas, experiment tables) can
//! use the same identifiers the paper uses. The set covers every metric in
//! the paper's Table III plus the fixed work/time counters and the support
//! events needed by Top-Down Analysis.
//!
//! The real Xeon Gold 6126 exposes several hundred events (the paper
//! samples 424); this catalog models the ~60 that the paper's analysis and
//! tables actually exercise. The reduction is documented in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

macro_rules! events {
    ($(#[$enum_meta:meta])* $vis:vis enum $name:ident {
        $($(#[$meta:meta])* $variant:ident => $ev_name:literal,)*
    }) => {
        $(#[$enum_meta])*
        $vis enum $name {
            $($(#[$meta])* $variant,)*
        }

        impl $name {
            /// Every event, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// The perf-style event name (e.g. `"idq.dsb_uops"`).
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $ev_name,)*
                }
            }

            /// Parses a perf-style event name.
            pub fn from_name(name: &str) -> Option<$name> {
                match name {
                    $($ev_name => Some($name::$variant),)*
                    _ => None,
                }
            }

            /// Dense index of the event (for counter-file storage).
            pub const fn index(self) -> usize {
                self as usize
            }

            /// Number of defined events.
            pub const COUNT: usize = { 0 $(+ { let _ = $name::$variant; 1 })* };
        }
    };
}

events! {
    /// A hardware event countable by the simulated PMU.
    ///
    /// ```
    /// use spire_sim::Event;
    ///
    /// assert_eq!(Event::IdqDsbUops.name(), "idq.dsb_uops");
    /// assert_eq!(Event::from_name("idq.dsb_uops"), Some(Event::IdqDsbUops));
    /// ```
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
    #[repr(usize)]
    pub enum Event {
        // --- Fixed counters (work and time). ------------------------------
        /// Retired instructions (the paper's work quantity `W`).
        InstRetiredAny => "inst_retired.any",
        /// Unhalted core cycles (the paper's time quantity `T`).
        CpuClkUnhaltedThread => "cpu_clk_unhalted.thread",

        // --- Front-end: fetch bubbles (FE.*). ------------------------------
        /// Retired instructions that followed a front-end bubble of at
        /// least 2 cycles.
        FrontendRetiredLatencyGe2BubblesGe1 => "frontend_retired.latency_ge_2_bubbles_ge_1",
        /// As above, after a longer bubble.
        FrontendRetiredLatencyGe2BubblesGe2 => "frontend_retired.latency_ge_2_bubbles_ge_2",
        /// As above, after an even longer bubble.
        FrontendRetiredLatencyGe2BubblesGe3 => "frontend_retired.latency_ge_2_bubbles_ge_3",

        // --- Front-end: decoded stream buffer (DB.*). ----------------------
        /// Cycles in which the DSB delivered at least one µop.
        IdqDsbCycles => "idq.dsb_cycles",
        /// µops delivered by the DSB.
        IdqDsbUops => "idq.dsb_uops",
        /// Retired instructions whose fetch switched out of the DSB.
        FrontendRetiredDsbMiss => "frontend_retired.dsb_miss",
        /// Cycles in which every delivered µop came from the DSB.
        IdqAllDsbCyclesAnyUops => "idq.all_dsb_cycles_any_uops",

        // --- Front-end: microcode sequencer (MS.*). ------------------------
        /// Switches into the microcode sequencer.
        IdqMsSwitches => "idq.ms_switches",
        /// Cycles delivering µops while the MS is active.
        IdqMsDsbCycles => "idq.ms_dsb_cycles",

        // --- Front-end: delivery shortfall (DQ.*). --------------------------
        /// Cycles delivering at most 1 µop while the back-end could accept.
        IdqUopsNotDeliveredCyclesLe1 => "idq_uops_not_delivered.cycles_le_1_uop_deliv.core",
        /// Cycles delivering at most 2 µops while the back-end could accept.
        IdqUopsNotDeliveredCyclesLe2 => "idq_uops_not_delivered.cycles_le_2_uop_deliv.core",
        /// Cycles delivering at most 3 µops while the back-end could accept.
        IdqUopsNotDeliveredCyclesLe3 => "idq_uops_not_delivered.cycles_le_3_uop_deliv.core",
        /// Allocation slots the front-end failed to fill (TMA's front-end
        /// bound numerator).
        IdqUopsNotDeliveredCore => "idq_uops_not_delivered.core",
        /// Cycles where the front-end delivered but the back-end stalled.
        IdqUopsNotDeliveredCyclesFeWasOk => "idq_uops_not_delivered.cycles_fe_was_ok",

        // --- Bad speculation (BP.*). ----------------------------------------
        /// Retired mispredicted branches.
        BrMispRetiredAllBranches => "br_misp_retired.all_branches",
        /// Cycles the allocator spent recovering from a machine clear or
        /// branch misprediction.
        IntMiscRecoveryCycles => "int_misc.recovery_cycles",
        /// As above, counted for any thread of the core (equal to
        /// [`Event::IntMiscRecoveryCycles`] in this single-thread model).
        IntMiscRecoveryCyclesAny => "int_misc.recovery_cycles_any",

        // --- Memory (M, L1.*, L3, LK). ---------------------------------------
        /// Cycles with at least one in-flight memory load.
        CycleActivityCyclesMemAny => "cycle_activity.cycles_mem_any",
        /// Cycles with at least one outstanding L1D miss.
        CycleActivityCyclesL1dMiss => "cycle_activity.cycles_l1d_miss",
        /// Execution-stall cycles with an outstanding L1D miss.
        CycleActivityStallsL1dMiss => "cycle_activity.stalls_l1d_miss",
        /// Sum over cycles of the number of outstanding L1D misses.
        L1dPendMissPendingCycles => "l1d_pend_miss.pending_cycles",
        /// Demand accesses that missed the last-level cache.
        LongestLatCacheMiss => "longest_lat_cache.miss",
        /// Retired locked loads.
        MemInstRetiredLockLoads => "mem_inst_retired.lock_loads",

        // --- Core stalls and utilization (CS.*, C1.*, VW). -------------------
        /// Cycles in which no µop executed.
        CycleActivityStallsTotal => "cycle_activity.stalls_total",
        /// Cycles in which no µop retired.
        UopsRetiredStallCycles => "uops_retired.stall_cycles",
        /// Cycles in which no µop was issued.
        UopsIssuedStallCycles => "uops_issued.stall_cycles",
        /// Cycles in which no µop executed (executed-side view).
        UopsExecutedStallCycles => "uops_executed.stall_cycles",
        /// Allocation stalls due to back-end resource exhaustion.
        ResourceStallsAny => "resource_stalls.any",
        /// Execution-stall cycles with no outstanding loads (pure core
        /// boundedness).
        ExeActivityExeBound0Ports => "exe_activity.exe_bound_0_ports",
        /// Cycles with at least one µop executed (core view).
        UopsExecutedCoreCyclesGe1 => "uops_executed.core_cycles_ge_1",
        /// Cycles with at least one µop executed (thread view).
        UopsExecutedCyclesGe1UopExec => "uops_executed.cycles_ge_1_uop_exec",
        /// Cycles in which exactly one execution port was used.
        ExeActivity1PortsUtil => "exe_activity.1_ports_util",
        /// Issued µops whose SIMD width differed from the previous vector
        /// µop (256/512-bit transition penalties).
        UopsIssuedVectorWidthMismatch => "uops_issued.vector_width_mismatch",

        // --- Support events (TMA inputs and general accounting). -------------
        /// All issued µops, including the modeled wrong-path waste.
        UopsIssuedAny => "uops_issued.any",
        /// Retirement slots used (TMA's retiring numerator).
        UopsRetiredRetireSlots => "uops_retired.retire_slots",
        /// µops executed.
        UopsExecutedThread => "uops_executed.thread",
        /// µops delivered by the legacy decode pipeline.
        IdqMiteUops => "idq.mite_uops",
        /// µops delivered by the microcode sequencer.
        IdqMsUops => "idq.ms_uops",
        /// Cycles in which the MITE delivered at least one µop.
        IdqMiteCycles => "idq.mite_cycles",
        /// Retired branches.
        BrInstRetiredAllBranches => "br_inst_retired.all_branches",
        /// Retired loads that hit the L1D.
        MemLoadRetiredL1Hit => "mem_load_retired.l1_hit",
        /// Retired loads that hit the L2.
        MemLoadRetiredL2Hit => "mem_load_retired.l2_hit",
        /// Retired loads that hit the L3.
        MemLoadRetiredL3Hit => "mem_load_retired.l3_hit",
        /// Retired loads served from DRAM.
        MemLoadRetiredDramHit => "mem_load_retired.dram_hit",
        /// Demand accesses that reached the last-level cache.
        LongestLatCacheReference => "longest_lat_cache.reference",
        /// Retired load instructions.
        MemInstRetiredAllLoads => "mem_inst_retired.all_loads",
        /// Retired store instructions.
        MemInstRetiredAllStores => "mem_inst_retired.all_stores",
        /// Cycles the divider was busy.
        ArithDividerActive => "arith.divider_active",
        /// Instruction-cache misses.
        IcacheMisses => "icache.misses",
        /// Execution-stall cycles with at least one in-flight load (TMA's
        /// memory-bound numerator).
        CycleActivityStallsMemAny => "cycle_activity.stalls_mem_any",
        /// Allocation/dispatch stalls caused by a full store buffer.
        ResourceStallsSb => "resource_stalls.sb",
        /// Execution-stall cycles while the store buffer is full.
        ExeActivityBoundOnStores => "exe_activity.bound_on_stores",
        /// Cycles in which exactly two execution ports were used.
        ExeActivity2PortsUtil => "exe_activity.2_ports_util",
        /// µops dispatched to port 0.
        UopsDispatchedPort0 => "uops_dispatched_port.port_0",
        /// µops dispatched to port 1.
        UopsDispatchedPort1 => "uops_dispatched_port.port_1",
        /// µops dispatched to port 2.
        UopsDispatchedPort2 => "uops_dispatched_port.port_2",
        /// µops dispatched to port 3.
        UopsDispatchedPort3 => "uops_dispatched_port.port_3",
        /// µops dispatched to port 4.
        UopsDispatchedPort4 => "uops_dispatched_port.port_4",
        /// µops dispatched to port 5.
        UopsDispatchedPort5 => "uops_dispatched_port.port_5",
        /// µops dispatched to port 6.
        UopsDispatchedPort6 => "uops_dispatched_port.port_6",
        /// µops dispatched to port 7.
        UopsDispatchedPort7 => "uops_dispatched_port.port_7",
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A plain array of counts, one slot per [`Event`].
///
/// This is the raw accumulator the pipeline increments every cycle; the
/// [`Pmu`](crate::pmu::Pmu) layers programmable-counter semantics on top.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterFile {
    counts: Vec<u64>,
}

impl Default for CounterFile {
    fn default() -> Self {
        CounterFile {
            counts: vec![0; Event::COUNT],
        }
    }
}

impl CounterFile {
    /// Creates a zeroed counter file.
    pub fn new() -> Self {
        CounterFile::default()
    }

    /// Current count of `event`.
    pub fn get(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }

    /// Adds `n` to `event`.
    #[inline]
    pub fn add(&mut self, event: Event, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Increments `event` by one.
    #[inline]
    pub fn incr(&mut self, event: Event) {
        self.counts[event.index()] += 1;
    }

    /// Resets every count to zero.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Iterates `(event, count)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        Event::ALL.iter().map(move |&e| (e, self.get(e)))
    }

    /// Element-wise difference `self - earlier`, for interval measurement.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any count in `earlier` exceeds the
    /// corresponding count in `self` (counters are monotonic).
    pub fn delta(&self, earlier: &CounterFile) -> CounterFile {
        let counts = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| {
                debug_assert!(a >= b, "counters are monotonic");
                a - b
            })
            .collect();
        CounterFile { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_count_matches_all_len() {
        assert_eq!(Event::ALL.len(), Event::COUNT);
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for &e in Event::ALL {
            assert!(seen.insert(e.name()), "duplicate name {}", e.name());
            assert_eq!(Event::from_name(e.name()), Some(e));
        }
        assert_eq!(Event::from_name("not_an_event"), None);
    }

    #[test]
    fn indexes_are_dense() {
        for (i, &e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn table_iii_events_are_all_present() {
        // Every expanded metric name from the paper's Table III must map to
        // a simulated event.
        let table_iii = [
            "frontend_retired.latency_ge_2_bubbles_ge_1",
            "frontend_retired.latency_ge_2_bubbles_ge_2",
            "frontend_retired.latency_ge_2_bubbles_ge_3",
            "idq.dsb_cycles",
            "idq.dsb_uops",
            "frontend_retired.dsb_miss",
            "idq.all_dsb_cycles_any_uops",
            "idq.ms_switches",
            "idq.ms_dsb_cycles",
            "idq_uops_not_delivered.cycles_le_1_uop_deliv.core",
            "idq_uops_not_delivered.cycles_le_2_uop_deliv.core",
            "idq_uops_not_delivered.cycles_le_3_uop_deliv.core",
            "idq_uops_not_delivered.core",
            "idq_uops_not_delivered.cycles_fe_was_ok",
            "br_misp_retired.all_branches",
            "int_misc.recovery_cycles",
            "int_misc.recovery_cycles_any",
            "cycle_activity.cycles_mem_any",
            "cycle_activity.cycles_l1d_miss",
            "cycle_activity.stalls_l1d_miss",
            "l1d_pend_miss.pending_cycles",
            "longest_lat_cache.miss",
            "mem_inst_retired.lock_loads",
            "cycle_activity.stalls_total",
            "uops_retired.stall_cycles",
            "uops_issued.stall_cycles",
            "uops_executed.stall_cycles",
            "resource_stalls.any",
            "exe_activity.exe_bound_0_ports",
            "uops_executed.core_cycles_ge_1",
            "uops_executed.cycles_ge_1_uop_exec",
            "exe_activity.1_ports_util",
            "uops_issued.vector_width_mismatch",
        ];
        for name in table_iii {
            assert!(Event::from_name(name).is_some(), "missing event {name}");
        }
    }

    #[test]
    fn counter_file_add_get_delta() {
        let mut a = CounterFile::new();
        a.add(Event::InstRetiredAny, 10);
        a.incr(Event::InstRetiredAny);
        assert_eq!(a.get(Event::InstRetiredAny), 11);

        let earlier = {
            let mut c = CounterFile::new();
            c.add(Event::InstRetiredAny, 4);
            c
        };
        let d = a.delta(&earlier);
        assert_eq!(d.get(Event::InstRetiredAny), 7);
        assert_eq!(d.get(Event::IdqDsbUops), 0);
    }

    #[test]
    fn counter_file_reset_zeroes() {
        let mut a = CounterFile::new();
        a.add(Event::IcacheMisses, 5);
        a.reset();
        assert_eq!(a.get(Event::IcacheMisses), 0);
    }

    #[test]
    fn iter_yields_all_events() {
        let c = CounterFile::new();
        assert_eq!(c.iter().count(), Event::COUNT);
    }
}
