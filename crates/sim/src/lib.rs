//! # spire-sim
//!
//! A cycle-level out-of-order CPU core simulator with a performance
//! monitoring unit (PMU), built as the hardware substrate for the SPIRE
//! reproduction. It stands in for the paper's Xeon Gold 6126: SPIRE and
//! the TMA baseline consume nothing but the counter streams this simulator
//! produces.
//!
//! The model is trace-driven and Skylake-server-class:
//!
//! * **front-end** — DSB (µop cache) vs legacy MITE decode vs microcode
//!   sequencer delivery, instruction-cache miss stalls, branch-redirect
//!   bubbles;
//! * **back-end** — 4-wide allocation/retirement, a reorder buffer and
//!   scheduler with realistic capacities, 8 execution ports, an
//!   unpipelined divider, register dependencies via producer distances;
//! * **memory** — four-level hierarchy (L1/L2/L3/DRAM) with MSHR-limited
//!   miss parallelism, a DRAM queue, and serializing locked loads;
//! * **PMU** — ~60 countable events named after their Intel counterparts
//!   (every Table III metric from the paper), with fixed and programmable
//!   counters.
//!
//! ```
//! use spire_sim::{Core, CoreConfig, Event, Instr, MemLevel};
//!
//! let mut core = Core::new(CoreConfig::skylake_server());
//! let mut workload = std::iter::repeat(Instr::load(MemLevel::Dram)).take(1_000);
//! let summary = core.run(&mut workload, 10_000_000);
//! assert_eq!(core.counters().get(Event::LongestLatCacheMiss), 1_000);
//! assert!(summary.ipc() < 0.5); // DRAM-bound
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod core;
mod events;
mod instr;
pub mod machine;
mod pmu;
pub mod predictor;

pub use crate::core::{Core, RunSummary};
pub use config::{BackendConfig, CoreConfig, FrontendConfig, InvalidConfigError, MemoryConfig};
pub use events::{CounterFile, Event};
pub use instr::{DecodeSource, Instr, InstrClass, MemLevel, VecWidth};
pub use machine::{Machine, MachineCatalog, MachineLoadError, DEFAULT_MACHINE};
pub use pmu::{Pmu, PmuError};
