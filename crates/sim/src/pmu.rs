//! The performance-monitoring unit: programmable counter slots over the
//! raw [`CounterFile`].
//!
//! Real PMUs expose hundreds of countable events but only a handful of
//! counter registers (the paper notes often fewer than 10 per core), so
//! software must *program* a subset and multiplex over time to cover more.
//! This module models that constraint: reads are only allowed for the
//! fixed counters (instructions, cycles) and the currently programmed
//! events. The multiplexing scheduler itself lives in `spire-counters`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::events::{CounterFile, Event};

/// Errors returned by PMU programming and reads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmuError {
    /// More events were requested than there are programmable slots.
    TooManyEvents {
        /// Number of events requested.
        requested: usize,
        /// Number of programmable slots available.
        slots: usize,
    },
    /// A read was attempted for an event that is neither fixed nor
    /// currently programmed.
    NotProgrammed {
        /// The unreadable event.
        event: Event,
    },
}

impl fmt::Display for PmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmuError::TooManyEvents { requested, slots } => write!(
                f,
                "cannot program {requested} events into {slots} counter slots"
            ),
            PmuError::NotProgrammed { event } => {
                write!(f, "event `{event}` is not programmed on any counter")
            }
        }
    }
}

impl std::error::Error for PmuError {}

/// A PMU with two fixed counters and a limited number of programmable
/// slots, mirroring Intel's fixed/general-purpose counter split.
///
/// ```
/// use spire_sim::{CounterFile, Event, Pmu};
///
/// # fn main() -> Result<(), spire_sim::PmuError> {
/// let mut pmu = Pmu::new(4);
/// pmu.program(&[Event::IdqDsbUops, Event::LongestLatCacheMiss])?;
///
/// let mut counters = CounterFile::new();
/// counters.add(Event::IdqDsbUops, 42);
/// assert_eq!(pmu.read(&counters, Event::IdqDsbUops)?, 42);
/// // Fixed counters are always readable.
/// assert_eq!(pmu.read(&counters, Event::InstRetiredAny)?, 0);
/// // Unprogrammed events are not.
/// assert!(pmu.read(&counters, Event::IcacheMisses).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pmu {
    slots: usize,
    programmed: Vec<Event>,
}

impl Pmu {
    /// Events always readable regardless of programming (Intel fixed
    /// counters: retired instructions and unhalted cycles).
    pub const FIXED: [Event; 2] = [Event::InstRetiredAny, Event::CpuClkUnhaltedThread];

    /// Creates a PMU with `slots` programmable counters.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero: a PMU without programmable counters
    /// cannot measure any performance metric.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a PMU needs at least one programmable slot");
        Pmu {
            slots,
            programmed: Vec::new(),
        }
    }

    /// A Skylake-like PMU: 4 programmable counters per thread.
    pub fn skylake() -> Self {
        Pmu::new(4)
    }

    /// Number of programmable slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The currently programmed events.
    pub fn programmed(&self) -> &[Event] {
        &self.programmed
    }

    /// Programs a group of events, replacing the previous group.
    ///
    /// Fixed events need not (and should not) be programmed; they are
    /// always readable and do not consume slots. Duplicates are collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError::TooManyEvents`] if the deduplicated,
    /// non-fixed event set exceeds the slot count.
    pub fn program(&mut self, events: &[Event]) -> Result<(), PmuError> {
        let mut wanted: Vec<Event> = Vec::new();
        for &e in events {
            if Self::FIXED.contains(&e) || wanted.contains(&e) {
                continue;
            }
            wanted.push(e);
        }
        if wanted.len() > self.slots {
            return Err(PmuError::TooManyEvents {
                requested: wanted.len(),
                slots: self.slots,
            });
        }
        self.programmed = wanted;
        Ok(())
    }

    /// Returns `true` if `event` can currently be read.
    pub fn is_readable(&self, event: Event) -> bool {
        Self::FIXED.contains(&event) || self.programmed.contains(&event)
    }

    /// Reads `event` from `counters`, enforcing programming rules.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError::NotProgrammed`] if `event` is neither fixed nor
    /// programmed.
    pub fn read(&self, counters: &CounterFile, event: Event) -> Result<u64, PmuError> {
        if self.is_readable(event) {
            Ok(counters.get(event))
        } else {
            Err(PmuError::NotProgrammed { event })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programming_too_many_events_fails() {
        let mut pmu = Pmu::new(2);
        let err = pmu
            .program(&[
                Event::IdqDsbUops,
                Event::IcacheMisses,
                Event::LongestLatCacheMiss,
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            PmuError::TooManyEvents {
                requested: 3,
                slots: 2
            }
        ));
    }

    #[test]
    fn fixed_events_do_not_consume_slots() {
        let mut pmu = Pmu::new(1);
        pmu.program(&[
            Event::InstRetiredAny,
            Event::CpuClkUnhaltedThread,
            Event::IdqDsbUops,
        ])
        .unwrap();
        assert_eq!(pmu.programmed(), [Event::IdqDsbUops]);
    }

    #[test]
    fn duplicates_collapse() {
        let mut pmu = Pmu::new(1);
        pmu.program(&[Event::IdqDsbUops, Event::IdqDsbUops])
            .unwrap();
        assert_eq!(pmu.programmed().len(), 1);
    }

    #[test]
    fn reprogramming_replaces_the_group() {
        let mut pmu = Pmu::new(2);
        pmu.program(&[Event::IdqDsbUops]).unwrap();
        pmu.program(&[Event::IcacheMisses]).unwrap();
        assert!(pmu.is_readable(Event::IcacheMisses));
        assert!(!pmu.is_readable(Event::IdqDsbUops));
    }

    #[test]
    fn read_enforces_programming() {
        let mut pmu = Pmu::skylake();
        pmu.program(&[Event::IdqDsbUops]).unwrap();
        let mut c = CounterFile::new();
        c.add(Event::IdqDsbUops, 7);
        c.add(Event::IcacheMisses, 9);
        assert_eq!(pmu.read(&c, Event::IdqDsbUops).unwrap(), 7);
        assert!(matches!(
            pmu.read(&c, Event::IcacheMisses),
            Err(PmuError::NotProgrammed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_slots_panics() {
        let _ = Pmu::new(0);
    }
}
