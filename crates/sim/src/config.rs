//! Core configuration: pipeline widths, buffer sizes, and latencies.
//!
//! The default configuration is Skylake-server-class, loosely matching the
//! Xeon Gold 6126 the paper measures: 4-wide allocation/retirement, a
//! 224-entry ROB, 8 execution ports, a DSB-fed front-end, and a four-level
//! memory hierarchy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a [`CoreConfig`] fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError {
    /// The offending field.
    pub field: &'static str,
    /// The constraint that was violated.
    pub reason: String,
}

impl fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid core config: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidConfigError {}

/// Memory-hierarchy latencies and capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1D hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 hit latency in cycles.
    pub l3_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Maximum outstanding L1D misses (MSHRs).
    pub mshrs: usize,
    /// Maximum in-flight DRAM transactions (a crude bandwidth limit).
    pub dram_queue: usize,
    /// Store-buffer capacity (in-flight stores awaiting drain to the L1).
    pub store_buffer: usize,
    /// Extra latency of a locked (atomic) load, which also serializes
    /// against other locked operations.
    pub lock_latency: u64,
    /// Instruction-cache miss penalty in cycles.
    pub icache_miss_latency: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1_latency: 4,
            l2_latency: 14,
            l3_latency: 44,
            dram_latency: 200,
            mshrs: 10,
            dram_queue: 16,
            store_buffer: 56,
            lock_latency: 20,
            icache_miss_latency: 30,
        }
    }
}

/// Front-end widths and penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// µops per cycle deliverable from the decoded stream buffer.
    pub dsb_width: u64,
    /// µops per cycle deliverable from the legacy (MITE) decode pipeline.
    /// Realistically limited by the 16-byte fetch window; noticeably
    /// narrower than the DSB.
    pub mite_width: u64,
    /// µops per cycle deliverable from the microcode sequencer.
    pub ms_width: u64,
    /// Cycles lost when switching into the microcode sequencer.
    pub ms_switch_penalty: u64,
    /// IDQ capacity in µops.
    pub idq_capacity: u64,
    /// Front-end refill delay after a branch-misprediction redirect.
    pub mispredict_redirect_penalty: u64,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            dsb_width: 6,
            mite_width: 2,
            ms_width: 4,
            ms_switch_penalty: 2,
            idq_capacity: 64,
            mispredict_redirect_penalty: 16,
        }
    }
}

/// Back-end widths and buffer sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendConfig {
    /// Allocation (rename/issue) width in µops per cycle. This is TMA's
    /// "slots per cycle" pipeline width.
    pub issue_width: u64,
    /// Retirement width in µops per cycle.
    pub retire_width: u64,
    /// Reorder-buffer capacity in µops.
    pub rob_size: u64,
    /// Reservation-station (scheduler) capacity in µops.
    pub rs_size: u64,
    /// Number of execution ports.
    pub ports: usize,
    /// Integer-divide latency (unpipelined).
    pub int_div_latency: u64,
    /// Floating-point divide latency (unpipelined).
    pub fp_div_latency: u64,
    /// Allocator-stall cycles charged per branch-misprediction recovery.
    pub recovery_penalty: u64,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            issue_width: 4,
            retire_width: 4,
            rob_size: 224,
            rs_size: 97,
            ports: 8,
            int_div_latency: 20,
            fp_div_latency: 14,
            recovery_penalty: 14,
        }
    }
}

/// Complete configuration of a simulated core.
///
/// ```
/// use spire_sim::CoreConfig;
///
/// let config = CoreConfig::skylake_server();
/// assert_eq!(config.backend.issue_width, 4);
/// config.validate().expect("default config is valid");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Front-end parameters.
    pub frontend: FrontendConfig,
    /// Back-end parameters.
    pub backend: BackendConfig,
    /// Memory-hierarchy parameters.
    pub memory: MemoryConfig,
}

impl CoreConfig {
    /// A Skylake-server-class configuration (the default), approximating
    /// the paper's Xeon Gold 6126.
    pub fn skylake_server() -> Self {
        CoreConfig::default()
    }

    /// A deliberately small configuration for fast unit tests: narrow
    /// buffers make resource stalls easy to provoke.
    pub fn tiny() -> Self {
        CoreConfig {
            frontend: FrontendConfig {
                dsb_width: 4,
                mite_width: 2,
                ms_width: 2,
                ms_switch_penalty: 2,
                idq_capacity: 16,
                mispredict_redirect_penalty: 8,
            },
            backend: BackendConfig {
                issue_width: 2,
                retire_width: 2,
                rob_size: 16,
                rs_size: 8,
                ports: 4,
                int_div_latency: 10,
                fp_div_latency: 8,
                recovery_penalty: 4,
            },
            memory: MemoryConfig {
                l1_latency: 2,
                l2_latency: 6,
                l3_latency: 15,
                dram_latency: 50,
                mshrs: 4,
                dram_queue: 4,
                store_buffer: 8,
                lock_latency: 8,
                icache_miss_latency: 10,
            },
        }
    }

    /// Validates structural constraints between the fields.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] when a width or capacity is zero,
    /// when the port count exceeds the internal limit of 16, or when cache
    /// latencies are not monotonically increasing with distance.
    pub fn validate(&self) -> Result<(), InvalidConfigError> {
        fn nonzero(field: &'static str, v: u64) -> Result<(), InvalidConfigError> {
            if v == 0 {
                Err(InvalidConfigError {
                    field,
                    reason: "must be non-zero".to_owned(),
                })
            } else {
                Ok(())
            }
        }
        nonzero("frontend.dsb_width", self.frontend.dsb_width)?;
        nonzero("frontend.mite_width", self.frontend.mite_width)?;
        nonzero("frontend.ms_width", self.frontend.ms_width)?;
        nonzero("frontend.idq_capacity", self.frontend.idq_capacity)?;
        nonzero("backend.issue_width", self.backend.issue_width)?;
        nonzero("backend.retire_width", self.backend.retire_width)?;
        nonzero("backend.rob_size", self.backend.rob_size)?;
        nonzero("backend.rs_size", self.backend.rs_size)?;
        nonzero("memory.l1_latency", self.memory.l1_latency)?;
        if self.backend.ports == 0 || self.backend.ports > 16 {
            return Err(InvalidConfigError {
                field: "backend.ports",
                reason: format!("must be within 1..=16, got {}", self.backend.ports),
            });
        }
        if self.memory.mshrs == 0 {
            return Err(InvalidConfigError {
                field: "memory.mshrs",
                reason: "must be non-zero".to_owned(),
            });
        }
        if self.memory.dram_queue == 0 {
            return Err(InvalidConfigError {
                field: "memory.dram_queue",
                reason: "must be non-zero".to_owned(),
            });
        }
        if self.memory.store_buffer == 0 {
            return Err(InvalidConfigError {
                field: "memory.store_buffer",
                reason: "must be non-zero".to_owned(),
            });
        }
        let m = &self.memory;
        if !(m.l1_latency <= m.l2_latency
            && m.l2_latency <= m.l3_latency
            && m.l3_latency <= m.dram_latency)
        {
            return Err(InvalidConfigError {
                field: "memory",
                reason: format!(
                    "latencies must grow with distance: l1={} l2={} l3={} dram={}",
                    m.l1_latency, m.l2_latency, m.l3_latency, m.dram_latency
                ),
            });
        }
        if self.backend.rs_size > self.backend.rob_size {
            return Err(InvalidConfigError {
                field: "backend.rs_size",
                reason: "scheduler cannot outsize the reorder buffer".to_owned(),
            });
        }
        Ok(())
    }

    /// TMA pipeline slots per cycle (the allocation width).
    pub fn slots_per_cycle(&self) -> u64 {
        self.backend.issue_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        CoreConfig::default().validate().unwrap();
        CoreConfig::skylake_server().validate().unwrap();
        CoreConfig::tiny().validate().unwrap();
    }

    #[test]
    fn zero_width_is_rejected() {
        let mut c = CoreConfig::default();
        c.backend.issue_width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_monotone_latencies_are_rejected() {
        let mut c = CoreConfig::default();
        c.memory.l2_latency = 1;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "memory");
        assert!(err.to_string().contains("latencies"));
    }

    #[test]
    fn oversized_scheduler_is_rejected() {
        let mut c = CoreConfig::default();
        c.backend.rs_size = c.backend.rob_size + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn too_many_ports_rejected() {
        let mut c = CoreConfig::default();
        c.backend.ports = 17;
        assert!(c.validate().is_err());
    }

    #[test]
    fn slots_per_cycle_is_issue_width() {
        assert_eq!(CoreConfig::default().slots_per_cycle(), 4);
    }

    #[test]
    fn config_serde_round_trip() {
        let c = CoreConfig::tiny();
        let json = serde_json::to_string(&c).unwrap();
        let back: CoreConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
