//! The abstract instruction model consumed by the simulated core.
//!
//! The simulator is trace-driven: a workload is an iterator of [`Instr`]s
//! carrying everything the pipeline needs to know — operation class,
//! decode source, memory behaviour, branch outcome, and the dependency
//! distance to the producing instruction. Wrong-path (mis-speculated) work
//! is not materialized as instructions; its cost is modeled by the
//! redirect/recovery penalties and issue-waste accounting in the core.

use serde::{Deserialize, Serialize};

/// SIMD vector width of a vector µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VecWidth {
    /// 128-bit (XMM).
    W128,
    /// 256-bit (YMM).
    W256,
    /// 512-bit (ZMM).
    W512,
}

/// The memory level that serves an access (decided by the workload
/// generator's locality model, not by a simulated cache directory: the
/// generator is the source of truth for residency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// First-level data cache hit.
    L1,
    /// Second-level cache hit.
    L2,
    /// Last-level cache hit.
    L3,
    /// DRAM access (last-level cache miss).
    Dram,
}

/// Which front-end path decodes an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeSource {
    /// Decoded stream buffer (µop cache): the fast path.
    Dsb,
    /// Legacy decode pipeline.
    Mite,
    /// Microcode sequencer (complex instructions).
    Ms,
}

/// Operation class, determining execution ports and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Simple integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined divider).
    IntDiv,
    /// Floating-point add/sub.
    FpAdd,
    /// Floating-point multiply (or FMA).
    FpMul,
    /// Floating-point divide (unpipelined divider).
    FpDiv,
    /// SIMD vector operation of the given width.
    Vec(VecWidth),
    /// Memory load served by the given level; `locked` marks an atomic.
    Load {
        /// Which level serves the load.
        level: MemLevel,
        /// Locked (atomic) load: serializes against other locked ops.
        locked: bool,
    },
    /// Memory store (fire-and-forget into the store buffer).
    Store,
    /// Conditional or indirect branch.
    Branch {
        /// Whether the branch was mispredicted.
        mispredicted: bool,
    },
}

/// One instruction of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// Operation class.
    pub class: InstrClass,
    /// Number of µops the instruction decodes into (at least 1).
    pub uops: u8,
    /// Front-end path that decodes it.
    pub decode: DecodeSource,
    /// Distance (in instructions) to the producer this instruction depends
    /// on; `0` means no register dependency.
    pub dep_distance: u32,
    /// Whether fetching this instruction misses the instruction cache.
    pub icache_miss: bool,
}

impl Instr {
    /// A 1-µop DSB-decoded integer ALU op with no dependencies — the
    /// cheapest possible instruction, useful as a test building block.
    pub fn simple_alu() -> Self {
        Instr {
            class: InstrClass::IntAlu,
            uops: 1,
            decode: DecodeSource::Dsb,
            dep_distance: 0,
            icache_miss: false,
        }
    }

    /// A load from the given level (1 µop, DSB, no deps).
    pub fn load(level: MemLevel) -> Self {
        Instr {
            class: InstrClass::Load {
                level,
                locked: false,
            },
            ..Instr::simple_alu()
        }
    }

    /// A branch (1 µop, DSB, no deps).
    pub fn branch(mispredicted: bool) -> Self {
        Instr {
            class: InstrClass::Branch { mispredicted },
            ..Instr::simple_alu()
        }
    }

    /// Returns `true` if this instruction performs a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self.class, InstrClass::Load { .. })
    }

    /// Returns `true` if this instruction is a branch.
    pub fn is_branch(&self) -> bool {
        matches!(self.class, InstrClass::Branch { .. })
    }

    /// Returns `true` if this instruction uses the (unpipelined) divider.
    pub fn is_divide(&self) -> bool {
        matches!(self.class, InstrClass::IntDiv | InstrClass::FpDiv)
    }

    /// The SIMD width, for vector operations.
    pub fn vec_width(&self) -> Option<VecWidth> {
        match self.class {
            InstrClass::Vec(w) => Some(w),
            _ => None,
        }
    }
}

impl Default for Instr {
    fn default() -> Self {
        Instr::simple_alu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_classes() {
        assert!(Instr::load(MemLevel::L3).is_load());
        assert!(Instr::branch(true).is_branch());
        assert!(!Instr::simple_alu().is_load());
        let div = Instr {
            class: InstrClass::IntDiv,
            ..Instr::simple_alu()
        };
        assert!(div.is_divide());
    }

    #[test]
    fn vec_width_only_for_vector_ops() {
        let v = Instr {
            class: InstrClass::Vec(VecWidth::W512),
            ..Instr::simple_alu()
        };
        assert_eq!(v.vec_width(), Some(VecWidth::W512));
        assert_eq!(Instr::simple_alu().vec_width(), None);
    }

    #[test]
    fn mem_levels_order_by_distance() {
        assert!(MemLevel::L1 < MemLevel::L2);
        assert!(MemLevel::L3 < MemLevel::Dram);
    }

    #[test]
    fn default_is_simple_alu() {
        assert_eq!(Instr::default(), Instr::simple_alu());
    }
}
