//! The cycle-level out-of-order core model.
//!
//! The simulator is trace-driven and instruction-granular: each cycle it
//! retires completed work from the reorder buffer, dispatches ready
//! instructions to execution ports, allocates µops from the instruction
//! decode queue (IDQ) into the back-end, and fetches/decodes new
//! instructions into the IDQ. Every stage updates the [`CounterFile`] with
//! the hardware events a real PMU would observe, which is the entire point:
//! SPIRE and TMA consume nothing but those counters.
//!
//! Wrong-path work after a branch misprediction is not simulated
//! instruction-by-instruction; its cost appears as the front-end redirect
//! stall, the allocator recovery window, and issue-slot waste charged to
//! `uops_issued.any` — the same signature TMA's bad-speculation formula
//! keys on.

use std::collections::VecDeque;

use crate::config::CoreConfig;
use crate::events::{CounterFile, Event};
use crate::instr::{DecodeSource, Instr, InstrClass, MemLevel, VecWidth};

/// Size of the completion ring used for dependency tracking. Must exceed
/// any realistic ROB size plus dependency distance.
const COMPLETION_RING: usize = 8192;

/// An instruction sitting in the IDQ, tagged with the front-end bubble
/// length that preceded its delivery (for the `frontend_retired.*` events).
#[derive(Debug, Clone, Copy)]
struct QueuedInstr {
    instr: Instr,
    fe_bubble: u64,
    dsb_miss: bool,
}

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RobState {
    /// Allocated, waiting in the scheduler.
    Waiting,
    /// Dispatched; the result is ready at the contained cycle.
    Executing(u64),
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    instr: Instr,
    state: RobState,
    fe_bubble: u64,
    dsb_miss: bool,
}

/// Summary statistics of a [`Core::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunSummary {
    /// Cycles simulated by this call.
    pub cycles: u64,
    /// Instructions retired during this call.
    pub instructions: u64,
}

impl RunSummary {
    /// Retired instructions per cycle over the run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// A simulated out-of-order core with a performance-monitoring unit.
///
/// ```
/// use spire_sim::{Core, CoreConfig, Event, Instr};
///
/// let mut core = Core::new(CoreConfig::skylake_server());
/// let mut stream = std::iter::repeat(Instr::simple_alu()).take(10_000);
/// let summary = core.run(&mut stream, 100_000);
/// assert_eq!(summary.instructions, 10_000);
/// // Independent single-µop ALU ops retire at the pipeline width.
/// assert!(summary.ipc() > 3.0);
/// assert_eq!(core.counters().get(Event::InstRetiredAny), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    cycle: u64,
    counters: CounterFile,

    // Front-end state.
    idq: VecDeque<QueuedInstr>,
    idq_uops: u64,
    fetch_stall_until: u64,
    fetch_bubble_len: u64,
    last_source: Option<DecodeSource>,
    pending_fetch: Option<Instr>,
    stream_exhausted: bool,

    // Bad-speculation state.
    recovery_start: u64,
    recovery_until: u64,
    redirect_until: u64,

    // Back-end state.
    rob: VecDeque<RobEntry>,
    rob_uops: u64,
    rs_uops: u64,
    completion_ring: Vec<(u64, Option<u64>)>,
    divider_busy_until: u64,
    lock_busy_until: u64,
    inflight_loads: Vec<u64>,
    outstanding_misses: Vec<u64>,
    dram_inflight: Vec<u64>,
    /// Drain-completion cycles of stores occupying the store buffer.
    store_buffer: Vec<u64>,
    last_vec_width: Option<VecWidth>,
    /// µops of the IDQ-front instruction already allocated in previous
    /// cycles (instructions wider than the issue width allocate over
    /// multiple cycles).
    alloc_partial: u64,
    /// µops of the ROB-head instruction already retired in previous
    /// cycles (instructions wider than the retire width retire over
    /// multiple cycles).
    retire_partial: u64,
    next_seq: u64,
    retired_instrs: u64,
}

impl Core {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreConfig::validate`]; construct and
    /// validate configurations before handing them to the core.
    pub fn new(cfg: CoreConfig) -> Self {
        cfg.validate().expect("core configuration must be valid");
        Core {
            cfg,
            cycle: 0,
            counters: CounterFile::new(),
            idq: VecDeque::new(),
            idq_uops: 0,
            fetch_stall_until: 0,
            fetch_bubble_len: 0,
            last_source: None,
            pending_fetch: None,
            stream_exhausted: false,
            recovery_start: 0,
            recovery_until: 0,
            redirect_until: 0,
            rob: VecDeque::new(),
            rob_uops: 0,
            rs_uops: 0,
            completion_ring: vec![(u64::MAX, None); COMPLETION_RING],
            divider_busy_until: 0,
            lock_busy_until: 0,
            inflight_loads: Vec::new(),
            outstanding_misses: Vec::new(),
            dram_inflight: Vec::new(),
            store_buffer: Vec::new(),
            last_vec_width: None,
            alloc_partial: 0,
            retire_partial: 0,
            next_seq: 0,
            retired_instrs: 0,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total retired instructions.
    pub fn retired_instructions(&self) -> u64 {
        self.retired_instrs
    }

    /// The raw hardware counters.
    pub fn counters(&self) -> &CounterFile {
        &self.counters
    }

    /// Returns `true` if all in-flight work has drained and the last
    /// supplied stream was exhausted.
    pub fn is_drained(&self) -> bool {
        self.stream_exhausted
            && self.rob.is_empty()
            && self.idq.is_empty()
            && self.pending_fetch.is_none()
    }

    /// Runs the core on `stream` for at most `max_cycles` cycles, stopping
    /// early once the stream is exhausted and the pipeline has drained.
    ///
    /// The core keeps its state between calls, so a long workload can be
    /// simulated in slices (which is how the sampling layer measures
    /// intervals).
    pub fn run<I>(&mut self, stream: &mut I, max_cycles: u64) -> RunSummary
    where
        I: Iterator<Item = Instr>,
    {
        let start_cycle = self.cycle;
        let start_instr = self.retired_instrs;
        // Probe the stream instead of clearing the exhaustion flag: a
        // drained core resumes with fresh input without burning cycles,
        // and — crucially — drain detection does not depend on how a run
        // was sliced into `run` calls.
        if self.stream_exhausted && self.pending_fetch.is_none() {
            if let Some(instr) = stream.next() {
                self.pending_fetch = Some(instr);
                self.stream_exhausted = false;
            }
        }
        for _ in 0..max_cycles {
            if self.is_drained() {
                break;
            }
            self.step(stream);
        }
        RunSummary {
            cycles: self.cycle - start_cycle,
            instructions: self.retired_instrs - start_instr,
        }
    }

    /// Advances the core by one cycle, pulling from `stream` as needed.
    pub fn step<I>(&mut self, stream: &mut I)
    where
        I: Iterator<Item = Instr>,
    {
        let now = self.cycle;
        self.expire_inflight(now);

        // "Busy" must be a pure function of pipeline state (not of the
        // stream-exhausted flag, which resets per `run` call) so that
        // slicing a run into pieces cannot change any counter.
        let machine_busy =
            !self.rob.is_empty() || !self.idq.is_empty() || self.pending_fetch.is_some();

        let retired_uops = self.retire(now);
        let (executed_uops, ports_used) = self.dispatch(now);
        let issued_uops = self.allocate(now);
        self.fetch(stream, now);

        self.count_cycle_activity(
            now,
            machine_busy,
            retired_uops,
            executed_uops,
            ports_used,
            issued_uops,
        );

        self.counters.incr(Event::CpuClkUnhaltedThread);
        self.cycle += 1;
    }

    /// Removes completed entries from the in-flight load trackers.
    fn expire_inflight(&mut self, now: u64) {
        self.inflight_loads.retain(|&c| c > now);
        self.outstanding_misses.retain(|&c| c > now);
        self.dram_inflight.retain(|&c| c > now);
        self.store_buffer.retain(|&c| c > now);
    }

    /// Retires completed instructions in order; returns retired µops.
    fn retire(&mut self, now: u64) -> u64 {
        let mut budget = self.cfg.backend.retire_width;
        let mut retired_uops = 0;
        while budget > 0 {
            let Some(head) = self.rob.front() else {
                break;
            };
            let RobState::Executing(done_at) = head.state else {
                break;
            };
            if done_at > now {
                break;
            }
            let uops = u64::from(head.instr.uops);
            let remaining = uops - self.retire_partial;
            if remaining > budget {
                // Wider than the remaining retirement slots: retire what
                // fits this cycle and finish in a later cycle.
                self.retire_partial += budget;
                retired_uops += budget;
                break;
            }
            let entry = self.rob.pop_front().expect("head exists");
            budget -= remaining;
            retired_uops += remaining;
            self.retire_partial = 0;
            self.rob_uops -= uops;
            self.retired_instrs += 1;
            self.count_retirement(&entry);
        }
        retired_uops
    }

    fn count_retirement(&mut self, entry: &RobEntry) {
        let c = &mut self.counters;
        c.incr(Event::InstRetiredAny);
        c.add(Event::UopsRetiredRetireSlots, u64::from(entry.instr.uops));
        if entry.fe_bubble >= 2 {
            c.incr(Event::FrontendRetiredLatencyGe2BubblesGe1);
        }
        if entry.fe_bubble >= 4 {
            c.incr(Event::FrontendRetiredLatencyGe2BubblesGe2);
        }
        if entry.fe_bubble >= 6 {
            c.incr(Event::FrontendRetiredLatencyGe2BubblesGe3);
        }
        if entry.dsb_miss {
            c.incr(Event::FrontendRetiredDsbMiss);
        }
        match entry.instr.class {
            InstrClass::Branch { mispredicted } => {
                c.incr(Event::BrInstRetiredAllBranches);
                if mispredicted {
                    c.incr(Event::BrMispRetiredAllBranches);
                }
            }
            InstrClass::Load { level, locked } => {
                c.incr(Event::MemInstRetiredAllLoads);
                if locked {
                    c.incr(Event::MemInstRetiredLockLoads);
                }
                match level {
                    MemLevel::L1 => c.incr(Event::MemLoadRetiredL1Hit),
                    MemLevel::L2 => c.incr(Event::MemLoadRetiredL2Hit),
                    MemLevel::L3 => {
                        c.incr(Event::MemLoadRetiredL3Hit);
                        c.incr(Event::LongestLatCacheReference);
                    }
                    MemLevel::Dram => {
                        c.incr(Event::MemLoadRetiredDramHit);
                        c.incr(Event::LongestLatCacheReference);
                        c.incr(Event::LongestLatCacheMiss);
                    }
                }
            }
            InstrClass::Store => c.incr(Event::MemInstRetiredAllStores),
            _ => {}
        }
    }

    /// Dispatches ready scheduler entries to execution ports; returns
    /// `(executed µops, distinct ports used)`.
    fn dispatch(&mut self, now: u64) -> (u64, usize) {
        let ports = self.cfg.backend.ports;
        let mut port_busy = vec![false; ports];
        let mut executed_uops = 0u64;
        let mut dispatch_budget = ports as u64;

        // Collect dispatch decisions first to appease the borrow checker:
        // (rob index, port, completion cycle).
        let mut decisions: Vec<(usize, usize, u64)> = Vec::new();
        let mut mispredict_completions: Vec<u64> = Vec::new();

        for idx in 0..self.rob.len() {
            if dispatch_budget == 0 {
                break;
            }
            let entry = self.rob[idx];
            if entry.state != RobState::Waiting {
                continue;
            }
            // Instructions wider than the port count consume the whole
            // dispatch budget rather than waiting forever; the µop
            // counters still see the true width.
            let uops = u64::from(entry.instr.uops);
            let budget_cost = uops.min(ports as u64);
            if budget_cost > dispatch_budget {
                continue;
            }
            if !self.deps_ready(entry.seq, entry.instr.dep_distance, now) {
                continue;
            }
            let Some((port, latency)) = self.try_bind(&entry.instr, &port_busy, now) else {
                continue;
            };
            let complete_at = now + latency;
            port_busy[port] = true;
            dispatch_budget -= budget_cost;
            executed_uops += uops;
            decisions.push((idx, port, complete_at));

            // Structural reservations.
            match entry.instr.class {
                InstrClass::IntDiv | InstrClass::FpDiv => {
                    self.divider_busy_until = complete_at;
                }
                InstrClass::Load { level, locked } => {
                    self.inflight_loads.push(complete_at);
                    // Locked loads count as memory-outstanding even on an
                    // L1 hit: their serialization latency is accounted
                    // under memory (L1) bound, as TMA does.
                    if level != MemLevel::L1 || locked {
                        self.outstanding_misses.push(complete_at);
                    }
                    if level == MemLevel::Dram {
                        self.dram_inflight.push(complete_at);
                    }
                    if locked {
                        self.lock_busy_until = complete_at;
                    }
                }
                InstrClass::Branch { mispredicted: true } => {
                    mispredict_completions.push(complete_at);
                }
                InstrClass::Store => {
                    // The store occupies its buffer entry until it drains
                    // into the L1 after completing.
                    self.store_buffer
                        .push(complete_at + self.cfg.memory.l1_latency);
                }
                _ => {}
            }
        }

        let port_events = [
            Event::UopsDispatchedPort0,
            Event::UopsDispatchedPort1,
            Event::UopsDispatchedPort2,
            Event::UopsDispatchedPort3,
            Event::UopsDispatchedPort4,
            Event::UopsDispatchedPort5,
            Event::UopsDispatchedPort6,
            Event::UopsDispatchedPort7,
        ];
        for &(idx, port, complete_at) in &decisions {
            let uops = u64::from(self.rob[idx].instr.uops);
            self.rob[idx].state = RobState::Executing(complete_at);
            self.rs_uops -= uops;
            let seq = self.rob[idx].seq;
            self.completion_ring[(seq as usize) % COMPLETION_RING] = (seq, Some(complete_at));
            if port < port_events.len() {
                self.counters.add(port_events[port], uops);
            }
        }
        self.counters.add(Event::UopsExecutedThread, executed_uops);

        // Branch mispredictions: schedule the front-end redirect and the
        // allocator recovery window, and charge a small wrong-path issue
        // waste. The recovery window (not the fetch bubble) carries the
        // bulk of the misprediction cost so that TMA attributes it to bad
        // speculation rather than to the front-end; the shorter resteer
        // tail that remains after recovery shows up as front-end latency,
        // as it does on real hardware.
        for complete_at in mispredict_completions {
            let fe = &self.cfg.frontend;
            let be = &self.cfg.backend;
            self.redirect_until = self
                .redirect_until
                .max(complete_at + fe.mispredict_redirect_penalty);
            self.recovery_start = if now >= self.recovery_until {
                complete_at
            } else {
                self.recovery_start
            };
            self.recovery_until = self.recovery_until.max(complete_at + be.recovery_penalty);
            let waste = be.issue_width * 4;
            self.counters.add(Event::UopsIssuedAny, waste);
        }

        let ports_used = port_busy.iter().filter(|&&b| b).count();
        (executed_uops, ports_used)
    }

    /// Checks whether the producing instruction's result is available.
    fn deps_ready(&self, seq: u64, dep_distance: u32, now: u64) -> bool {
        if dep_distance == 0 {
            return true;
        }
        let Some(producer) = seq.checked_sub(u64::from(dep_distance)) else {
            return true;
        };
        let (tag, complete) = self.completion_ring[(producer as usize) % COMPLETION_RING];
        if tag != producer {
            // Evicted from the ring: long retired.
            return true;
        }
        match complete {
            Some(c) => c <= now,
            None => false,
        }
    }

    /// Tries to bind an instruction to a free, structurally available
    /// port; returns `(port, latency)` on success.
    fn try_bind(&self, instr: &Instr, port_busy: &[bool], now: u64) -> Option<(usize, u64)> {
        let ports = port_busy.len();
        let mem = &self.cfg.memory;
        let be = &self.cfg.backend;
        let (candidates, latency): (&[usize], u64) = match instr.class {
            InstrClass::IntAlu => (&[0, 1, 5, 6], 1),
            InstrClass::IntMul => (&[1], 3),
            InstrClass::IntDiv => {
                if self.divider_busy_until > now {
                    return None;
                }
                (&[0], be.int_div_latency)
            }
            InstrClass::FpAdd => (&[0, 1], 4),
            InstrClass::FpMul => (&[0, 1], 4),
            InstrClass::FpDiv => {
                if self.divider_busy_until > now {
                    return None;
                }
                (&[0], be.fp_div_latency)
            }
            InstrClass::Vec(w) => match w {
                VecWidth::W128 | VecWidth::W256 => (&[0, 1], 4),
                VecWidth::W512 => (&[0, 5], 4),
            },
            InstrClass::Load { level, locked } => {
                if locked && self.lock_busy_until > now {
                    return None;
                }
                if level != MemLevel::L1 && self.outstanding_misses.len() >= mem.mshrs {
                    return None;
                }
                if level == MemLevel::Dram && self.dram_inflight.len() >= mem.dram_queue {
                    return None;
                }
                let base = match level {
                    MemLevel::L1 => mem.l1_latency,
                    MemLevel::L2 => mem.l2_latency,
                    MemLevel::L3 => mem.l3_latency,
                    MemLevel::Dram => mem.dram_latency,
                };
                let lat = if locked {
                    base + mem.lock_latency
                } else {
                    base
                };
                (&[2, 3], lat)
            }
            InstrClass::Store => {
                if self.store_buffer.len() >= mem.store_buffer {
                    return None;
                }
                (&[4], 1)
            }
            InstrClass::Branch { .. } => (&[6, 0], 1),
        };
        candidates
            .iter()
            .map(|&p| p % ports)
            .find(|&p| !port_busy[p])
            .map(|p| (p, latency))
    }

    /// Allocates µops from the IDQ into the ROB/scheduler; returns issued
    /// µops.
    fn allocate(&mut self, now: u64) -> u64 {
        // During a recovery window the allocator is busy restoring state;
        // nothing allocates and the cycles are charged to bad speculation.
        if now >= self.recovery_start && now < self.recovery_until {
            self.counters.incr(Event::IntMiscRecoveryCycles);
            self.counters.incr(Event::IntMiscRecoveryCyclesAny);
            return 0;
        }

        let be = &self.cfg.backend;
        let mut budget = be.issue_width;
        let mut issued = 0u64;
        let mut backend_blocked = false;
        while budget > 0 {
            let Some(front) = self.idq.front() else {
                break;
            };
            let uops = u64::from(front.instr.uops);
            // Resources for the whole instruction are reserved when its
            // allocation starts (alloc_partial == 0).
            if self.alloc_partial == 0
                && (self.rob_uops + uops > be.rob_size || self.rs_uops + uops > be.rs_size)
            {
                backend_blocked = true;
                break;
            }
            let remaining = uops - self.alloc_partial;
            if remaining > budget {
                // Wider than the remaining issue slots: allocate what
                // fits this cycle and finish in a later cycle. This is
                // how a 4-µop microcoded instruction proceeds through a
                // 2-wide allocator without deadlocking.
                if self.alloc_partial == 0 {
                    self.rob_uops += uops;
                    self.rs_uops += uops;
                }
                self.alloc_partial += budget;
                issued += budget;
                break;
            }
            let started_now = self.alloc_partial == 0;
            let q = self.idq.pop_front().expect("front exists");
            self.idq_uops -= uops;
            budget -= remaining;
            issued += remaining;
            self.alloc_partial = 0;
            if started_now {
                self.rob_uops += uops;
                self.rs_uops += uops;
            }

            if let Some(w) = q.instr.vec_width() {
                if let Some(prev) = self.last_vec_width {
                    if prev != w {
                        self.counters.incr(Event::UopsIssuedVectorWidthMismatch);
                    }
                }
                self.last_vec_width = Some(w);
            }

            let seq = self.next_seq;
            self.next_seq += 1;
            self.completion_ring[(seq as usize) % COMPLETION_RING] = (seq, None);
            self.rob.push_back(RobEntry {
                seq,
                instr: q.instr,
                state: RobState::Waiting,
                fe_bubble: q.fe_bubble,
                dsb_miss: q.dsb_miss,
            });
        }
        self.counters.add(Event::UopsIssuedAny, issued);

        let machine_busy =
            !self.rob.is_empty() || !self.idq.is_empty() || self.pending_fetch.is_some();
        if backend_blocked {
            self.counters.incr(Event::ResourceStallsAny);
            self.counters.incr(Event::IdqUopsNotDeliveredCyclesFeWasOk);
        } else if machine_busy {
            // Slots the front-end failed to fill while the back-end could
            // have accepted them.
            let unfilled = be.issue_width - issued;
            self.counters.add(Event::IdqUopsNotDeliveredCore, unfilled);
            if issued <= 1 {
                self.counters.incr(Event::IdqUopsNotDeliveredCyclesLe1);
            }
            if issued <= 2 {
                self.counters.incr(Event::IdqUopsNotDeliveredCyclesLe2);
            }
            if issued <= 3 {
                self.counters.incr(Event::IdqUopsNotDeliveredCyclesLe3);
            }
        }
        issued
    }

    /// Fetches/decodes instructions into the IDQ.
    fn fetch<I>(&mut self, stream: &mut I, now: u64)
    where
        I: Iterator<Item = Instr>,
    {
        let fe = self.cfg.frontend;
        let stalled = now < self.fetch_stall_until || now < self.redirect_until;
        let mut delivered_uops = 0u64;
        let mut dsb_uops = 0u64;
        let mut mite_uops = 0u64;
        let mut ms_uops = 0u64;

        if !stalled {
            let mut source_of_cycle: Option<DecodeSource> = None;
            let mut budget = 0u64;
            loop {
                if self.pending_fetch.is_none() {
                    match stream.next() {
                        Some(i) => self.pending_fetch = Some(i),
                        None => {
                            self.stream_exhausted = true;
                            break;
                        }
                    }
                }
                let instr = self.pending_fetch.expect("just filled");
                let uops = u64::from(instr.uops);

                // I-cache miss: stall fetch before delivering the
                // instruction; clear the flag so it delivers afterwards.
                if instr.icache_miss {
                    self.counters.incr(Event::IcacheMisses);
                    self.fetch_stall_until = now + self.cfg.memory.icache_miss_latency;
                    let mut cleared = instr;
                    cleared.icache_miss = false;
                    self.pending_fetch = Some(cleared);
                    break;
                }

                // One delivery source per cycle.
                match source_of_cycle {
                    None => {
                        // Microcode-sequencer switches cost a bubble before
                        // delivery starts.
                        if instr.decode == DecodeSource::Ms
                            && self.last_source != Some(DecodeSource::Ms)
                        {
                            self.counters.incr(Event::IdqMsSwitches);
                            if fe.ms_switch_penalty > 0 {
                                self.fetch_stall_until = now + fe.ms_switch_penalty;
                                self.last_source = Some(DecodeSource::Ms);
                                break;
                            }
                        }
                        source_of_cycle = Some(instr.decode);
                        budget = match instr.decode {
                            DecodeSource::Dsb => fe.dsb_width,
                            DecodeSource::Mite => fe.mite_width,
                            DecodeSource::Ms => fe.ms_width,
                        };
                    }
                    Some(src) if src != instr.decode => break,
                    Some(_) => {}
                }

                if self.idq_uops + uops > fe.idq_capacity {
                    break;
                }
                let source_width = match instr.decode {
                    DecodeSource::Dsb => fe.dsb_width,
                    DecodeSource::Mite => fe.mite_width,
                    DecodeSource::Ms => fe.ms_width,
                };
                if uops > budget {
                    if budget < source_width {
                        // Partial budget left this cycle: wait for a
                        // fresh cycle.
                        break;
                    }
                    // Wider than the delivery path: deliver now and
                    // charge the extra cycles as a fetch stall, which is
                    // equivalent to multi-cycle delivery.
                    let extra = (uops - budget).div_ceil(source_width);
                    self.fetch_stall_until = self.fetch_stall_until.max(now + 1 + extra);
                }

                // A DSB-to-MITE transition is a DSB miss.
                let dsb_miss = instr.decode == DecodeSource::Mite
                    && self.last_source == Some(DecodeSource::Dsb);
                self.last_source = Some(instr.decode);
                self.pending_fetch = None;
                budget = budget.saturating_sub(uops);
                delivered_uops += uops;
                match instr.decode {
                    DecodeSource::Dsb => dsb_uops += uops,
                    DecodeSource::Mite => mite_uops += uops,
                    DecodeSource::Ms => ms_uops += uops,
                }
                let fe_bubble = if delivered_uops == uops {
                    // First instruction delivered after a bubble carries
                    // its length.
                    self.fetch_bubble_len
                } else {
                    0
                };
                self.idq.push_back(QueuedInstr {
                    instr,
                    fe_bubble,
                    dsb_miss,
                });
                self.idq_uops += uops;
            }
        }

        let c = &mut self.counters;
        if dsb_uops > 0 {
            c.incr(Event::IdqDsbCycles);
            c.add(Event::IdqDsbUops, dsb_uops);
        }
        if mite_uops > 0 {
            c.incr(Event::IdqMiteCycles);
            c.add(Event::IdqMiteUops, mite_uops);
        }
        if ms_uops > 0 {
            c.incr(Event::IdqMsDsbCycles);
            c.add(Event::IdqMsUops, ms_uops);
        }
        if delivered_uops > 0 && delivered_uops == dsb_uops {
            c.incr(Event::IdqAllDsbCyclesAnyUops);
        }

        // Bubble length is only ever consumed when the next instruction
        // is delivered, so unconditional accumulation is safe and keeps
        // the counter independent of run-slicing.
        if delivered_uops == 0 {
            self.fetch_bubble_len += 1;
        } else {
            self.fetch_bubble_len = 0;
        }
    }

    /// Per-cycle activity counters derived from the stage results.
    #[allow(clippy::too_many_arguments)]
    fn count_cycle_activity(
        &mut self,
        now: u64,
        machine_busy: bool,
        retired_uops: u64,
        executed_uops: u64,
        ports_used: usize,
        issued_uops: u64,
    ) {
        if !machine_busy {
            return;
        }
        let mem_inflight = !self.inflight_loads.is_empty();
        let miss_outstanding = !self.outstanding_misses.is_empty();
        let c = &mut self.counters;

        if retired_uops == 0 {
            c.incr(Event::UopsRetiredStallCycles);
        }
        if issued_uops == 0 {
            c.incr(Event::UopsIssuedStallCycles);
        }
        let sb_full = self.store_buffer.len() >= self.cfg.memory.store_buffer;
        if sb_full {
            c.incr(Event::ResourceStallsSb);
        }
        if executed_uops == 0 {
            c.incr(Event::UopsExecutedStallCycles);
            if sb_full && !self.rob.is_empty() {
                c.incr(Event::ExeActivityBoundOnStores);
            }
            if !self.rob.is_empty() {
                c.incr(Event::CycleActivityStallsTotal);
                // Intel semantics: STALLS_MEM_ANY requires an outstanding
                // demand-load *miss*; stalls behind L1-hit latency are
                // execution (core) stalls.
                if miss_outstanding {
                    c.incr(Event::CycleActivityStallsMemAny);
                    c.incr(Event::CycleActivityStallsL1dMiss);
                } else {
                    c.incr(Event::ExeActivityExeBound0Ports);
                }
            }
        } else {
            c.incr(Event::UopsExecutedCoreCyclesGe1);
            c.incr(Event::UopsExecutedCyclesGe1UopExec);
        }
        match ports_used {
            1 => c.incr(Event::ExeActivity1PortsUtil),
            2 => c.incr(Event::ExeActivity2PortsUtil),
            _ => {}
        }
        if mem_inflight {
            c.incr(Event::CycleActivityCyclesMemAny);
        }
        if miss_outstanding {
            c.incr(Event::CycleActivityCyclesL1dMiss);
            c.add(
                Event::L1dPendMissPendingCycles,
                self.outstanding_misses.len() as u64,
            );
        }
        if self.divider_busy_until > now {
            c.incr(Event::ArithDividerActive);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_n(instrs: Vec<Instr>, max_cycles: u64) -> (Core, RunSummary) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = instrs.into_iter();
        let summary = core.run(&mut stream, max_cycles);
        (core, summary)
    }

    #[test]
    fn independent_alu_ops_run_near_full_width() {
        let (core, s) = run_n(vec![Instr::simple_alu(); 20_000], 100_000);
        assert_eq!(s.instructions, 20_000);
        assert!(s.ipc() > 3.0, "ipc = {}", s.ipc());
        assert_eq!(core.counters().get(Event::InstRetiredAny), 20_000);
        assert!(core.is_drained());
    }

    #[test]
    fn dependent_chain_serializes_to_one_ipc() {
        let mut i = Instr::simple_alu();
        i.dep_distance = 1;
        let (_, s) = run_n(vec![i; 10_000], 100_000);
        assert!(s.ipc() < 1.2, "dep chain ipc = {}", s.ipc());
    }

    #[test]
    fn dram_loads_are_much_slower_than_l1() {
        let (_, dram) = run_n(vec![Instr::load(MemLevel::Dram); 2_000], 2_000_000);
        let (_, l1) = run_n(vec![Instr::load(MemLevel::L1); 2_000], 2_000_000);
        assert!(
            dram.ipc() < l1.ipc() / 2.0,
            "dram {} vs l1 {}",
            dram.ipc(),
            l1.ipc()
        );
    }

    #[test]
    fn dram_loads_count_llc_misses() {
        let (core, _) = run_n(vec![Instr::load(MemLevel::Dram); 500], 2_000_000);
        assert_eq!(core.counters().get(Event::LongestLatCacheMiss), 500);
        assert_eq!(core.counters().get(Event::MemLoadRetiredDramHit), 500);
    }

    #[test]
    fn mispredicted_branches_cost_cycles_and_count() {
        let mut mixed = Vec::new();
        for k in 0..5_000 {
            mixed.push(Instr::branch(k % 10 == 0));
            mixed.push(Instr::simple_alu());
        }
        let (core, s) = run_n(mixed, 2_000_000);
        let c = core.counters();
        assert_eq!(c.get(Event::BrMispRetiredAllBranches), 500);
        assert_eq!(c.get(Event::BrInstRetiredAllBranches), 5_000);
        assert!(c.get(Event::IntMiscRecoveryCycles) > 0);
        // Equal by construction in a single-thread model.
        assert_eq!(
            c.get(Event::IntMiscRecoveryCycles),
            c.get(Event::IntMiscRecoveryCyclesAny)
        );
        assert!(s.ipc() < 2.0, "mispredicts should hurt ipc: {}", s.ipc());
    }

    #[test]
    fn divider_serializes() {
        let div = Instr {
            class: InstrClass::IntDiv,
            ..Instr::simple_alu()
        };
        let (core, s) = run_n(vec![div; 500], 2_000_000);
        let lat = CoreConfig::skylake_server().backend.int_div_latency;
        assert!(s.cycles >= 500 * lat, "divides must serialize");
        assert!(core.counters().get(Event::ArithDividerActive) > 400 * lat);
    }

    #[test]
    fn mite_decoding_is_slower_than_dsb() {
        let mite = Instr {
            decode: DecodeSource::Mite,
            ..Instr::simple_alu()
        };
        let (_, s_mite) = run_n(vec![mite; 10_000], 1_000_000);
        let (_, s_dsb) = run_n(vec![Instr::simple_alu(); 10_000], 1_000_000);
        assert!(
            s_mite.ipc() < s_dsb.ipc(),
            "mite {} vs dsb {}",
            s_mite.ipc(),
            s_dsb.ipc()
        );
    }

    #[test]
    fn ms_switches_are_counted_and_penalized() {
        let ms = Instr {
            decode: DecodeSource::Ms,
            uops: 4,
            ..Instr::simple_alu()
        };
        let mut v = Vec::new();
        for _ in 0..500 {
            v.push(Instr::simple_alu());
            v.push(ms);
        }
        let (core, _) = run_n(v, 1_000_000);
        assert!(core.counters().get(Event::IdqMsSwitches) >= 500);
    }

    #[test]
    fn icache_misses_stall_fetch() {
        let missy = Instr {
            icache_miss: true,
            ..Instr::simple_alu()
        };
        let mut v = Vec::new();
        for _ in 0..200 {
            v.push(missy);
            v.extend(std::iter::repeat_n(Instr::simple_alu(), 9));
        }
        let (core, s) = run_n(v, 1_000_000);
        assert_eq!(core.counters().get(Event::IcacheMisses), 200);
        // 200 misses x 30-cycle penalty dominates 2000 instructions.
        assert!(s.cycles > 200 * 30);
        assert!(
            core.counters()
                .get(Event::FrontendRetiredLatencyGe2BubblesGe1)
                > 0
        );
    }

    #[test]
    fn locked_loads_serialize_and_count() {
        let lock = Instr {
            class: InstrClass::Load {
                level: MemLevel::L1,
                locked: true,
            },
            ..Instr::simple_alu()
        };
        let (core, s) = run_n(vec![lock; 300], 1_000_000);
        let cfg = CoreConfig::skylake_server();
        let per = cfg.memory.l1_latency + cfg.memory.lock_latency;
        assert_eq!(core.counters().get(Event::MemInstRetiredLockLoads), 300);
        assert!(s.cycles >= 300 * per, "locks must serialize");
    }

    #[test]
    fn vector_width_mixing_counts_mismatches() {
        let v256 = Instr {
            class: InstrClass::Vec(VecWidth::W256),
            ..Instr::simple_alu()
        };
        let v512 = Instr {
            class: InstrClass::Vec(VecWidth::W512),
            ..Instr::simple_alu()
        };
        let mut v = Vec::new();
        for _ in 0..500 {
            v.push(v256);
            v.push(v512);
        }
        let (core, _) = run_n(v, 1_000_000);
        assert!(core.counters().get(Event::UopsIssuedVectorWidthMismatch) >= 900);
    }

    #[test]
    fn uop_identities_hold() {
        let mut v = vec![Instr::simple_alu(); 3000];
        v.extend(vec![Instr::load(MemLevel::L2); 500]);
        v.extend(vec![Instr::branch(false); 500]);
        let (core, _) = run_n(v, 1_000_000);
        let c = core.counters();
        // Delivered µops by source must equal issued (no waste here) and
        // retired µops (single-µop instructions, no mispredicts).
        let delivered =
            c.get(Event::IdqDsbUops) + c.get(Event::IdqMiteUops) + c.get(Event::IdqMsUops);
        assert_eq!(delivered, 4000);
        assert_eq!(c.get(Event::UopsIssuedAny), 4000);
        assert_eq!(c.get(Event::UopsRetiredRetireSlots), 4000);
        assert_eq!(c.get(Event::UopsExecutedThread), 4000);
    }

    #[test]
    fn cycles_counter_matches_cycle() {
        let (core, s) = run_n(vec![Instr::simple_alu(); 100], 10_000);
        assert_eq!(
            core.counters().get(Event::CpuClkUnhaltedThread),
            core.cycle()
        );
        assert_eq!(s.cycles, core.cycle());
    }

    #[test]
    fn run_respects_max_cycles() {
        let mut core = Core::new(CoreConfig::tiny());
        let mut stream = std::iter::repeat(Instr::load(MemLevel::Dram));
        let s = core.run(&mut stream, 1_000);
        assert_eq!(s.cycles, 1_000);
        assert!(!core.is_drained());
    }

    #[test]
    fn state_persists_across_run_slices() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let instrs: Vec<Instr> = vec![Instr::simple_alu(); 10_000];
        let mut stream = instrs.into_iter();
        let a = core.run(&mut stream, 500);
        let b = core.run(&mut stream, 1_000_000);
        assert_eq!(a.instructions + b.instructions, 10_000);
        assert!(core.is_drained());
    }

    #[test]
    fn store_buffer_limit_throttles_stores() {
        let mk = |sb: usize| {
            let mut cfg = CoreConfig::skylake_server();
            cfg.memory.store_buffer = sb;
            let mut core = Core::new(cfg);
            let mut stream = std::iter::repeat_n(
                Instr {
                    class: InstrClass::Store,
                    ..Instr::simple_alu()
                },
                5_000,
            );
            let s = core.run(&mut stream, 1_000_000);
            (s, core)
        };
        let (tight, tight_core) = mk(1);
        let (wide, _) = mk(56);
        assert!(
            tight.ipc() < wide.ipc() * 0.6,
            "a 1-entry store buffer must throttle: {} vs {}",
            tight.ipc(),
            wide.ipc()
        );
        assert!(tight_core.counters().get(Event::ResourceStallsSb) > 0);
    }

    #[test]
    fn mshr_limit_throttles_memory_parallelism() {
        let mut narrow_cfg = CoreConfig::skylake_server();
        narrow_cfg.memory.mshrs = 1;
        let mut wide_cfg = CoreConfig::skylake_server();
        wide_cfg.memory.mshrs = 10;
        let mk = |cfg: CoreConfig| {
            let mut core = Core::new(cfg);
            let mut stream = std::iter::repeat_n(Instr::load(MemLevel::L3), 2_000);
            core.run(&mut stream, 10_000_000)
        };
        let narrow = mk(narrow_cfg);
        let wide = mk(wide_cfg);
        assert!(
            wide.ipc() > narrow.ipc() * 2.0,
            "MLP should scale with MSHRs: narrow {} wide {}",
            narrow.ipc(),
            wide.ipc()
        );
    }

    #[test]
    fn backend_pressure_counts_resource_stalls_and_fe_ok() {
        // DRAM-bound: the ROB fills and the front-end is fine.
        let (core, _) = run_n(vec![Instr::load(MemLevel::Dram); 1_000], 5_000_000);
        let c = core.counters();
        assert!(c.get(Event::ResourceStallsAny) > 0);
        assert!(c.get(Event::IdqUopsNotDeliveredCyclesFeWasOk) > 0);
        assert!(c.get(Event::CycleActivityStallsMemAny) > 0);
        assert!(c.get(Event::CycleActivityCyclesMemAny) > 0);
    }

    #[test]
    fn frontend_pressure_counts_unfilled_slots() {
        let missy = Instr {
            icache_miss: true,
            ..Instr::simple_alu()
        };
        let mut v = Vec::new();
        for _ in 0..100 {
            v.push(missy);
            v.push(Instr::simple_alu());
        }
        let (core, _) = run_n(v, 1_000_000);
        assert!(core.counters().get(Event::IdqUopsNotDeliveredCore) > 0);
        assert!(core.counters().get(Event::IdqUopsNotDeliveredCyclesLe1) > 0);
    }
}
