//! Branch-predictor models: 2-bit bimodal and gshare.
//!
//! The workload generator can mark branch mispredictions statistically
//! (a Bernoulli rate), or — for higher fidelity — synthesize branch
//! *outcomes* and let one of these predictors decide what a real
//! front-end would have mispredicted (see
//! `spire_workloads::PredictedBranches`). Both predictors use saturating
//! 2-bit counters; gshare additionally hashes global history into the
//! table index, letting it learn correlated patterns a bimodal table
//! cannot.

use serde::{Deserialize, Serialize};

/// A branch predictor: predicts a direction for a branch address, then
/// learns from the resolved outcome.
pub trait BranchPredictor {
    /// Predicts whether the branch at `pc` is taken.
    fn predict(&self, pc: u64) -> bool;

    /// Updates predictor state with the branch's resolved direction.
    fn update(&mut self, pc: u64, taken: bool);

    /// Convenience: predicts, updates, and reports whether the
    /// prediction was wrong.
    fn mispredicts(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        self.update(pc, taken);
        predicted != taken
    }
}

/// Saturating 2-bit counter helpers (0..=3; taken when >= 2).
#[inline]
fn counter_predicts(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// A bimodal predictor: one 2-bit counter per (hashed) branch address.
///
/// ```
/// use spire_sim::predictor::{BimodalPredictor, BranchPredictor};
///
/// let mut p = BimodalPredictor::new(10);
/// // A heavily-taken branch is learned after a couple of outcomes.
/// p.update(0x40_0000, true);
/// p.update(0x40_0000, true);
/// assert!(p.predict(0x40_0000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BimodalPredictor {
    table: Vec<u8>,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `2^log2_entries` counters, initialized
    /// to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 24.
    pub fn new(log2_entries: u32) -> Self {
        assert!(
            (1..=24).contains(&log2_entries),
            "table size must be 2^1 ..= 2^24 entries"
        );
        let n = 1usize << log2_entries;
        BimodalPredictor {
            table: vec![1; n],
            mask: (n - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Branch addresses are word-aligned; drop the low bits.
        ((pc >> 2) & self.mask) as usize
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict(&self, pc: u64) -> bool {
        counter_predicts(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i] = counter_update(self.table[i], taken);
    }
}

/// A gshare predictor: the table index is the branch address XORed with
/// a global taken/not-taken history register, so correlated branches get
/// distinct counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GsharePredictor {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a predictor with `2^log2_entries` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is outside `1..=24` or `history_bits`
    /// exceeds `log2_entries`.
    pub fn new(log2_entries: u32, history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&log2_entries),
            "table size must be 2^1 ..= 2^24 entries"
        );
        assert!(
            history_bits <= log2_entries,
            "history cannot be wider than the index"
        );
        let n = 1usize << log2_entries;
        GsharePredictor {
            table: vec![1; n],
            mask: (n - 1) as u64,
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// The current global-history register value.
    pub fn history(&self) -> u64 {
        self.history
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&self, pc: u64) -> bool {
        counter_predicts(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i] = counter_update(self.table[i], taken);
        let mask = (1u64 << self.history_bits).wrapping_sub(1);
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
    }
}

/// An oracle that never mispredicts — the baseline for predictor
/// comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfectPredictor;

impl BranchPredictor for PerfectPredictor {
    fn predict(&self, _pc: u64) -> bool {
        true
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn mispredicts(&mut self, _pc: u64, _taken: bool) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mispredict rate of a predictor on an outcome sequence for one pc.
    fn rate<P: BranchPredictor>(p: &mut P, pc: u64, outcomes: &[bool]) -> f64 {
        let misses = outcomes.iter().filter(|&&t| p.mispredicts(pc, t)).count();
        misses as f64 / outcomes.len() as f64
    }

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = BimodalPredictor::new(12);
        let outcomes = vec![true; 1000];
        assert!(rate(&mut p, 0x1000, &outcomes) < 0.01);
    }

    #[test]
    fn bimodal_tolerates_occasional_flips() {
        // 2-bit hysteresis: a single not-taken shouldn't flip the
        // prediction of a strongly-taken branch.
        let mut p = BimodalPredictor::new(12);
        for _ in 0..10 {
            p.update(0x2000, true);
        }
        p.update(0x2000, false);
        assert!(p.predict(0x2000));
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = BimodalPredictor::new(12);
        let outcomes: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        // Weak counters oscillate: bimodal stays bad on alternating
        // branches.
        assert!(rate(&mut p, 0x3000, &outcomes) > 0.3);
    }

    #[test]
    fn gshare_learns_alternation_via_history() {
        let mut p = GsharePredictor::new(12, 8);
        let outcomes: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        assert!(
            rate(&mut p, 0x3000, &outcomes) < 0.05,
            "gshare should learn a period-2 pattern"
        );
    }

    #[test]
    fn gshare_learns_longer_patterns() {
        let mut p = GsharePredictor::new(14, 10);
        let pattern = [true, true, false, true, false, false, true, false];
        let outcomes: Vec<bool> = (0..4000).map(|i| pattern[i % pattern.len()]).collect();
        assert!(rate(&mut p, 0x4000, &outcomes) < 0.1);
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = BimodalPredictor::new(12);
        for _ in 0..10 {
            p.update(0x1000, true);
            p.update(0x2000, false);
        }
        assert!(p.predict(0x1000));
        assert!(!p.predict(0x2000));
    }

    #[test]
    fn tiny_table_aliases_and_hurts() {
        // Two opposing branches that collide in a 2-entry table
        // ((pc >> 2) & 1 is 0 for both) but not in a large one: the
        // aliased counter thrashes while the large table is near-perfect.
        let outcomes: Vec<(u64, bool)> = (0..1000)
            .flat_map(|_| [(0x1000u64, true), (0x1008u64, false)])
            .collect();
        let run = |log2: u32| {
            let mut p = BimodalPredictor::new(log2);
            let misses = outcomes
                .iter()
                .filter(|&&(pc, t)| p.mispredicts(pc, t))
                .count();
            misses as f64 / outcomes.len() as f64
        };
        assert!(run(12) < 0.01, "large table must separate the branches");
        assert!(run(1) > 0.3, "aliased table must thrash");
    }

    #[test]
    fn perfect_predictor_never_misses() {
        let mut p = PerfectPredictor;
        for i in 0..100u64 {
            assert!(!p.mispredicts(i * 4, i % 3 == 0));
        }
    }

    #[test]
    fn history_register_masks_to_width() {
        let mut p = GsharePredictor::new(10, 4);
        for _ in 0..100 {
            p.update(0x10, true);
        }
        assert!(p.history() < 16);
    }

    #[test]
    #[should_panic(expected = "2^1 ..= 2^24")]
    fn zero_size_table_panics() {
        BimodalPredictor::new(0);
    }

    #[test]
    #[should_panic(expected = "wider than the index")]
    fn oversized_history_panics() {
        GsharePredictor::new(4, 8);
    }
}
