//! Property tests for the TMA formulas: for arbitrary workload profiles
//! the breakdown must stay a valid partition of the machine's slots.

use proptest::prelude::*;
use spire_core::catalog::UarchArea;
use spire_sim::{Core, CoreConfig};
use spire_tma::{analyze, TmaBreakdown};
use spire_workloads::{
    BranchBehavior, DependencyBehavior, FrontendBehavior, InstrMix, MemoryBehavior, WorkloadProfile,
};

/// Strategy: a random (valid) workload profile.
fn profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.0f64..0.5,  // load fraction
        0.0f64..0.3,  // branch fraction
        0.0f64..0.15, // mispredict rate
        0.0f64..1.0,  // dsb coverage
        0.0f64..0.3,  // dram weight
        0.0f64..1.0,  // dep rate
    )
        .prop_map(|(load, branch, misp, dsb, dram, dep)| {
            let mix = InstrMix {
                load,
                branch,
                ..InstrMix::scalar_int()
            };
            WorkloadProfile::named("prop", "random")
                .with_mix(mix)
                .with_memory(MemoryBehavior {
                    level_weights: [1.0 - dram, 0.05, 0.02, dram],
                    lock_rate: 0.0,
                })
                .with_frontend(FrontendBehavior {
                    dsb_coverage: dsb * 0.98,
                    ms_rate: 0.01,
                    icache_miss_rate: 0.001,
                    two_uop_rate: 0.1,
                })
                .with_branch(BranchBehavior {
                    mispredict_rate: misp,
                })
                .with_dependency(DependencyBehavior {
                    dep_rate: dep,
                    distance_p: 0.4,
                    max_distance: 16,
                })
        })
}

fn breakdown(p: &WorkloadProfile, seed: u64) -> TmaBreakdown {
    let cfg = CoreConfig::skylake_server();
    let mut core = Core::new(cfg);
    let mut stream = p.stream(seed);
    core.run(&mut stream, 60_000);
    analyze(core.counters(), &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Level-1 categories are non-negative and sum to 1.
    #[test]
    fn level1_is_a_partition(p in profile(), seed in 0u64..1000) {
        let t = breakdown(&p, seed);
        let l = t.level1;
        for v in [l.retiring, l.frontend_bound, l.bad_speculation, l.backend_bound] {
            prop_assert!((0.0..=1.0).contains(&v), "{}", t.summary());
        }
        prop_assert!((l.retiring + l.frontend_bound + l.bad_speculation + l.backend_bound - 1.0).abs() < 1e-9);
    }

    /// Level 2 splits back-end bound exactly into memory and core.
    #[test]
    fn level2_splits_backend(p in profile(), seed in 0u64..1000) {
        let t = breakdown(&p, seed);
        prop_assert!(t.memory.memory_bound >= -1e-12);
        prop_assert!(t.core.core_bound >= -1e-12);
        prop_assert!(
            (t.memory.memory_bound + t.core.core_bound - t.level1.backend_bound).abs() < 1e-9
        );
        prop_assert!(
            (t.frontend.fetch_latency + t.frontend.fetch_bandwidth
                - t.level1.frontend_bound)
                .abs()
                < 1e-9
        );
    }

    /// Decode-path µop shares form a distribution.
    #[test]
    fn decode_shares_partition(p in profile(), seed in 0u64..1000) {
        let t = breakdown(&p, seed);
        let s = t.frontend.dsb_uop_share + t.frontend.mite_uop_share + t.frontend.ms_uop_share;
        prop_assert!((s - 1.0).abs() < 1e-9, "shares sum to {s}");
    }

    /// Memory-level shares form a distribution when loads exist.
    #[test]
    fn memory_shares_partition(p in profile(), seed in 0u64..1000) {
        let t = breakdown(&p, seed);
        let s = t.memory.l1_share + t.memory.l2_share + t.memory.l3_share + t.memory.dram_share;
        if p.mix.load > 0.01 {
            prop_assert!((s - 1.0).abs() < 1e-6, "shares sum to {s}");
        } else {
            prop_assert!(s <= 1.0 + 1e-9);
        }
    }

    /// The dominant bottleneck is one of the four areas and matches the
    /// maximum fraction.
    #[test]
    fn dominant_bottleneck_is_the_max(p in profile(), seed in 0u64..1000) {
        let t = breakdown(&p, seed);
        let pairs = [
            (UarchArea::FrontEnd, t.level1.frontend_bound),
            (UarchArea::BadSpeculation, t.level1.bad_speculation),
            (UarchArea::Memory, t.memory.memory_bound),
            (UarchArea::Core, t.core.core_bound),
        ];
        let max = pairs.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let dom = t.dominant_bottleneck();
        let dom_value = pairs.iter().find(|(a, _)| *a == dom).unwrap().1;
        prop_assert!((dom_value - max).abs() < 1e-12);
    }
}
