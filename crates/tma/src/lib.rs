//! # spire-tma
//!
//! Top-Down Microarchitecture Analysis (Yasin, ISPASS 2014) over the
//! simulated PMU — the reproduction's stand-in for Intel VTune, the
//! baseline tool the paper validates SPIRE against.
//!
//! TMA partitions a core's issue slots (`pipeline width × cycles`) into
//! four top-level categories:
//!
//! 1. **Retiring** — slots that did useful work,
//! 2. **Front-End Bound** — slots lost to fetch/decode stalls,
//! 3. **Bad Speculation** — slots lost to incorrect speculation,
//! 4. **Back-End Bound** — slots lost to back-end stalls,
//!
//! and refines back-end bound into **Memory Bound** vs **Core Bound** at
//! level 2, with selected level-3 detail (cache-level shares, divider
//! activity, decode-path shares) matching the observations the paper
//! quotes from VTune for its four test workloads.
//!
//! ```
//! use spire_sim::{Core, CoreConfig, Instr, MemLevel};
//! use spire_tma::analyze;
//!
//! let cfg = CoreConfig::skylake_server();
//! let mut core = Core::new(cfg);
//! let mut wl = std::iter::repeat(Instr::load(MemLevel::Dram)).take(2_000);
//! core.run(&mut wl, 10_000_000);
//! let tma = analyze(core.counters(), &cfg);
//! assert!(tma.level1.backend_bound > 0.5);
//! assert!(tma.memory.memory_bound > tma.core.core_bound);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use spire_core::catalog::UarchArea;
use spire_sim::{CoreConfig, CounterFile, Event};

/// The four top-level TMA categories plus Retiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TmaCategory {
    /// Slots doing useful work (not a bottleneck).
    Retiring,
    /// Slots lost to front-end stalls.
    FrontEnd,
    /// Slots lost to incorrect speculation.
    BadSpeculation,
    /// Back-end slots lost to memory stalls.
    Memory,
    /// Back-end slots lost to non-memory stalls.
    Core,
}

impl std::fmt::Display for TmaCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TmaCategory::Retiring => "Retiring",
            TmaCategory::FrontEnd => "Front-End",
            TmaCategory::BadSpeculation => "Bad Speculation",
            TmaCategory::Memory => "Memory",
            TmaCategory::Core => "Core",
        };
        f.write_str(s)
    }
}

impl TmaCategory {
    /// Maps a bottleneck category to the metric-catalog area; `None` for
    /// Retiring, which is not a bottleneck.
    pub fn area(self) -> Option<UarchArea> {
        match self {
            TmaCategory::Retiring => None,
            TmaCategory::FrontEnd => Some(UarchArea::FrontEnd),
            TmaCategory::BadSpeculation => Some(UarchArea::BadSpeculation),
            TmaCategory::Memory => Some(UarchArea::Memory),
            TmaCategory::Core => Some(UarchArea::Core),
        }
    }
}

/// Level-1 slot fractions. The four fields sum to 1 (clamped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TmaLevel1 {
    /// Fraction of slots that retired useful µops.
    pub retiring: f64,
    /// Fraction of slots the front-end failed to fill.
    pub frontend_bound: f64,
    /// Fraction of slots wasted on wrong-path work and recovery.
    pub bad_speculation: f64,
    /// Fraction of slots stalled in the back-end.
    pub backend_bound: f64,
}

/// Front-end detail (level 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontendDetail {
    /// Fraction of front-end-bound slots from long delivery outages
    /// (i-cache misses, MS switches, redirects).
    pub fetch_latency: f64,
    /// Remaining front-end-bound slots (bandwidth shortfall).
    pub fetch_bandwidth: f64,
    /// Share of delivered µops that came from the DSB.
    pub dsb_uop_share: f64,
    /// Share of delivered µops from the legacy decode pipeline.
    pub mite_uop_share: f64,
    /// Share of delivered µops from the microcode sequencer.
    pub ms_uop_share: f64,
    /// Instruction-cache misses per thousand retired instructions.
    pub icache_miss_pki: f64,
}

/// Bad-speculation detail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BadSpecDetail {
    /// Branch mispredictions per thousand retired instructions.
    pub mispredicts_pki: f64,
    /// Fraction of cycles spent in allocator recovery.
    pub recovery_cycle_frac: f64,
}

/// Memory-bound detail (level 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryDetail {
    /// The level-2 memory-bound fraction of all slots.
    pub memory_bound: f64,
    /// Latency-weighted share of load service attributable to L1 hits.
    pub l1_share: f64,
    /// Latency-weighted share from L2 hits.
    pub l2_share: f64,
    /// Latency-weighted share from L3 hits.
    pub l3_share: f64,
    /// Latency-weighted share from DRAM (the paper's "DRAM bound").
    pub dram_share: f64,
    /// Locked loads per thousand retired instructions.
    pub lock_loads_pki: f64,
}

/// Core-bound detail (level 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreDetail {
    /// The level-2 core-bound fraction of all slots.
    pub core_bound: f64,
    /// Fraction of cycles the divider was active.
    pub divider_active_frac: f64,
    /// Fraction of cycles with zero execution ports utilized (while
    /// stalled for non-memory reasons).
    pub ports_0_frac: f64,
    /// Fraction of cycles with exactly one port utilized.
    pub ports_1_frac: f64,
    /// Fraction of cycles with exactly two ports utilized.
    pub ports_2_frac: f64,
}

/// A complete TMA breakdown of one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TmaBreakdown {
    /// Level-1 slot fractions.
    pub level1: TmaLevel1,
    /// Front-end refinement.
    pub frontend: FrontendDetail,
    /// Bad-speculation refinement.
    pub bad_speculation: BadSpecDetail,
    /// Memory-bound refinement.
    pub memory: MemoryDetail,
    /// Core-bound refinement.
    pub core: CoreDetail,
    /// Retired instructions per cycle.
    pub ipc: f64,
}

impl TmaBreakdown {
    /// The dominant *bottleneck* (ignoring Retiring): the largest of
    /// front-end, bad speculation, memory, and core fractions.
    pub fn dominant_bottleneck(&self) -> UarchArea {
        let candidates = [
            (UarchArea::FrontEnd, self.level1.frontend_bound),
            (UarchArea::BadSpeculation, self.level1.bad_speculation),
            (UarchArea::Memory, self.memory.memory_bound),
            (UarchArea::Core, self.core.core_bound),
        ];
        candidates
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }

    /// The largest level-1/2 category including Retiring, mirroring how
    /// the paper reports e.g. "43% retiring, 40% core-bound".
    pub fn main_category(&self) -> TmaCategory {
        let candidates = [
            (TmaCategory::Retiring, self.level1.retiring),
            (TmaCategory::FrontEnd, self.level1.frontend_bound),
            (TmaCategory::BadSpeculation, self.level1.bad_speculation),
            (TmaCategory::Memory, self.memory.memory_bound),
            (TmaCategory::Core, self.core.core_bound),
        ];
        candidates
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }

    /// Renders the breakdown as a VTune-style hierarchy, with level-1
    /// categories, their level-2 refinements, and selected level-3
    /// detail, each as a percentage of pipeline slots (or the noted
    /// unit).
    pub fn to_tree(&self) -> String {
        let pct = |v: f64| format!("{:5.1}%", v * 100.0);
        let mut out = String::new();
        let l = &self.level1;
        out.push_str(&format!("Retiring            {}\n", pct(l.retiring)));
        out.push_str(&format!("Front-End Bound     {}\n", pct(l.frontend_bound)));
        out.push_str(&format!(
            "├─ Fetch Latency    {}\n",
            pct(self.frontend.fetch_latency)
        ));
        out.push_str(&format!(
            "└─ Fetch Bandwidth  {}   (dsb {:.1}% | mite {:.1}% | ms {:.1}% of µops)\n",
            pct(self.frontend.fetch_bandwidth),
            self.frontend.dsb_uop_share * 100.0,
            self.frontend.mite_uop_share * 100.0,
            self.frontend.ms_uop_share * 100.0
        ));
        out.push_str(&format!("Bad Speculation     {}\n", pct(l.bad_speculation)));
        out.push_str(&format!(
            "└─ Mispredicts      {:.2}/kinstr (recovery {:.1}% of cycles)\n",
            self.bad_speculation.mispredicts_pki,
            self.bad_speculation.recovery_cycle_frac * 100.0
        ));
        out.push_str(&format!("Back-End Bound      {}\n", pct(l.backend_bound)));
        out.push_str(&format!(
            "├─ Memory Bound     {}   (l1 {:.1}% | l2 {:.1}% | l3 {:.1}% | dram {:.1}% of load cost)\n",
            pct(self.memory.memory_bound),
            self.memory.l1_share * 100.0,
            self.memory.l2_share * 100.0,
            self.memory.l3_share * 100.0,
            self.memory.dram_share * 100.0
        ));
        out.push_str(&format!(
            "│  └─ Lock Loads    {:.2}/kinstr\n",
            self.memory.lock_loads_pki
        ));
        out.push_str(&format!(
            "└─ Core Bound       {}   (divider {:.1}% | 0p {:.1}% | 1p {:.1}% | 2p {:.1}% of cycles)\n",
            pct(self.core.core_bound),
            self.core.divider_active_frac * 100.0,
            self.core.ports_0_frac * 100.0,
            self.core.ports_1_frac * 100.0,
            self.core.ports_2_frac * 100.0
        ));
        out.push_str(&format!("IPC                 {:5.2}\n", self.ipc));
        out
    }

    /// Formats the breakdown as a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "retiring {:.1}% | front-end {:.1}% | bad-spec {:.1}% | memory {:.1}% | core {:.1}% (ipc {:.2})",
            self.level1.retiring * 100.0,
            self.level1.frontend_bound * 100.0,
            self.level1.bad_speculation * 100.0,
            self.memory.memory_bound * 100.0,
            self.core.core_bound * 100.0,
            self.ipc
        )
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Computes the TMA breakdown from raw counters and the core
/// configuration they were measured on.
///
/// All fractions are clamped to `[0, 1]`; the level-1 categories are
/// normalized to sum to 1 when the measurement is non-empty.
pub fn analyze(counters: &CounterFile, config: &CoreConfig) -> TmaBreakdown {
    let g = |e: Event| counters.get(e) as f64;
    let cycles = g(Event::CpuClkUnhaltedThread);
    let width = config.slots_per_cycle() as f64;
    let slots = (cycles * width).max(1.0);
    let instrs = g(Event::InstRetiredAny);

    // --- Level 1. ----------------------------------------------------------
    let retiring = clamp01(g(Event::UopsRetiredRetireSlots) / slots);
    let frontend_bound = clamp01(g(Event::IdqUopsNotDeliveredCore) / slots);
    let bad_spec = clamp01(
        (g(Event::UopsIssuedAny) - g(Event::UopsRetiredRetireSlots)
            + width * g(Event::IntMiscRecoveryCycles))
            / slots,
    );
    let backend_bound = clamp01(1.0 - retiring - frontend_bound - bad_spec);
    // Normalize so the four categories sum to exactly 1.
    let total = retiring + frontend_bound + bad_spec + backend_bound;
    let (retiring, frontend_bound, bad_spec, backend_bound) = if total > 0.0 {
        (
            retiring / total,
            frontend_bound / total,
            bad_spec / total,
            backend_bound / total,
        )
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };

    // --- Level 2: memory vs core. -------------------------------------------
    // Memory-bound cycles are execution stalls with an outstanding load
    // miss; core-bound pressure additionally includes poorly-utilized
    // execution cycles (Intel's "few µops executed" term), which is what
    // separates latency-chain workloads from cache-miss workloads.
    let stalls_total = g(Event::CycleActivityStallsTotal);
    let stalls_mem = g(Event::CycleActivityStallsMemAny);
    let few_ports = g(Event::ExeActivity1PortsUtil);
    let backend_cycles = (stalls_total + few_ports).max(1.0);
    let mem_frac = ratio(stalls_mem, backend_cycles);
    let memory_bound = backend_bound * mem_frac;
    let core_bound = backend_bound - memory_bound;

    // --- Level 2: fetch latency vs bandwidth. --------------------------------
    let le1 = g(Event::IdqUopsNotDeliveredCyclesLe1);
    let fetch_latency_slots = (le1 * width).min(g(Event::IdqUopsNotDeliveredCore));
    let fetch_latency = frontend_bound
        * ratio(
            fetch_latency_slots,
            g(Event::IdqUopsNotDeliveredCore).max(1.0),
        );
    let fetch_bandwidth = frontend_bound - fetch_latency;

    // --- Level 3 details. -----------------------------------------------------
    let dsb = g(Event::IdqDsbUops);
    let mite = g(Event::IdqMiteUops);
    let ms = g(Event::IdqMsUops);
    let delivered = (dsb + mite + ms).max(1.0);

    let m = &config.memory;
    let l1_cost = g(Event::MemLoadRetiredL1Hit) * m.l1_latency as f64;
    let l2_cost = g(Event::MemLoadRetiredL2Hit) * m.l2_latency as f64;
    let l3_cost = g(Event::MemLoadRetiredL3Hit) * m.l3_latency as f64;
    let dram_cost = g(Event::MemLoadRetiredDramHit) * m.dram_latency as f64;
    let mem_cost = (l1_cost + l2_cost + l3_cost + dram_cost).max(1.0);

    let pki = |count: f64| ratio(count * 1000.0, instrs.max(1.0));

    TmaBreakdown {
        level1: TmaLevel1 {
            retiring,
            frontend_bound,
            bad_speculation: bad_spec,
            backend_bound,
        },
        frontend: FrontendDetail {
            fetch_latency,
            fetch_bandwidth,
            dsb_uop_share: dsb / delivered,
            mite_uop_share: mite / delivered,
            ms_uop_share: ms / delivered,
            icache_miss_pki: pki(g(Event::IcacheMisses)),
        },
        bad_speculation: BadSpecDetail {
            mispredicts_pki: pki(g(Event::BrMispRetiredAllBranches)),
            recovery_cycle_frac: ratio(g(Event::IntMiscRecoveryCycles), cycles.max(1.0)),
        },
        memory: MemoryDetail {
            memory_bound,
            l1_share: l1_cost / mem_cost,
            l2_share: l2_cost / mem_cost,
            l3_share: l3_cost / mem_cost,
            dram_share: dram_cost / mem_cost,
            lock_loads_pki: pki(g(Event::MemInstRetiredLockLoads)),
        },
        core: CoreDetail {
            core_bound,
            divider_active_frac: ratio(g(Event::ArithDividerActive), cycles.max(1.0)),
            ports_0_frac: ratio(g(Event::ExeActivityExeBound0Ports), cycles.max(1.0)),
            ports_1_frac: ratio(g(Event::ExeActivity1PortsUtil), cycles.max(1.0)),
            ports_2_frac: ratio(g(Event::ExeActivity2PortsUtil), cycles.max(1.0)),
        },
        ipc: ratio(instrs, cycles.max(1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_sim::{Core, Instr, InstrClass, MemLevel};

    fn analyze_stream(instrs: Vec<Instr>, max_cycles: u64) -> TmaBreakdown {
        let cfg = CoreConfig::skylake_server();
        let mut core = Core::new(cfg);
        let mut stream = instrs.into_iter();
        core.run(&mut stream, max_cycles);
        analyze(core.counters(), &cfg)
    }

    #[test]
    fn level1_sums_to_one() {
        let t = analyze_stream(vec![Instr::simple_alu(); 5_000], 1_000_000);
        let l = t.level1;
        let sum = l.retiring + l.frontend_bound + l.bad_speculation + l.backend_bound;
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn clean_alu_stream_is_mostly_retiring() {
        let t = analyze_stream(vec![Instr::simple_alu(); 20_000], 1_000_000);
        assert!(t.level1.retiring > 0.8, "{}", t.summary());
        assert_eq!(t.main_category(), TmaCategory::Retiring);
    }

    #[test]
    fn dram_stream_is_memory_bound() {
        let t = analyze_stream(vec![Instr::load(MemLevel::Dram); 3_000], 10_000_000);
        assert_eq!(t.dominant_bottleneck(), UarchArea::Memory);
        assert!(t.memory.memory_bound > 0.5, "{}", t.summary());
        assert!(t.memory.dram_share > 0.9);
    }

    #[test]
    fn mispredict_stream_is_bad_speculation_bound() {
        let mut v = Vec::new();
        for k in 0..10_000 {
            v.push(Instr::branch(k % 8 == 0));
            v.push(Instr::simple_alu());
        }
        let t = analyze_stream(v, 10_000_000);
        assert_eq!(
            t.dominant_bottleneck(),
            UarchArea::BadSpeculation,
            "{}",
            t.summary()
        );
        assert!(t.bad_speculation.mispredicts_pki > 30.0);
    }

    #[test]
    fn serial_divider_stream_is_core_bound() {
        let div = Instr {
            class: InstrClass::IntDiv,
            dep_distance: 1,
            ..Instr::simple_alu()
        };
        let t = analyze_stream(vec![div; 2_000], 10_000_000);
        assert_eq!(t.dominant_bottleneck(), UarchArea::Core, "{}", t.summary());
        assert!(t.core.divider_active_frac > 0.5);
    }

    #[test]
    fn legacy_decode_stream_is_frontend_bound() {
        let mite = Instr {
            decode: spire_sim::DecodeSource::Mite,
            ..Instr::simple_alu()
        };
        let t = analyze_stream(vec![mite; 20_000], 10_000_000);
        assert_eq!(
            t.dominant_bottleneck(),
            UarchArea::FrontEnd,
            "{}",
            t.summary()
        );
        assert!(t.frontend.mite_uop_share > 0.95);
    }

    #[test]
    fn memory_shares_sum_to_one_with_loads() {
        let mut v = vec![Instr::load(MemLevel::L1); 1_000];
        v.extend(vec![Instr::load(MemLevel::L3); 200]);
        let t = analyze_stream(v, 10_000_000);
        let s = t.memory.l1_share + t.memory.l2_share + t.memory.l3_share + t.memory.dram_share;
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_measurement_is_all_zero() {
        let cfg = CoreConfig::skylake_server();
        let t = analyze(&spire_sim::CounterFile::new(), &cfg);
        assert_eq!(t.level1.retiring, 0.0);
        assert_eq!(t.ipc, 0.0);
    }

    #[test]
    fn category_display_and_area_mapping() {
        assert_eq!(TmaCategory::FrontEnd.to_string(), "Front-End");
        assert_eq!(TmaCategory::Retiring.area(), None);
        assert_eq!(TmaCategory::Memory.area(), Some(UarchArea::Memory));
    }

    #[test]
    fn tree_renders_every_level() {
        let t = analyze_stream(vec![Instr::load(MemLevel::L3); 500], 1_000_000);
        let tree = t.to_tree();
        for needle in [
            "Retiring",
            "Front-End Bound",
            "Fetch Latency",
            "Bad Speculation",
            "Memory Bound",
            "Core Bound",
            "Lock Loads",
            "IPC",
        ] {
            assert!(tree.contains(needle), "tree missing {needle}:\n{tree}");
        }
    }

    #[test]
    fn summary_mentions_all_categories() {
        let t = analyze_stream(vec![Instr::simple_alu(); 1_000], 100_000);
        let s = t.summary();
        for needle in ["retiring", "front-end", "bad-spec", "memory", "core", "ipc"] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
    }
}
