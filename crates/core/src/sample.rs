//! SPIRE's input data model: performance-counter [`Sample`]s and the
//! columnar [`SampleSet`] collection.
//!
//! A sample (paper Section III-A) describes one measurement period of a
//! workload executing on the processor under analysis:
//!
//! * `T` — length of the period ([`Sample::time`]),
//! * `W` — quantity of work completed ([`Sample::work`]),
//! * `M_x` — increase of performance metric `x` ([`Sample::metric_delta`]),
//! * `P = W / T` — average throughput ([`Sample::throughput`]),
//! * `I_x = W / M_x` — metric-specific operational intensity
//!   ([`Sample::intensity`]).
//!
//! The units of `T` and `W` must be consistent across all samples (for IPC
//! analysis: `W` in retired instructions, `T` in unhalted core cycles).
//! `M_x` is in whatever unit the associated metric counts.
//!
//! # Storage layout
//!
//! [`SampleSet`] stores samples **grouped by metric** in struct-of-arrays
//! form: one [`MetricColumn`] per distinct [`MetricId`], each holding the
//! `time`/`work`/`metric_delta` fields as parallel `Vec<f64>` columns.
//! Training iterates per-metric groups (424 metrics in the paper's setup),
//! so the grouped layout makes [`SampleSet::by_metric`] a zero-copy view
//! instead of a per-call `BTreeMap<_, Vec<&Sample>>` allocation, and the
//! columnar fields let the roofline fitter stream contiguous `&[f64]`
//! slices. A row-oriented compatibility API ([`SampleSet::push`],
//! [`SampleSet::iter`]) and the serialized `{"samples": [...]}` format are
//! preserved.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

use serde::de::Deserializer;
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};

/// Identifier of a performance metric (one hardware counter event).
///
/// Metric ids are interned strings: cloning is cheap (an atomic reference
/// count), and equality/ordering follow the underlying string. Construct one
/// from any string-like value:
///
/// ```
/// use spire_core::MetricId;
///
/// let a = MetricId::new("br_misp_retired.all_branches");
/// let b: MetricId = "br_misp_retired.all_branches".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "br_misp_retired.all_branches");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(Arc<str>);

impl MetricId {
    /// Creates a metric id from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        MetricId(Arc::from(name.as_ref()))
    }

    /// Returns the metric name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MetricId {
    fn from(s: &str) -> Self {
        MetricId::new(s)
    }
}

impl From<String> for MetricId {
    fn from(s: String) -> Self {
        MetricId(Arc::from(s.as_str()))
    }
}

impl AsRef<str> for MetricId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for MetricId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Serialize for MetricId {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for MetricId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(MetricId::from(s))
    }
}

/// One measurement period for a single performance metric.
///
/// Invariants (enforced by [`Sample::new`]):
/// * `time` is finite and strictly positive,
/// * `work` is finite and non-negative,
/// * `metric_delta` is finite and non-negative.
///
/// A `metric_delta` of zero yields an **infinite** operational intensity
/// (`I_x = W / 0`); such samples anchor the right-region fit's `Start`
/// vertex (paper Section III-D).
///
/// ```
/// use spire_core::Sample;
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// // 2e9 cycles, 3e9 retired instructions, 1.5e7 branch mispredictions.
/// let s = Sample::new("br_misp_retired.all_branches", 2e9, 3e9, 1.5e7)?;
/// assert_eq!(s.throughput(), 1.5); // IPC
/// assert_eq!(s.intensity(), 200.0); // instructions per misprediction
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    metric: MetricId,
    time: f64,
    work: f64,
    metric_delta: f64,
}

impl Sample {
    /// Creates a validated sample.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidSample`] if `time` is not finite and
    /// strictly positive, or if `work` or `metric_delta` is not finite and
    /// non-negative.
    pub fn new(
        metric: impl Into<MetricId>,
        time: f64,
        work: f64,
        metric_delta: f64,
    ) -> Result<Self> {
        validate_parts(time, work, metric_delta)?;
        Ok(Sample {
            metric: metric.into(),
            time,
            work,
            metric_delta,
        })
    }

    /// The metric this sample is associated with.
    pub fn metric(&self) -> &MetricId {
        &self.metric
    }

    /// `T`: length of the measurement period.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// `W`: quantity of work completed during the period.
    pub fn work(&self) -> f64 {
        self.work
    }

    /// `M_x`: increase of the associated metric during the period.
    pub fn metric_delta(&self) -> f64 {
        self.metric_delta
    }

    /// `P = W / T`: average throughput over the period.
    pub fn throughput(&self) -> f64 {
        self.work / self.time
    }

    /// `I_x = W / M_x`: metric-specific operational intensity.
    ///
    /// Returns `f64::INFINITY` when `M_x` is zero (the metric never fired
    /// during the period), matching the paper's `I_x = ∞` samples. Returns
    /// `0.0` when both `W` and `M_x` are zero: a period that did no work is
    /// treated as zero intensity rather than an indeterminate `0/0`.
    pub fn intensity(&self) -> f64 {
        intensity_of(self.work, self.metric_delta)
    }
}

/// Validates the `(time, work, metric_delta)` domain constraints shared by
/// [`Sample::new`] and the streaming [`SampleSet::push_parts`] ingest path.
fn validate_parts(time: f64, work: f64, metric_delta: f64) -> Result<()> {
    if !time.is_finite() || time <= 0.0 {
        return Err(SpireError::InvalidSample {
            field: "time",
            value: time,
            constraint: "must be finite and > 0",
        });
    }
    if !work.is_finite() || work < 0.0 {
        return Err(SpireError::InvalidSample {
            field: "work",
            value: work,
            constraint: "must be finite and >= 0",
        });
    }
    if !metric_delta.is_finite() || metric_delta < 0.0 {
        return Err(SpireError::InvalidSample {
            field: "metric_delta",
            value: metric_delta,
            constraint: "must be finite and >= 0",
        });
    }
    Ok(())
}

/// Shared `I_x = W / M_x` rule (see [`Sample::intensity`]).
fn intensity_of(work: f64, metric_delta: f64) -> f64 {
    if metric_delta == 0.0 {
        if work == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        work / metric_delta
    }
}

/// Lazily computed derived columns of a [`MetricColumn`].
#[derive(Debug, Clone)]
struct Derived {
    throughput: Vec<f64>,
    intensity: Vec<f64>,
}

/// All samples of one metric in struct-of-arrays form.
///
/// The raw `time`/`work`/`metric_delta` fields are stored as parallel
/// `Vec<f64>` columns in insertion order. The derived `throughput` and
/// `intensity` columns are computed on first access and cached; any
/// mutation ([`MetricColumn::push`]) invalidates the cache.
///
/// Equality compares the metric id and raw columns only — the derived
/// cache is a pure function of them.
///
/// ```
/// use spire_core::MetricColumn;
///
/// let mut col = MetricColumn::new("stalls".into());
/// col.push(2.0, 8.0, 4.0);
/// col.push(4.0, 8.0, 0.0);
/// assert_eq!(col.throughputs(), &[4.0, 2.0]);
/// assert_eq!(col.intensities()[0], 2.0);
/// assert!(col.intensities()[1].is_infinite());
/// ```
#[derive(Debug, Clone)]
pub struct MetricColumn {
    metric: MetricId,
    time: Vec<f64>,
    work: Vec<f64>,
    metric_delta: Vec<f64>,
    derived: OnceLock<Derived>,
}

impl MetricColumn {
    /// Creates an empty column for `metric`.
    pub fn new(metric: MetricId) -> Self {
        MetricColumn {
            metric,
            time: Vec::new(),
            work: Vec::new(),
            metric_delta: Vec::new(),
            derived: OnceLock::new(),
        }
    }

    /// Builds a column directly from its three raw arrays, in row order.
    ///
    /// This is the bulk-load path for the binary column file
    /// ([`crate::colfile`]): decoded `f64` columns move straight in with no
    /// per-row work. Like [`SampleSet::push_unchecked`], the rows bypass
    /// [`Sample::new`] domain validation — deserialized data already does —
    /// so downstream code must tolerate hostile values.
    ///
    /// # Errors
    ///
    /// [`SpireError::InvalidConfig`] if the three arrays differ in length
    /// (the columns would silently desynchronize otherwise).
    pub fn from_raw_columns(
        metric: MetricId,
        time: Vec<f64>,
        work: Vec<f64>,
        metric_delta: Vec<f64>,
    ) -> Result<Self> {
        if time.len() != work.len() || time.len() != metric_delta.len() {
            return Err(SpireError::InvalidConfig {
                field: "columns",
                reason: format!(
                    "column lengths differ for metric `{}`: time {} work {} metric_delta {}",
                    metric,
                    time.len(),
                    work.len(),
                    metric_delta.len()
                ),
            });
        }
        Ok(MetricColumn {
            metric,
            time,
            work,
            metric_delta,
            derived: OnceLock::new(),
        })
    }

    /// The metric every row of this column belongs to.
    pub fn metric(&self) -> &MetricId {
        &self.metric
    }

    /// Number of rows (samples) in the column.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Returns `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Appends one row. The caller must uphold the [`Sample::new`] domain
    /// constraints (use [`SampleSet::push`] / [`SampleSet::push_parts`] for
    /// validated ingest). Invalidates the derived-column cache.
    pub fn push(&mut self, time: f64, work: f64, metric_delta: f64) {
        self.time.push(time);
        self.work.push(work);
        self.metric_delta.push(metric_delta);
        self.derived = OnceLock::new();
    }

    /// The `T` column, in insertion order.
    pub fn times(&self) -> &[f64] {
        &self.time
    }

    /// The `W` column, in insertion order.
    pub fn works(&self) -> &[f64] {
        &self.work
    }

    /// The `M_x` column, in insertion order.
    pub fn metric_deltas(&self) -> &[f64] {
        &self.metric_delta
    }

    /// The derived `P = W / T` column (computed on first access, cached).
    pub fn throughputs(&self) -> &[f64] {
        &self.derived().throughput
    }

    /// The derived `I_x = W / M_x` column (computed on first access,
    /// cached). Follows the [`Sample::intensity`] zero rules, so rows may
    /// be `f64::INFINITY`.
    pub fn intensities(&self) -> &[f64] {
        &self.derived().intensity
    }

    /// Sum of the `T` column.
    pub fn total_time(&self) -> f64 {
        self.time.iter().sum()
    }

    /// Sum of the `W` column.
    pub fn total_work(&self) -> f64 {
        self.work.iter().sum()
    }

    /// Appends another column's raw rows (which must belong to the same
    /// metric), invalidating the derived-column cache. This is the single
    /// bulk-mutation path, so cache invalidation cannot be forgotten at a
    /// call site.
    pub(crate) fn append_rows(&mut self, other: MetricColumn) {
        debug_assert_eq!(self.metric, other.metric, "column metric mismatch");
        self.time.extend(other.time);
        self.work.extend(other.work);
        self.metric_delta.extend(other.metric_delta);
        self.derived = OnceLock::new();
    }

    /// Reconstructs row `i` as an owned [`Sample`].
    pub fn get(&self, i: usize) -> Option<Sample> {
        if i >= self.len() {
            return None;
        }
        Some(Sample {
            metric: self.metric.clone(),
            time: self.time[i],
            work: self.work[i],
            metric_delta: self.metric_delta[i],
        })
    }

    /// Iterates the rows as owned [`Sample`]s, in insertion order.
    pub fn samples(&self) -> impl ExactSizeIterator<Item = Sample> + '_ {
        (0..self.len()).map(move |i| Sample {
            metric: self.metric.clone(),
            time: self.time[i],
            work: self.work[i],
            metric_delta: self.metric_delta[i],
        })
    }

    fn derived(&self) -> &Derived {
        self.derived.get_or_init(|| Derived {
            throughput: self
                .work
                .iter()
                .zip(&self.time)
                .map(|(&w, &t)| w / t)
                .collect(),
            intensity: self
                .work
                .iter()
                .zip(&self.metric_delta)
                .map(|(&w, &m)| intensity_of(w, m))
                .collect(),
        })
    }
}

impl PartialEq for MetricColumn {
    fn eq(&self, other: &Self) -> bool {
        self.metric == other.metric
            && self.time == other.time
            && self.work == other.work
            && self.metric_delta == other.metric_delta
    }
}

/// A collection of [`Sample`]s stored grouped by metric.
///
/// `SampleSet` is the unit of data exchanged with the model: training
/// consumes one, and each analyzed workload is described by one.
///
/// Internally the set keeps one [`MetricColumn`] per distinct metric,
/// ordered by metric name, so [`SampleSet::by_metric`] is a zero-copy
/// view and [`SampleSet::column`] is a binary search. Row-level insertion
/// order is preserved *within* each metric group; whole-set iteration
/// ([`SampleSet::iter`]) visits groups in metric-name order.
///
/// ```
/// use spire_core::{Sample, SampleSet};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut set = SampleSet::new();
/// set.push(Sample::new("stalls", 100.0, 150.0, 10.0)?);
/// set.push(Sample::new("stalls", 100.0, 180.0, 5.0)?);
/// set.push(Sample::new("l3_miss", 100.0, 150.0, 2.0)?);
/// assert_eq!(set.len(), 3);
/// assert_eq!(set.metrics().count(), 2);
/// let stalls = set.column(&"stalls".into()).unwrap();
/// assert_eq!(stalls.throughputs(), &[1.5, 1.8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSet {
    /// Columns sorted by metric name (the `by_metric` iteration order).
    columns: Vec<MetricColumn>,
    /// Total row count across all columns.
    len: usize,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Builds a set directly from complete per-metric columns.
    ///
    /// This is the bulk-load path for the binary column file
    /// ([`crate::colfile`]): the columns move in without re-grouping or
    /// per-row validation. The caller must supply them already sorted by
    /// metric name with no duplicates — the invariant every accessor
    /// (binary search in [`SampleSet::column`], the [`SampleSet::by_metric`]
    /// iteration order) relies on.
    ///
    /// # Errors
    ///
    /// [`SpireError::InvalidConfig`] if the columns are not strictly
    /// ascending by metric name.
    pub fn from_columns(columns: Vec<MetricColumn>) -> Result<Self> {
        for pair in columns.windows(2) {
            if pair[0].metric() >= pair[1].metric() {
                return Err(SpireError::InvalidConfig {
                    field: "columns",
                    reason: format!(
                        "metric columns must be strictly sorted by name; `{}` precedes `{}`",
                        pair[0].metric(),
                        pair[1].metric()
                    ),
                });
            }
        }
        let len = columns.iter().map(MetricColumn::len).sum();
        Ok(SampleSet { columns, len })
    }

    /// Creates an empty sample set expecting roughly `n` samples.
    ///
    /// The grouped layout cannot pre-size per-metric columns, so this is
    /// only a compatibility shim for the former row-store constructor; it
    /// currently allocates nothing up front.
    pub fn with_capacity(_n: usize) -> Self {
        SampleSet::default()
    }

    /// Appends a sample to its metric's column.
    pub fn push(&mut self, sample: Sample) {
        let Sample {
            metric,
            time,
            work,
            metric_delta,
        } = sample;
        self.column_mut(metric).push(time, work, metric_delta);
        self.len += 1;
    }

    /// Streaming ingest: validates and appends one measurement without
    /// materializing a [`Sample`].
    ///
    /// This is the hot path for counter sessions that emit one reading per
    /// multiplexing slice — the fields go straight into the metric's
    /// columns.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidSample`] under the same domain
    /// constraints as [`Sample::new`].
    pub fn push_parts(
        &mut self,
        metric: MetricId,
        time: f64,
        work: f64,
        metric_delta: f64,
    ) -> Result<()> {
        validate_parts(time, work, metric_delta)?;
        self.column_mut(metric).push(time, work, metric_delta);
        self.len += 1;
        Ok(())
    }

    /// Appends one measurement **without** the [`Sample::new`] domain
    /// validation — NaN, infinite, zero, and negative fields all pass.
    ///
    /// Deserialization already admits such rows (serde builds columns
    /// directly from the wire format), so downstream code must tolerate
    /// them anyway; this constructor exists so the fault-injection
    /// harness ([`crate::fault`]) can build those hostile sets
    /// deliberately and deterministically. Prefer [`SampleSet::push`] /
    /// [`SampleSet::push_parts`] everywhere else.
    pub fn push_unchecked(&mut self, metric: MetricId, time: f64, work: f64, metric_delta: f64) {
        self.column_mut(metric).push(time, work, metric_delta);
        self.len += 1;
    }

    /// Number of samples in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the samples grouped by metric (name order), rows in
    /// insertion order within each group. Yields owned [`Sample`]s
    /// reconstructed from the columns.
    pub fn iter(&self) -> SampleIter<'_> {
        SampleIter {
            columns: self.columns.iter(),
            current: None,
            remaining: self.len,
        }
    }

    /// The per-metric groups as a zero-copy view, ordered by metric name.
    ///
    /// This is the training fan-out point: each item borrows one
    /// [`MetricColumn`] directly from the set — no per-call map or
    /// reference vectors are built.
    pub fn by_metric(&self) -> impl ExactSizeIterator<Item = (&MetricId, &MetricColumn)> + Clone {
        self.columns.iter().map(|c| (c.metric(), c))
    }

    /// The underlying columns, ordered by metric name.
    pub fn columns(&self) -> &[MetricColumn] {
        &self.columns
    }

    /// Returns the column for `metric`, if any samples were recorded for it.
    pub fn column(&self, metric: &MetricId) -> Option<&MetricColumn> {
        self.columns
            .binary_search_by(|c| c.metric().cmp(metric))
            .ok()
            .map(|i| &self.columns[i])
    }

    /// Iterates over the distinct metrics present in the set, in name order.
    pub fn metrics(&self) -> impl ExactSizeIterator<Item = &MetricId> + Clone {
        self.columns.iter().map(MetricColumn::metric)
    }

    /// Returns all samples for one metric as owned rows, in insertion order.
    pub fn samples_for(&self, metric: &MetricId) -> Vec<Sample> {
        self.column(metric)
            .map(|c| c.samples().collect())
            .unwrap_or_default()
    }

    /// Total measurement time across all samples (sum of `T`).
    pub fn total_time(&self) -> f64 {
        self.columns.iter().map(MetricColumn::total_time).sum()
    }

    /// Merges another sample set into this one, appending each of its
    /// columns to the matching metric group.
    pub fn merge(&mut self, other: SampleSet) {
        for col in other.columns {
            self.len += col.len();
            match self
                .columns
                .binary_search_by(|c| c.metric().cmp(col.metric()))
            {
                Ok(i) => self.columns[i].append_rows(col),
                Err(i) => self.columns.insert(i, col),
            }
        }
    }

    /// Finds or creates the column for `metric`, keeping `columns` sorted
    /// by metric name.
    fn column_mut(&mut self, metric: MetricId) -> &mut MetricColumn {
        match self.columns.binary_search_by(|c| c.metric().cmp(&metric)) {
            Ok(i) => &mut self.columns[i],
            Err(i) => {
                self.columns.insert(i, MetricColumn::new(metric));
                &mut self.columns[i]
            }
        }
    }
}

/// Iterator over a [`SampleSet`]'s rows as owned [`Sample`]s; see
/// [`SampleSet::iter`] for the visit order.
#[derive(Debug, Clone)]
pub struct SampleIter<'a> {
    columns: std::slice::Iter<'a, MetricColumn>,
    current: Option<(&'a MetricColumn, usize)>,
    remaining: usize,
}

impl Iterator for SampleIter<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        loop {
            if let Some((col, i)) = &mut self.current {
                if let Some(s) = col.get(*i) {
                    *i += 1;
                    self.remaining -= 1;
                    return Some(s);
                }
            }
            self.current = Some((self.columns.next()?, 0));
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SampleIter<'_> {}

impl FromIterator<Sample> for SampleSet {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        let mut set = SampleSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<Sample> for SampleSet {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        for s in iter {
            self.push(s);
        }
    }
}

impl IntoIterator for SampleSet {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        let rows: Vec<Sample> = self.iter().collect();
        rows.into_iter()
    }
}

impl<'a> IntoIterator for &'a SampleSet {
    type Item = Sample;
    type IntoIter = SampleIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Serialization keeps the pre-columnar row format `{"samples": [...]}`,
/// with rows emitted in [`SampleSet::iter`] order (grouped by metric).
/// Round-tripping therefore preserves equality — [`SampleSet`] comparison
/// is group-based and row order within each group survives.
#[derive(Serialize, Deserialize)]
struct SampleSetRows {
    samples: Vec<Sample>,
}

impl Serialize for SampleSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        SampleSetRows {
            samples: self.iter().collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SampleSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let rows = SampleSetRows::deserialize(deserializer)?;
        Ok(rows.samples.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    #[test]
    fn throughput_and_intensity_derive_from_fields() {
        let x = s("stalls", 4.0, 8.0, 2.0);
        assert_eq!(x.throughput(), 2.0);
        assert_eq!(x.intensity(), 4.0);
    }

    #[test]
    fn zero_metric_delta_gives_infinite_intensity() {
        let x = s("stalls", 4.0, 8.0, 0.0);
        assert!(x.intensity().is_infinite());
    }

    #[test]
    fn zero_work_zero_delta_gives_zero_intensity() {
        let x = s("stalls", 4.0, 0.0, 0.0);
        assert_eq!(x.intensity(), 0.0);
        assert_eq!(x.throughput(), 0.0);
    }

    #[test]
    fn rejects_nonpositive_time() {
        assert!(Sample::new("m", 0.0, 1.0, 1.0).is_err());
        assert!(Sample::new("m", -3.0, 1.0, 1.0).is_err());
        assert!(Sample::new("m", f64::NAN, 1.0, 1.0).is_err());
        assert!(Sample::new("m", f64::INFINITY, 1.0, 1.0).is_err());
    }

    #[test]
    fn rejects_negative_or_nonfinite_work_and_delta() {
        assert!(Sample::new("m", 1.0, -1.0, 1.0).is_err());
        assert!(Sample::new("m", 1.0, f64::NAN, 1.0).is_err());
        assert!(Sample::new("m", 1.0, 1.0, -0.5).is_err());
        assert!(Sample::new("m", 1.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn grouping_by_metric_preserves_order_and_counts() {
        let set: SampleSet = vec![
            s("b", 1.0, 1.0, 1.0),
            s("a", 1.0, 2.0, 1.0),
            s("b", 1.0, 3.0, 1.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.by_metric().len(), 2);
        let b = set.column(&MetricId::new("b")).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.works(), &[1.0, 3.0]);
    }

    #[test]
    fn by_metric_is_ordered_by_name_and_zero_copy() {
        let set: SampleSet = vec![
            s("z", 1.0, 1.0, 1.0),
            s("a", 1.0, 1.0, 1.0),
            s("m", 1.0, 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        let names: Vec<&str> = set.by_metric().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
        // The view borrows the set's own columns.
        let (_, col) = set.by_metric().next().unwrap();
        assert!(std::ptr::eq(col, &set.columns()[0]));
    }

    #[test]
    fn metrics_are_deduped_and_sorted() {
        let set: SampleSet = vec![
            s("z", 1.0, 1.0, 1.0),
            s("a", 1.0, 1.0, 1.0),
            s("z", 1.0, 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        let names: Vec<&str> = set.metrics().map(MetricId::as_str).collect();
        assert_eq!(names, ["a", "z"]);
    }

    #[test]
    fn total_time_sums_periods() {
        let set: SampleSet = vec![s("a", 1.5, 1.0, 1.0), s("b", 2.5, 1.0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!(set.total_time(), 4.0);
    }

    #[test]
    fn merge_appends_within_matching_groups() {
        let mut a: SampleSet = vec![s("a", 1.0, 1.0, 1.0)].into_iter().collect();
        let b: SampleSet = vec![s("b", 1.0, 1.0, 1.0), s("a", 2.0, 4.0, 1.0)]
            .into_iter()
            .collect();
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.column(&"a".into()).unwrap().times(), &[1.0, 2.0]);
        assert_eq!(a.column(&"b".into()).unwrap().len(), 1);
    }

    #[test]
    fn metric_id_borrow_allows_str_lookup() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<MetricId, u32> = BTreeMap::new();
        m.insert(MetricId::new("x"), 1);
        assert_eq!(m.get("x"), Some(&1));
    }

    #[test]
    fn sample_set_serde_round_trip() {
        let set: SampleSet = vec![s("a", 1.0, 2.0, 3.0), s("b", 2.0, 2.0, 0.0)]
            .into_iter()
            .collect();
        let json = serde_json::to_string(&set).unwrap();
        assert!(json.contains("\"samples\""));
        let back: SampleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn derived_columns_match_row_accessors() {
        let rows = vec![
            s("x", 2.0, 8.0, 4.0),
            s("x", 4.0, 8.0, 0.0),
            s("x", 5.0, 0.0, 0.0),
        ];
        let set: SampleSet = rows.clone().into_iter().collect();
        let col = set.column(&"x".into()).unwrap();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(col.throughputs()[i], r.throughput());
            let (a, b) = (col.intensities()[i], r.intensity());
            assert!(a == b || (a.is_infinite() && b.is_infinite()));
        }
    }

    #[test]
    fn push_invalidates_derived_cache() {
        let mut col = MetricColumn::new("x".into());
        col.push(1.0, 2.0, 1.0);
        assert_eq!(col.throughputs(), &[2.0]);
        col.push(1.0, 6.0, 2.0);
        assert_eq!(col.throughputs(), &[2.0, 6.0]);
        assert_eq!(col.intensities(), &[2.0, 3.0]);
    }

    #[test]
    fn every_mutation_path_invalidates_derived_after_by_metric_read() {
        // Regression: reading derived columns through `by_metric` populates
        // the per-column cache; every later mutation path — `push`,
        // `push_parts`, `push_unchecked`, and `merge` — must invalidate it
        // so stale intensities can never reach a fit.
        let mut set = SampleSet::new();
        set.push_parts("x".into(), 1.0, 2.0, 1.0).unwrap();
        let (_, col) = set.by_metric().next().unwrap();
        assert_eq!(col.intensities(), &[2.0]); // warm the cache

        set.push(Sample::new("x", 1.0, 6.0, 2.0).unwrap());
        assert_eq!(set.column(&"x".into()).unwrap().intensities(), &[2.0, 3.0]);

        set.push_parts("x".into(), 1.0, 8.0, 2.0).unwrap();
        assert_eq!(
            set.column(&"x".into()).unwrap().intensities(),
            &[2.0, 3.0, 4.0]
        );

        let _ = set.column(&"x".into()).unwrap().throughputs(); // re-warm
        set.push_unchecked("x".into(), 1.0, 10.0, 2.0);
        let col = set.column(&"x".into()).unwrap();
        assert_eq!(col.intensities(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(col.throughputs(), &[2.0, 6.0, 8.0, 10.0]);

        let other: SampleSet = vec![Sample::new("x", 1.0, 12.0, 2.0).unwrap()]
            .into_iter()
            .collect();
        let _ = set.column(&"x".into()).unwrap().intensities(); // re-warm
        set.merge(other);
        assert_eq!(
            set.column(&"x".into()).unwrap().intensities(),
            &[2.0, 3.0, 4.0, 5.0, 6.0]
        );
    }

    #[test]
    fn push_parts_validates_like_sample_new() {
        let mut set = SampleSet::new();
        set.push_parts("m".into(), 1.0, 2.0, 1.0).unwrap();
        assert!(set.push_parts("m".into(), 0.0, 2.0, 1.0).is_err());
        assert!(set.push_parts("m".into(), 1.0, -2.0, 1.0).is_err());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iter_yields_every_row_grouped() {
        let set: SampleSet = vec![
            s("b", 1.0, 1.0, 1.0),
            s("a", 2.0, 1.0, 1.0),
            s("b", 3.0, 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        let rows: Vec<Sample> = set.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(set.iter().len(), 3);
        let metrics: Vec<&str> = rows.iter().map(|r| r.metric().as_str()).collect();
        assert_eq!(metrics, ["a", "b", "b"]);
        assert_eq!(rows[1].time(), 1.0);
        assert_eq!(rows[2].time(), 3.0);
    }

    #[test]
    fn equality_ignores_original_push_interleaving() {
        let interleaved: SampleSet = vec![
            s("a", 1.0, 1.0, 1.0),
            s("b", 2.0, 1.0, 1.0),
            s("a", 3.0, 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        let grouped: SampleSet = vec![
            s("a", 1.0, 1.0, 1.0),
            s("a", 3.0, 1.0, 1.0),
            s("b", 2.0, 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(interleaved, grouped);
    }
}
