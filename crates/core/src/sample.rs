//! SPIRE's input data model: performance-counter [`Sample`]s and the
//! [`SampleSet`] collection.
//!
//! A sample (paper Section III-A) describes one measurement period of a
//! workload executing on the processor under analysis:
//!
//! * `T` — length of the period ([`Sample::time`]),
//! * `W` — quantity of work completed ([`Sample::work`]),
//! * `M_x` — increase of performance metric `x` ([`Sample::metric_delta`]),
//! * `P = W / T` — average throughput ([`Sample::throughput`]),
//! * `I_x = W / M_x` — metric-specific operational intensity
//!   ([`Sample::intensity`]).
//!
//! The units of `T` and `W` must be consistent across all samples (for IPC
//! analysis: `W` in retired instructions, `T` in unhalted core cycles).
//! `M_x` is in whatever unit the associated metric counts.

use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::de::Deserializer;
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};

/// Identifier of a performance metric (one hardware counter event).
///
/// Metric ids are interned strings: cloning is cheap (an atomic reference
/// count), and equality/ordering follow the underlying string. Construct one
/// from any string-like value:
///
/// ```
/// use spire_core::MetricId;
///
/// let a = MetricId::new("br_misp_retired.all_branches");
/// let b: MetricId = "br_misp_retired.all_branches".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "br_misp_retired.all_branches");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(Arc<str>);

impl MetricId {
    /// Creates a metric id from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        MetricId(Arc::from(name.as_ref()))
    }

    /// Returns the metric name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MetricId {
    fn from(s: &str) -> Self {
        MetricId::new(s)
    }
}

impl From<String> for MetricId {
    fn from(s: String) -> Self {
        MetricId(Arc::from(s.as_str()))
    }
}

impl AsRef<str> for MetricId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for MetricId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Serialize for MetricId {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for MetricId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(MetricId::from(s))
    }
}

/// One measurement period for a single performance metric.
///
/// Invariants (enforced by [`Sample::new`]):
/// * `time` is finite and strictly positive,
/// * `work` is finite and non-negative,
/// * `metric_delta` is finite and non-negative.
///
/// A `metric_delta` of zero yields an **infinite** operational intensity
/// (`I_x = W / 0`); such samples anchor the right-region fit's `Start`
/// vertex (paper Section III-D).
///
/// ```
/// use spire_core::Sample;
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// // 2e9 cycles, 3e9 retired instructions, 1.5e7 branch mispredictions.
/// let s = Sample::new("br_misp_retired.all_branches", 2e9, 3e9, 1.5e7)?;
/// assert_eq!(s.throughput(), 1.5); // IPC
/// assert_eq!(s.intensity(), 200.0); // instructions per misprediction
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    metric: MetricId,
    time: f64,
    work: f64,
    metric_delta: f64,
}

impl Sample {
    /// Creates a validated sample.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidSample`] if `time` is not finite and
    /// strictly positive, or if `work` or `metric_delta` is not finite and
    /// non-negative.
    pub fn new(
        metric: impl Into<MetricId>,
        time: f64,
        work: f64,
        metric_delta: f64,
    ) -> Result<Self> {
        if !time.is_finite() || time <= 0.0 {
            return Err(SpireError::InvalidSample {
                field: "time",
                value: time,
                constraint: "must be finite and > 0",
            });
        }
        if !work.is_finite() || work < 0.0 {
            return Err(SpireError::InvalidSample {
                field: "work",
                value: work,
                constraint: "must be finite and >= 0",
            });
        }
        if !metric_delta.is_finite() || metric_delta < 0.0 {
            return Err(SpireError::InvalidSample {
                field: "metric_delta",
                value: metric_delta,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Sample {
            metric: metric.into(),
            time,
            work,
            metric_delta,
        })
    }

    /// The metric this sample is associated with.
    pub fn metric(&self) -> &MetricId {
        &self.metric
    }

    /// `T`: length of the measurement period.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// `W`: quantity of work completed during the period.
    pub fn work(&self) -> f64 {
        self.work
    }

    /// `M_x`: increase of the associated metric during the period.
    pub fn metric_delta(&self) -> f64 {
        self.metric_delta
    }

    /// `P = W / T`: average throughput over the period.
    pub fn throughput(&self) -> f64 {
        self.work / self.time
    }

    /// `I_x = W / M_x`: metric-specific operational intensity.
    ///
    /// Returns `f64::INFINITY` when `M_x` is zero (the metric never fired
    /// during the period), matching the paper's `I_x = ∞` samples. Returns
    /// `0.0` when both `W` and `M_x` are zero: a period that did no work is
    /// treated as zero intensity rather than an indeterminate `0/0`.
    pub fn intensity(&self) -> f64 {
        if self.metric_delta == 0.0 {
            if self.work == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.work / self.metric_delta
        }
    }
}

/// A collection of [`Sample`]s, groupable by metric.
///
/// `SampleSet` is the unit of data exchanged with the model: training
/// consumes one, and each analyzed workload is described by one.
///
/// ```
/// use spire_core::{Sample, SampleSet};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut set = SampleSet::new();
/// set.push(Sample::new("stalls", 100.0, 150.0, 10.0)?);
/// set.push(Sample::new("stalls", 100.0, 180.0, 5.0)?);
/// set.push(Sample::new("l3_miss", 100.0, 150.0, 2.0)?);
/// assert_eq!(set.len(), 3);
/// assert_eq!(set.metrics().count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Creates an empty sample set with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(n),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Number of samples in the set.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the set contains no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the samples in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Returns the samples as a slice.
    pub fn as_slice(&self) -> &[Sample] {
        &self.samples
    }

    /// Groups the samples by metric, preserving insertion order within each
    /// group. The map is ordered by metric name for deterministic iteration.
    pub fn by_metric(&self) -> BTreeMap<&MetricId, Vec<&Sample>> {
        let mut map: BTreeMap<&MetricId, Vec<&Sample>> = BTreeMap::new();
        for s in &self.samples {
            map.entry(s.metric()).or_default().push(s);
        }
        map
    }

    /// Iterates over the distinct metrics present in the set, in name order.
    pub fn metrics(&self) -> impl Iterator<Item = &MetricId> {
        let mut names: Vec<&MetricId> = self.samples.iter().map(Sample::metric).collect();
        names.sort_unstable();
        names.dedup();
        names.into_iter()
    }

    /// Returns all samples for one metric, in insertion order.
    pub fn samples_for(&self, metric: &MetricId) -> Vec<&Sample> {
        self.samples
            .iter()
            .filter(|s| s.metric() == metric)
            .collect()
    }

    /// Total measurement time across all samples (sum of `T`).
    pub fn total_time(&self) -> f64 {
        self.samples.iter().map(Sample::time).sum()
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: SampleSet) {
        self.samples.extend(other.samples);
    }
}

impl FromIterator<Sample> for SampleSet {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        SampleSet {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for SampleSet {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for SampleSet {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a SampleSet {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    #[test]
    fn throughput_and_intensity_derive_from_fields() {
        let x = s("stalls", 4.0, 8.0, 2.0);
        assert_eq!(x.throughput(), 2.0);
        assert_eq!(x.intensity(), 4.0);
    }

    #[test]
    fn zero_metric_delta_gives_infinite_intensity() {
        let x = s("stalls", 4.0, 8.0, 0.0);
        assert!(x.intensity().is_infinite());
    }

    #[test]
    fn zero_work_zero_delta_gives_zero_intensity() {
        let x = s("stalls", 4.0, 0.0, 0.0);
        assert_eq!(x.intensity(), 0.0);
        assert_eq!(x.throughput(), 0.0);
    }

    #[test]
    fn rejects_nonpositive_time() {
        assert!(Sample::new("m", 0.0, 1.0, 1.0).is_err());
        assert!(Sample::new("m", -3.0, 1.0, 1.0).is_err());
        assert!(Sample::new("m", f64::NAN, 1.0, 1.0).is_err());
        assert!(Sample::new("m", f64::INFINITY, 1.0, 1.0).is_err());
    }

    #[test]
    fn rejects_negative_or_nonfinite_work_and_delta() {
        assert!(Sample::new("m", 1.0, -1.0, 1.0).is_err());
        assert!(Sample::new("m", 1.0, f64::NAN, 1.0).is_err());
        assert!(Sample::new("m", 1.0, 1.0, -0.5).is_err());
        assert!(Sample::new("m", 1.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn grouping_by_metric_preserves_order_and_counts() {
        let set: SampleSet = vec![
            s("b", 1.0, 1.0, 1.0),
            s("a", 1.0, 2.0, 1.0),
            s("b", 1.0, 3.0, 1.0),
        ]
        .into_iter()
        .collect();
        let groups = set.by_metric();
        assert_eq!(groups.len(), 2);
        let b = &groups[&MetricId::new("b")];
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].work(), 1.0);
        assert_eq!(b[1].work(), 3.0);
    }

    #[test]
    fn metrics_are_deduped_and_sorted() {
        let set: SampleSet = vec![
            s("z", 1.0, 1.0, 1.0),
            s("a", 1.0, 1.0, 1.0),
            s("z", 1.0, 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        let names: Vec<&str> = set.metrics().map(MetricId::as_str).collect();
        assert_eq!(names, ["a", "z"]);
    }

    #[test]
    fn total_time_sums_periods() {
        let set: SampleSet = vec![s("a", 1.5, 1.0, 1.0), s("b", 2.5, 1.0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!(set.total_time(), 4.0);
    }

    #[test]
    fn merge_appends_all_samples() {
        let mut a: SampleSet = vec![s("a", 1.0, 1.0, 1.0)].into_iter().collect();
        let b: SampleSet = vec![s("b", 1.0, 1.0, 1.0)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn metric_id_borrow_allows_str_lookup() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<MetricId, u32> = BTreeMap::new();
        m.insert(MetricId::new("x"), 1);
        assert_eq!(m.get("x"), Some(&1));
    }

    #[test]
    fn sample_set_serde_round_trip() {
        let set: SampleSet = vec![s("a", 1.0, 2.0, 3.0)].into_iter().collect();
        let json = serde_json::to_string(&set).unwrap();
        let back: SampleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
