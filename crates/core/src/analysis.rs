//! Bottleneck analysis on top of a SPIRE estimate (paper Section III-C,
//! "Performance analysis").
//!
//! A [`BottleneckReport`] ranks metrics ascending by their merged
//! throughput estimates, annotates each with its catalog entry, and rolls
//! the ranking up to top-level microarchitecture areas so SPIRE results can
//! be compared against TMA-style classifications.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::catalog::{MetricCatalog, UarchArea};
use crate::ensemble::Estimate;
use crate::sample::MetricId;

/// One ranked row of a [`BottleneckReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedMetric {
    /// The metric.
    pub metric: MetricId,
    /// Its merged throughput estimate `P̄_x` (lower = more suspicious).
    pub estimate: f64,
    /// Paper-style abbreviation, when the metric is cataloged.
    pub abbr: Option<String>,
    /// Closest TMA area, when the metric is cataloged.
    pub area: Option<UarchArea>,
}

/// A ranked bottleneck analysis of one workload.
///
/// ```
/// use spire_core::{BottleneckReport, Sample, SampleSet, SpireModel, TrainConfig};
/// use spire_core::catalog::MetricCatalog;
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut training = SampleSet::new();
/// for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 2.0)] {
///     training.push(Sample::new("br_misp_retired.all_branches", 10.0, w, m)?);
/// }
/// let model = SpireModel::train(&training, TrainConfig::default())?;
/// let mut workload = SampleSet::new();
/// workload.push(Sample::new("br_misp_retired.all_branches", 10.0, 10.0, 10.0)?);
/// let estimate = model.estimate(&workload)?;
/// let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
/// assert_eq!(report.rows()[0].abbr.as_deref(), Some("BP.1"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    rows: Vec<RankedMetric>,
    throughput: f64,
}

impl BottleneckReport {
    /// Builds a report from an estimate, annotating rows with `catalog`.
    pub fn new(estimate: &Estimate, catalog: &MetricCatalog) -> Self {
        let rows = estimate
            .ranked()
            .into_iter()
            .map(|(metric, me)| {
                let info = catalog.lookup(metric);
                RankedMetric {
                    metric: metric.clone(),
                    estimate: me.merged,
                    abbr: info.map(|i| i.abbr.clone()),
                    area: info.map(|i| i.area),
                }
            })
            .collect();
        BottleneckReport {
            rows,
            throughput: estimate.throughput(),
        }
    }

    /// All rows, ranked ascending by estimate.
    pub fn rows(&self) -> &[RankedMetric] {
        &self.rows
    }

    /// The first `k` rows (the paper's "top k performance metrics").
    pub fn top(&self, k: usize) -> &[RankedMetric] {
        &self.rows[..k.min(self.rows.len())]
    }

    /// The ensemble-wide throughput estimate for the workload.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// The lowest estimate seen for each area among the top `k` rows.
    ///
    /// Uncataloged metrics are skipped. This is the rollup used to compare
    /// a SPIRE ranking against a TMA classification: the area holding the
    /// most low-estimate metrics is SPIRE's primary suspicion.
    pub fn area_minima(&self, k: usize) -> BTreeMap<UarchArea, f64> {
        let mut map = BTreeMap::new();
        for row in self.top(k) {
            if let Some(area) = row.area {
                map.entry(area)
                    .and_modify(|v: &mut f64| *v = v.min(row.estimate))
                    .or_insert(row.estimate);
            }
        }
        map
    }

    /// How many of the top `k` rows fall in each area.
    pub fn area_counts(&self, k: usize) -> BTreeMap<UarchArea, usize> {
        let mut map = BTreeMap::new();
        for row in self.top(k) {
            if let Some(area) = row.area {
                *map.entry(area).or_insert(0) += 1;
            }
        }
        map
    }

    /// The area SPIRE most suspects: the area of the single
    /// lowest-estimate cataloged metric among the top `k`.
    ///
    /// Returns `None` when no top-`k` metric is cataloged.
    pub fn dominant_area(&self, k: usize) -> Option<UarchArea> {
        self.top(k).iter().find_map(|r| r.area)
    }

    /// Returns `true` if `area` appears anywhere in the top `k` rows —
    /// the paper's suggested "pool of low-valued metrics" check.
    pub fn area_in_top(&self, area: UarchArea, k: usize) -> bool {
        self.top(k).iter().any(|r| r.area == Some(area))
    }

    /// The paper's "pool of low-valued metrics": all rows whose estimate
    /// lies within `tolerance` (relative) of the minimum estimate.
    ///
    /// The paper suggests treating this whole pool as potential
    /// bottlenecks to absorb measurement noise and confounded metrics,
    /// rather than trusting the single minimum.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or not finite.
    pub fn uncertainty_pool(&self, tolerance: f64) -> &[RankedMetric] {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be finite and non-negative"
        );
        let Some(min) = self.rows.first().map(|r| r.estimate) else {
            return &[];
        };
        let cutoff = min * (1.0 + tolerance) + f64::EPSILON;
        let end = self
            .rows
            .iter()
            .position(|r| r.estimate > cutoff)
            .unwrap_or(self.rows.len());
        &self.rows[..end]
    }

    /// Compares this report's ranking against another over their shared
    /// metrics: `(overlap@k, Kendall tau over shared estimates)`.
    ///
    /// Overlap@k asks whether the two analyses point at the same
    /// suspects; the rank correlation asks whether they order the full
    /// shared metric set consistently.
    pub fn compare(&self, other: &BottleneckReport, k: usize) -> (f64, f64) {
        let mine: Vec<&MetricId> = self.rows.iter().map(|r| &r.metric).collect();
        let theirs: Vec<&MetricId> = other.rows.iter().map(|r| &r.metric).collect();
        let overlap = crate::stats::overlap_at_k(&mine, &theirs, k);

        // Kendall tau over estimates of shared metrics.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for row in &self.rows {
            if let Some(other_row) = other.rows.iter().find(|r| r.metric == row.metric) {
                a.push(row.estimate);
                b.push(other_row.estimate);
            }
        }
        (overlap, crate::stats::kendall_tau(&a, &b))
    }

    /// Formats the top `k` rows as an aligned text table.
    pub fn to_table(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>12}  {:<12} {}\n",
            "abbr", "estimate", "area", "metric"
        ));
        for row in self.top(k) {
            out.push_str(&format!(
                "{:<10} {:>12.4}  {:<12} {}\n",
                row.abbr.as_deref().unwrap_or("-"),
                row.estimate,
                row.area.map_or("-".to_owned(), |a| a.to_string()),
                row.metric
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{SpireModel, TrainConfig};
    use crate::sample::{Sample, SampleSet};

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    fn report() -> BottleneckReport {
        let mut training = SampleSet::new();
        for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 2.0)] {
            training.push(s("br_misp_retired.all_branches", 10.0, w, m));
            training.push(s("longest_lat_cache.miss", 10.0, w, m));
            training.push(s("my_custom_event", 10.0, w, m));
        }
        let model = SpireModel::train(&training, TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("br_misp_retired.all_branches", 10.0, 10.0, 10.0)); // low
        wl.push(s("longest_lat_cache.miss", 10.0, 30.0, 2.0)); // high
        wl.push(s("my_custom_event", 10.0, 20.0, 5.0)); // middle
        let est = model.estimate(&wl).unwrap();
        BottleneckReport::new(&est, &MetricCatalog::table_iii())
    }

    #[test]
    fn rows_are_ranked_ascending() {
        let r = report();
        for w in r.rows().windows(2) {
            assert!(w[0].estimate <= w[1].estimate);
        }
        assert_eq!(r.rows()[0].abbr.as_deref(), Some("BP.1"));
    }

    #[test]
    fn uncataloged_metrics_have_no_annotation() {
        let r = report();
        let custom = r
            .rows()
            .iter()
            .find(|row| row.metric.as_str() == "my_custom_event")
            .unwrap();
        assert!(custom.abbr.is_none());
        assert!(custom.area.is_none());
    }

    #[test]
    fn dominant_area_is_lowest_cataloged() {
        let r = report();
        assert_eq!(r.dominant_area(10), Some(UarchArea::BadSpeculation));
    }

    #[test]
    fn area_minima_and_counts_cover_top_k() {
        let r = report();
        let minima = r.area_minima(10);
        assert!(minima.contains_key(&UarchArea::BadSpeculation));
        assert!(minima.contains_key(&UarchArea::Memory));
        let counts = r.area_counts(10);
        assert_eq!(counts[&UarchArea::BadSpeculation], 1);
        assert_eq!(counts[&UarchArea::Memory], 1);
    }

    #[test]
    fn area_in_top_respects_k() {
        let r = report();
        assert!(r.area_in_top(UarchArea::BadSpeculation, 1));
        assert!(!r.area_in_top(UarchArea::Memory, 1));
        assert!(r.area_in_top(UarchArea::Memory, 10));
    }

    #[test]
    fn top_clamps_to_row_count() {
        let r = report();
        assert_eq!(r.top(100).len(), r.rows().len());
        assert_eq!(r.top(1).len(), 1);
    }

    #[test]
    fn uncertainty_pool_collects_near_minimum_rows() {
        let r = report();
        // Zero tolerance: only the minimum row (no exact ties here).
        assert_eq!(r.uncertainty_pool(0.0).len(), 1);
        // Huge tolerance: everything.
        assert_eq!(r.uncertainty_pool(100.0).len(), r.rows().len());
        // Pool membership is a prefix of the ranking.
        let pool = r.uncertainty_pool(0.5);
        for (a, b) in pool.iter().zip(r.rows()) {
            assert_eq!(a.metric, b.metric);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn uncertainty_pool_rejects_negative_tolerance() {
        report().uncertainty_pool(-0.1);
    }

    #[test]
    fn compare_of_identical_reports_is_perfect() {
        let r = report();
        let (overlap, tau) = r.compare(&r, 3);
        assert_eq!(overlap, 1.0);
        assert!((tau - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_rendering_contains_headers_and_abbrs() {
        let r = report();
        let t = r.to_table(3);
        assert!(t.contains("abbr"));
        assert!(t.contains("BP.1"));
        assert!(t.contains("Bad Speculation"));
    }
}
