//! A small weighted directed graph with Dijkstra shortest paths.
//!
//! The right-region fitting algorithm (paper Fig. 6) encodes candidate
//! piecewise fits as paths in a segment graph and selects the
//! minimum-estimation-error fit as a shortest path. The graph here is
//! deliberately minimal: dense adjacency lists over `usize` node ids with
//! non-negative `f64` weights.
//!
//! The production right fit no longer goes through this module: since the
//! segment graph is a DAG ordered by front index, `roofline::fit_right_front`
//! solves the same shortest-path problem with a topological dynamic program
//! and on-the-fly edges, in `O(k² log k)` without materializing adjacency
//! lists. `DiGraph` remains as a general-purpose utility and as the engine
//! of the retained reference fit (`roofline::reference`, enabled by tests
//! and the `reference-fit` feature), which the fast path is proptested
//! against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a node in a [`DiGraph`].
pub type NodeId = usize;

/// A weighted directed graph with non-negative edge weights.
///
/// ```
/// use spire_core::graph::DiGraph;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 2.0);
/// g.add_edge(a, c, 5.0);
/// let path = g.shortest_path(a, c).expect("path exists");
/// assert_eq!(path.nodes, vec![a, b, c]);
/// assert_eq!(path.cost, 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    adjacency: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

/// A shortest path returned by [`DiGraph::shortest_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node sequence from source to target, inclusive.
    pub nodes: Vec<NodeId>,
    /// Total weight along the path.
    pub cost: f64,
}

/// Heap entry ordered so that `BinaryHeap` pops the smallest distance.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the max-heap acts as a min-heap on distance. Distances
        // are never NaN (weights are validated); total_cmp keeps this total.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates an empty graph with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        DiGraph {
            adjacency: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Adds a node and returns its id. Ids are dense, starting at 0.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Adds a directed edge `from -> to` with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range, or if `weight` is negative
    /// or NaN (Dijkstra requires non-negative weights).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) {
        assert!(from < self.adjacency.len(), "`from` node out of range");
        assert!(to < self.adjacency.len(), "`to` node out of range");
        assert!(
            weight >= 0.0 && !weight.is_nan(),
            "edge weight must be non-negative and not NaN"
        );
        self.adjacency[from].push((to, weight));
        self.edge_count += 1;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Outgoing edges of `node` as `(target, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn edges(&self, node: NodeId) -> &[(NodeId, f64)] {
        &self.adjacency[node]
    }

    /// Computes the minimum-weight path from `source` to `target` with
    /// Dijkstra's algorithm, or `None` if `target` is unreachable.
    ///
    /// Ties between equal-cost paths are broken deterministically (by node
    /// id), so repeated runs yield identical fits.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `target` is out of range.
    pub fn shortest_path(&self, source: NodeId, target: NodeId) -> Option<Path> {
        assert!(source < self.adjacency.len(), "`source` node out of range");
        assert!(target < self.adjacency.len(), "`target` node out of range");

        let n = self.adjacency.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });

        while let Some(HeapEntry { dist: d, node }) = heap.pop() {
            if settled[node] {
                continue;
            }
            settled[node] = true;
            if node == target {
                break;
            }
            for &(next, w) in &self.adjacency[node] {
                let nd = d + w;
                if nd < dist[next] || (nd == dist[next] && prev[next].is_none_or(|p| node < p)) {
                    dist[next] = nd;
                    prev[next] = Some(node);
                    heap.push(HeapEntry {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }

        if dist[target].is_infinite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while let Some(p) = prev[cur] {
            nodes.push(p);
            cur = p;
        }
        if cur != source {
            // target == source with no self-loop handled above; any other
            // case means the chain is broken, which cannot happen.
            debug_assert_eq!(cur, source);
        }
        nodes.reverse();
        Some(Path {
            nodes,
            cost: dist[target],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 1.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(a, t, 5.0);
        g.add_edge(b, t, 1.0);
        (g, s, a, b, t)
    }

    #[test]
    fn shortest_path_picks_cheaper_branch() {
        let (g, s, _a, b, t) = diamond();
        let p = g.shortest_path(s, t).unwrap();
        assert_eq!(p.nodes, vec![s, b, t]);
        assert_eq!(p.cost, 3.0);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        assert!(g.shortest_path(s, t).is_none());
    }

    #[test]
    fn source_equals_target_is_trivial_path() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let p = g.shortest_path(s, s).unwrap();
        assert_eq!(p.nodes, vec![s]);
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 0.0);
        g.add_edge(a, t, 0.0);
        let p = g.shortest_path(s, t).unwrap();
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.nodes, vec![s, a, t]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, -1.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost paths; the one through the lower node id wins.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 1.0);
        g.add_edge(s, b, 1.0);
        g.add_edge(a, t, 1.0);
        g.add_edge(b, t, 1.0);
        let p = g.shortest_path(s, t).unwrap();
        assert_eq!(p.nodes, vec![s, a, t]);
    }

    #[test]
    fn counts_track_insertions() {
        let (g, ..) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn longer_chain_is_reconstructed_in_order() {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        let p = g.shortest_path(ids[0], ids[5]).unwrap();
        assert_eq!(p.nodes, ids);
        assert_eq!(p.cost, 5.0);
    }
}
